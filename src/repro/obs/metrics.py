"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is *wiring*, not a second accounting system: gauges read
the existing counters (``ServeStats`` fields, ``GIRCache.stats()``,
``GIREngine.stats()``) through callbacks at collection time, so nothing
is double-counted and the registry can never drift from the source of
truth. The PR 7 accounting-rule identities are re-checked *through* the
registry (:func:`crosscheck_serve_identities`,
:func:`crosscheck_cache_identities`) — if the wiring ever lied, the
identities would break here even while ``ServeStats.accounting_ok()``
still passed on the raw fields.

Histograms use fixed bucket upper bounds (defaults sized for
millisecond latencies) and answer p50/p95/p99 by nearest-rank walk with
linear interpolation inside the bucket — O(#buckets), no sample
retention, safe to keep on the hot path.
"""

from __future__ import annotations

import bisect
import math
from functools import partial
from typing import Any, Callable, Iterable

__all__ = [
    "LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bind_serve_stats",
    "bind_cache_stats",
    "bind_engine_stats",
    "crosscheck_serve_identities",
    "crosscheck_cache_identities",
]

#: Default histogram bucket upper bounds for millisecond latencies:
#: ~50us floor up to 10s, roughly 1-2.5-5 per decade. Values above the
#: last bound land in the overflow bucket, whose upper edge for
#: interpolation is the largest value seen.
LATENCY_BUCKETS_MS = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    10000.0,
)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value; either set directly or backed by a callback
    reading an existing counter (the wiring form)."""

    __slots__ = ("name", "help", "_value", "_fn")

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", fn: Callable[[], Any] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """Fixed-bucket histogram with nearest-rank percentiles.

    ``bounds`` are inclusive upper edges; observations above the last
    bound count in an implicit overflow bucket. Percentiles walk the
    cumulative counts to the target rank and interpolate linearly
    within the bucket (the overflow bucket interpolates toward the
    maximum value seen), so answers are exact to bucket resolution
    without retaining samples.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "total", "max_seen")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = LATENCY_BUCKETS_MS,
    ) -> None:
        self.name = name
        self.help = help
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]), interpolated
        within the landing bucket."""
        if self.count == 0:
            return 0.0
        rank = min(max(math.ceil(p / 100.0 * self.count), 1), self.count)
        cum = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            cum += bucket_count
            if cum >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i < len(self.bounds):
                    hi = self.bounds[i]
                else:
                    hi = max(self.max_seen, lo)
                frac = (rank - (cum - bucket_count)) / bucket_count
                return lo + (hi - lo) * frac
        return self.max_seen  # pragma: no cover - cum always reaches rank

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max_seen,
        }


class MetricsRegistry:
    """Named instruments, collected in registration order."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get_or_create(self, name: str, factory: Callable[[], Any], kind: str) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, partial(Counter, name, help), "counter")

    def gauge(
        self, name: str, help: str = "", fn: Callable[[], Any] | None = None
    ) -> Gauge:
        return self._get_or_create(name, partial(Gauge, name, help, fn), "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._get_or_create(
            name, partial(Histogram, name, help, buckets), "histogram"
        )

    def register(self, metric: Any) -> Any:
        """Adopt a pre-built instrument (e.g. the ``ServeStats`` latency
        histograms) under its own name."""
        existing = self._metrics.get(metric.name)
        if existing is not None and existing is not metric:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> Any:
        return self._metrics[name]

    def value(self, name: str) -> Any:
        """Current scalar value (counter/gauge) or summary dict
        (histogram) of a metric."""
        metric = self._metrics[name]
        if metric.kind == "histogram":
            return metric.to_dict()
        return metric.value

    def collect(self) -> list[Any]:
        return list(self._metrics.values())

    def names(self) -> list[str]:
        return list(self._metrics)


def _attr_reader(obj: Any, attr: str) -> Any:
    return getattr(obj, attr)


def _stats_reader(obj: Any, key: str) -> Any:
    return obj.stats()[key]


#: ServeStats counter fields exposed as callback gauges (names match
#: the ``ServeStats`` dataclass fields; the gauges read them live).
SERVE_COUNTER_FIELDS = (
    "arrivals",
    "admitted",
    "rejected",
    "shed",
    "reads_served",
    "writes_applied",
    "errors",
    "engine_batch_calls",
    "engine_requests",
    "coalesce_attached",
    "coalesced_served",
    "coalesce_fallbacks",
    "fences",
    "queue_depth_peak",
    "inflight_batches_peak",
)

#: The PR 7 serve accounting identities, expressed over registry metric
#: names: each label asserts sum(lhs) == sum(rhs).
SERVE_IDENTITIES = (
    ("admission", ("arrivals",), ("admitted", "rejected", "shed")),
    ("completion", ("admitted",), ("reads_served", "writes_applied", "errors")),
    ("provenance", ("reads_served",), ("engine_requests", "coalesced_served")),
)


def bind_serve_stats(
    registry: MetricsRegistry, stats: Any, prefix: str = "serve"
) -> None:
    """Wire a live ``ServeStats`` into the registry: every counter field
    becomes a callback gauge reading the dataclass field, and the
    wait/service histograms are adopted as-is."""
    for field_name in SERVE_COUNTER_FIELDS:
        registry.gauge(
            f"{prefix}_{field_name}",
            help=f"ServeStats.{field_name} (live)",
            fn=partial(_attr_reader, stats, field_name),
        )
    registry.register(stats.wait_ms)
    registry.register(stats.service_ms)


#: GIRCache.stats() keys exposed as callback gauges.
CACHE_STAT_KEYS = (
    "hits",
    "full_hits",
    "partial_hits",
    "misses",
    "subsumption_evictions",
    "invalidation_evictions",
    "capacity_evictions",
    "lru_evictions",
    "cost_evictions",
    "entries",
    "grid_probes",
    "grid_negatives",
)


def bind_cache_stats(
    registry: MetricsRegistry, cache: Any, prefix: str = "cache"
) -> None:
    """Wire a live ``GIRCache`` into the registry via ``stats()``."""
    for key in CACHE_STAT_KEYS:
        registry.gauge(
            f"{prefix}_{key}",
            help=f"GIRCache.stats()[{key!r}] (live)",
            fn=partial(_stats_reader, cache, key),
        )


#: GIREngine.stats() keys exposed as callback gauges (the engine-level
#: counters; its merged-in cache keys come via :func:`bind_cache_stats`).
ENGINE_STAT_KEYS = (
    "requests_served",
    "resumed_completions",
    "updates_applied",
    "update_evictions",
    "prescreen_screened",
    "prescreen_lps",
    "live_records",
)


def bind_engine_stats(
    registry: MetricsRegistry, engine: Any, prefix: str = "engine"
) -> None:
    """Wire a live ``GIREngine`` into the registry via ``stats()``."""
    for key in ENGINE_STAT_KEYS:
        registry.gauge(
            f"{prefix}_{key}",
            help=f"GIREngine.stats()[{key!r}] (live)",
            fn=partial(_stats_reader, engine, key),
        )


def crosscheck_serve_identities(
    registry: MetricsRegistry, prefix: str = "serve"
) -> dict:
    """Re-evaluate the PR 7 serve accounting identities from
    registry-read values (integer comparisons)."""
    out: dict[str, Any] = {}
    ok = True
    for label, lhs, rhs in SERVE_IDENTITIES:
        left = sum(int(registry.value(f"{prefix}_{name}")) for name in lhs)
        right = sum(int(registry.value(f"{prefix}_{name}")) for name in rhs)
        holds = left == right
        out[label] = holds
        ok = ok and holds
    out["ok"] = ok
    return out


def crosscheck_cache_identities(
    registry: MetricsRegistry, prefix: str = "cache"
) -> dict:
    """Re-evaluate the cache accounting identities from registry-read
    values: capacity evictions split into lru+cost, hits into
    full+partial."""
    val = lambda key: int(registry.value(f"{prefix}_{key}"))  # noqa: E731
    eviction_split = val("capacity_evictions") == val("lru_evictions") + val(
        "cost_evictions"
    )
    hit_split = val("hits") == val("full_hits") + val("partial_hits")
    return {
        "eviction_split": eviction_split,
        "hit_split": hit_split,
        "ok": eviction_split and hit_split,
    }
