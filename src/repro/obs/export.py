"""Exporters: Chrome trace-event JSON, Prometheus text, explain trees.

Three views over the same :class:`~repro.obs.trace.SpanRecord` stream:

* :func:`chrome_trace` — Trace Event Format ``"X"`` (complete) events,
  loadable in Perfetto / ``chrome://tracing``. Router and worker spans
  keep their real pids/tids so a cluster run renders as one process
  lane per shard worker under a shared monotonic timeline.
* :func:`prometheus_text` — text exposition of a
  :class:`~repro.obs.metrics.MetricsRegistry` (cumulative ``_bucket``
  series for histograms, in the scrape format).
* :func:`explain` — a per-request plain-text timeline: the span tree of
  one trace, indented by parentage, with durations and attributes.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "explain",
    "spans_by_trace",
    "trace_roots",
]


def chrome_trace(spans: Iterable[Any]) -> dict:
    """Chrome Trace Event Format document for a span stream.

    Timestamps/durations are microseconds on the shared monotonic
    clock; trace/span/parent ids travel in ``args`` so Perfetto's query
    layer can stitch and filter by trace id.
    """
    events = []
    for record in spans:
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.t0_us,
                "dur": record.dur_us,
                "pid": record.pid,
                "tid": record.tid,
                "args": {
                    "trace_id": record.trace_id,
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    **record.attrs,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(float(value))


def prometheus_text(registry: Any) -> str:
    """Prometheus text exposition of every instrument in ``registry``."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            cum = 0
            for bound, bucket_count in zip(metric.bounds, metric.counts):
                cum += bucket_count
                lines.append(f'{metric.name}_bucket{{le="{bound!r}"}} {cum}')
            lines.append(f'{metric.name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{metric.name}_sum {_format_value(metric.total)}")
            lines.append(f"{metric.name}_count {metric.count}")
        else:
            lines.append(f"{metric.name} {_format_value(metric.value)}")
    return "\n".join(lines) + "\n"


def spans_by_trace(spans: Iterable[Any]) -> dict:
    """Group span records by trace id (insertion order preserved)."""
    grouped: dict[str, list[Any]] = {}
    for record in spans:
        grouped.setdefault(record.trace_id, []).append(record)
    return grouped


def trace_roots(records: Sequence[Any]) -> list[Any]:
    """Roots of one trace's records: no parent, or the parent lives in
    another process's collector slice (cross-process stitch point)."""
    span_ids = {record.span_id for record in records}
    return [
        record
        for record in records
        if record.parent_id is None or record.parent_id not in span_ids
    ]


def _render(record: Any, children: dict, depth: int, lines: list[str]) -> None:
    attrs = ""
    if record.attrs:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(record.attrs.items()))
        attrs = f"  [{parts}]"
    lines.append(
        f"{'  ' * depth}{record.name}  {record.dur_us / 1000.0:.3f} ms"
        f"  (pid {record.pid}){attrs}"
    )
    for child in children.get(record.span_id, ()):
        _render(child, children, depth + 1, lines)


def explain(spans: Iterable[Any], trace_id: str | None = None) -> str:
    """Plain-text timeline of one trace (default: the trace of the
    earliest-starting span) — the per-request ``explain()`` view."""
    grouped = spans_by_trace(spans)
    if not grouped:
        return "(no spans collected)"
    if trace_id is None:
        earliest = min(
            grouped.items(), key=lambda item: min(r.t0_us for r in item[1])
        )
        trace_id = earliest[0]
    records = grouped.get(trace_id)
    if not records:
        return f"(no spans for trace {trace_id})"
    children: dict[str, list[Any]] = {}
    for record in records:
        if record.parent_id is not None:
            children.setdefault(record.parent_id, []).append(record)
    for sibling_list in children.values():
        sibling_list.sort(key=lambda r: r.t0_us)
    lines = [f"trace {trace_id}"]
    for root in sorted(trace_roots(records), key=lambda r: r.t0_us):
        _render(root, children, 1, lines)
    return "\n".join(lines)
