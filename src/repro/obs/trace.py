"""Request tracing: spans, trace contexts and a ring-buffer collector.

The arming contract mirrors :mod:`repro.sanitize`: production wiring is
**zero-overhead when off**. ``REPRO_TRACE=1`` in the environment arms
tracing at import; :func:`enable` arms it explicitly at runtime (the
``--trace`` bench path and the tests use this — no environment edit
needed). While disabled, :func:`span` / :func:`trace` return one shared
no-op handle whose enter/exit/``set`` do nothing, so an instrumented hot
path costs a single global flag check per site; :func:`current` and
:func:`record_span` short-circuit the same way.

Primitives:

* :func:`span` — open a child span under the ambient context (a fresh
  trace is started when there is none). **Must** be used in
  ``with``-form (or via ``ExitStack.enter_context``); the
  ``span-discipline`` analysis rule enforces that every enter site is
  structurally guaranteed its exit.
* :func:`trace` — like :func:`span` but always a new root (fresh trace
  id), for request entry points.
* :func:`use_trace` — adopt a remote parent context, e.g. one received
  over the shard wire, so worker-side spans stitch under the router's
  trace id.
* :func:`record_span` — record an already-measured interval as one
  atomic span (used for retroactive spans such as ingress-queue wait,
  where enter and exit happen on different tasks).
* :class:`TraceCollector` — fixed-capacity ring buffer of finished
  spans, with enter/exit balance counters (``started == finished`` is
  the CI trace-smoke gate).

Ambient context rides a :class:`contextvars.ContextVar`, which crosses
``await`` boundaries for free; it does **not** cross
``ThreadPoolExecutor.submit`` — use :func:`pool_submit` (fan-out pool
threads) or pass :func:`current` explicitly (the serve front's executor
bridge, the shard wire).

Timestamps are ``time.perf_counter`` microseconds: on Linux that is
``CLOCK_MONOTONIC``, shared by every process on the host, so worker
spans land on the router's timeline without clock translation.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "ENV_VAR",
    "SpanRecord",
    "TraceCollector",
    "Span",
    "tracing_enabled",
    "enable",
    "disable",
    "collector",
    "reset_collector",
    "current",
    "span",
    "trace",
    "use_trace",
    "begin_span",
    "end_span",
    "record_span",
    "pool_submit",
    "absorb",
    "drain",
    "snapshot",
    "drain_payload",
    "disabled_span_overhead_ns",
]

#: Environment variable that arms tracing at import time.
ENV_VAR = "REPRO_TRACE"

_ENV_ENABLED = os.environ.get(ENV_VAR, "") == "1"

#: Default ring capacity: enough for every span of a smoke bench run
#: with headroom; the ring drops *oldest* beyond it (and counts drops).
DEFAULT_CAPACITY = 65_536

#: Monotonic id source; combined with the pid so ids minted in a forked
#: worker can never collide with the router's.
_IDS = itertools.count(1)


def _new_trace_id() -> str:
    return f"t{os.getpid():x}-{next(_IDS):x}"


def _new_span_id() -> str:
    return f"s{os.getpid():x}-{next(_IDS):x}"


class SpanRecord:
    """One finished span (immutable once collected; JSON-able)."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "t0_us",
        "dur_us",
        "pid",
        "tid",
        "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        t0_us: float,
        dur_us: float,
        pid: int,
        tid: int,
        attrs: dict,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t0_us = t0_us
        self.dur_us = dur_us
        self.pid = pid
        self.tid = tid
        self.attrs = attrs

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0_us": self.t0_us,
            "dur_us": self.dur_us,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None else str(data["parent_id"])
            ),
            name=str(data["name"]),
            t0_us=float(data["t0_us"]),
            dur_us=float(data["dur_us"]),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            attrs=dict(data.get("attrs", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, trace={self.trace_id}, "
            f"span={self.span_id}, parent={self.parent_id}, "
            f"dur={self.dur_us:.0f}us)"
        )


class TraceCollector:
    """Fixed-capacity ring buffer of finished spans + balance counters.

    ``started`` counts span enters, ``finished`` span exits (atomic
    :func:`record_span` records bump both); the two must agree after a
    drain — an imbalance means a span enter leaked without its exit.
    ``dropped`` counts records overwritten by the ring once full (the
    oldest go first); ``absorbed`` counts records merged in from another
    process's collector (they carry their own balance, shipped
    alongside the spans on the wire).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("collector capacity must be positive")
        self.capacity = int(capacity)
        self._guard = threading.Lock()
        self._buf: list[SpanRecord] = []
        self._head = 0
        self.started = 0
        self.finished = 0
        self.dropped = 0
        self.absorbed = 0

    def note_started(self) -> None:
        with self._guard:
            self.started += 1

    def add(self, record: SpanRecord) -> None:
        with self._guard:
            self.finished += 1
            self._store(record)

    def _store(self, record: SpanRecord) -> None:
        if len(self._buf) < self.capacity:
            self._buf.append(record)
        else:
            self._buf[self._head] = record
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def absorb(self, records: Iterable[SpanRecord]) -> int:
        """Merge finished records from another collector (no balance
        impact here — the source ships its own started/finished)."""
        n = 0
        with self._guard:
            for record in records:
                self._store(record)
                self.absorbed += 1
                n += 1
        return n

    @property
    def balanced(self) -> bool:
        """Every span entered so far has exited."""
        return self.started == self.finished

    def snapshot(self) -> list[SpanRecord]:
        """Buffered records, oldest first (non-destructive)."""
        with self._guard:
            return self._buf[self._head :] + self._buf[: self._head]

    def drain(self) -> list[SpanRecord]:
        """Return the buffered records and reset the buffer *and* the
        balance counters, so consecutive runs gate independently."""
        with self._guard:
            out = self._buf[self._head :] + self._buf[: self._head]
            self._buf = []
            self._head = 0
            self.started = 0
            self.finished = 0
            self.dropped = 0
            self.absorbed = 0
            return out

    def stats(self) -> dict:
        with self._guard:
            return {
                "started": self.started,
                "finished": self.finished,
                "dropped": self.dropped,
                "absorbed": self.absorbed,
                "buffered": len(self._buf),
                "capacity": self.capacity,
                "balanced": self.started == self.finished,
            }


class _State:
    __slots__ = ("enabled", "collector")

    def __init__(self) -> None:
        self.enabled = _ENV_ENABLED
        self.collector = TraceCollector()


_STATE = _State()

#: Ambient ``(trace_id, span_id)`` of the running task/thread.
_CURRENT: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_obs_current", default=None
)


def tracing_enabled() -> bool:
    return _STATE.enabled


def enable(capacity: int | None = None) -> None:
    """Arm tracing at runtime (idempotent). ``capacity`` replaces the
    collector with a fresh one of that size."""
    if capacity is not None and capacity != _STATE.collector.capacity:
        _STATE.collector = TraceCollector(capacity)
    _STATE.enabled = True


def disable() -> None:
    """Disarm tracing; buffered spans stay drainable."""
    _STATE.enabled = False


def collector() -> TraceCollector:
    return _STATE.collector


def reset_collector() -> None:
    """Fresh, empty collector (same capacity). Called by shard workers
    at startup so fork-inherited parent spans never double-report."""
    _STATE.collector = TraceCollector(_STATE.collector.capacity)


def current() -> tuple[str, str] | None:
    """The ambient ``(trace_id, span_id)``, or ``None`` when tracing is
    off / no span is open — the value to propagate across an executor
    bridge or the shard wire."""
    if not _STATE.enabled:
        return None
    return _CURRENT.get()


class Span:
    """A live span; entered/exited by its ``with`` block."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs", "_t0", "_token")

    def __init__(
        self, name: str, trace_id: str, parent_id: str | None, attrs: dict
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0 = 0.0
        self._token: Any = None

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute (shows up in every exporter)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        _STATE.collector.note_started()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        t1 = time.perf_counter()
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _STATE.collector.add(
            SpanRecord(
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                t0_us=self._t0 * 1e6,
                dur_us=(t1 - self._t0) * 1e6,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
            )
        )
        return False


class _NoopSpan:
    """Shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP = _NoopSpan()


class _Adopt:
    """Context manager installing a remote parent context."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: tuple[str, str]) -> None:
        self._ctx = ctx
        self._token: Any = None

    def __enter__(self) -> "_Adopt":
        self._token = _CURRENT.set(self._ctx)
        return self

    def __exit__(self, *exc: Any) -> bool:
        _CURRENT.reset(self._token)
        return False


def span(name: str, **attrs: Any) -> Any:
    """Open a child span under the ambient context (``with``-form
    required — see the ``span-discipline`` rule). With no ambient
    context the span becomes the root of a fresh trace."""
    if not _STATE.enabled:
        return _NOOP
    parent = _CURRENT.get()
    if parent is None:
        return Span(name, _new_trace_id(), None, attrs)
    return Span(name, parent[0], parent[1], attrs)


def trace(name: str, **attrs: Any) -> Any:
    """Open a new *root* span (fresh trace id, ambient context ignored)
    — the entry-point form (``with``-form required)."""
    if not _STATE.enabled:
        return _NOOP
    return Span(name, _new_trace_id(), None, attrs)


def use_trace(trace_id: str, span_id: str) -> Any:
    """Adopt ``(trace_id, span_id)`` as the ambient parent for the
    block's duration (``with``-form required) — the receiving half of
    cross-thread / cross-process propagation."""
    if not _STATE.enabled:
        return _NOOP
    return _Adopt((str(trace_id), str(span_id)))


def begin_span(name: str, **attrs: Any) -> Any:
    """Low-level span enter. Outside :mod:`repro.obs` itself every call
    site must use the ``with``-form (:func:`span`) instead; the
    ``span-discipline`` rule flags bare ``begin_span`` because nothing
    guarantees its :func:`end_span` on an exception path."""
    handle = span(name, **attrs)
    handle.__enter__()
    return handle


def end_span(handle: Any) -> None:
    """Close a span opened with :func:`begin_span`."""
    handle.__exit__(None, None, None)


def record_span(
    name: str,
    t0: float,
    t1: float,
    trace_ctx: tuple[str, str] | None = None,
    **attrs: Any,
) -> None:
    """Record an already-measured ``perf_counter`` interval as one
    atomic span (enter and exit counted together, so balance holds by
    construction). ``trace_ctx`` is a ``(trace_id, parent_span_id)``
    pair, defaulting to the ambient context; with neither, the record
    roots its own trace."""
    if not _STATE.enabled:
        return
    if trace_ctx is None:
        trace_ctx = _CURRENT.get()
    if trace_ctx is None:
        trace_id: str = _new_trace_id()
        parent_id: str | None = None
    else:
        trace_id, parent_id = trace_ctx
    coll = _STATE.collector
    coll.note_started()
    coll.add(
        SpanRecord(
            trace_id=trace_id,
            span_id=_new_span_id(),
            parent_id=parent_id,
            name=name,
            t0_us=t0 * 1e6,
            dur_us=max(t1 - t0, 0.0) * 1e6,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=attrs,
        )
    )


def pool_submit(pool: Any, fn: Callable[..., Any], *args: Any) -> Any:
    """``pool.submit`` that carries the ambient trace context onto the
    pool thread (contextvars do not cross ``submit`` on their own).
    Free when tracing is off."""
    if not _STATE.enabled:
        return pool.submit(fn, *args)
    import contextvars

    return pool.submit(contextvars.copy_context().run, fn, *args)


def absorb(records: Iterable[Mapping[str, Any]]) -> int:
    """Merge span dicts shipped from another process's collector."""
    return _STATE.collector.absorb(
        SpanRecord.from_dict(r) for r in records
    )


def snapshot() -> list[SpanRecord]:
    return _STATE.collector.snapshot()


def drain() -> list[SpanRecord]:
    return _STATE.collector.drain()


def drain_payload() -> dict:
    """Collector stats + drained span dicts, in one JSON-able payload —
    the ``MSG_TRACE`` reply body a shard worker ships to the router."""
    stats = _STATE.collector.stats()
    spans = [record.to_dict() for record in _STATE.collector.drain()]
    return {
        "spans": spans,
        "started": stats["started"],
        "finished": stats["finished"],
        "dropped": stats["dropped"],
    }


def disabled_span_overhead_ns(iters: int = 50_000) -> float:
    """Measured per-call cost of the *disabled* span path, nanoseconds.

    The disabled-mode overhead gate: instrumentation sites cost one
    flag check plus a no-op context manager when tracing is off; this
    measures that directly (minus empty-loop baseline) so the bench can
    bound instrumentation cost against real service time.
    """
    if _STATE.enabled:
        raise RuntimeError("overhead probe requires tracing to be disabled")
    if iters <= 0:
        raise ValueError("iters must be positive")
    t0 = time.perf_counter_ns()
    for _ in range(iters):
        with span("obs.overhead_probe"):
            pass
    t1 = time.perf_counter_ns()
    b0 = time.perf_counter_ns()
    for _ in range(iters):
        pass
    b1 = time.perf_counter_ns()
    return max((t1 - t0) - (b1 - b0), 0) / iters
