"""Observability: tracing spans, a metrics registry, and exporters.

Zero-overhead when off (the :mod:`repro.sanitize` arming pattern):
``REPRO_TRACE=1`` arms at import, :func:`enable` arms at runtime; while
disabled every instrumentation site costs one flag check and a shared
no-op handle. See ``trace.py`` for the span/propagation contract,
``metrics.py`` for the registry wiring, ``export.py`` for the Chrome
trace / Prometheus / explain views.
"""

from repro.obs.export import (
    chrome_trace,
    explain,
    prometheus_text,
    spans_by_trace,
    trace_roots,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_cache_stats,
    bind_engine_stats,
    bind_serve_stats,
    crosscheck_cache_identities,
    crosscheck_serve_identities,
)
from repro.obs.trace import (
    ENV_VAR,
    Span,
    SpanRecord,
    TraceCollector,
    absorb,
    begin_span,
    collector,
    current,
    disable,
    disabled_span_overhead_ns,
    drain,
    drain_payload,
    enable,
    end_span,
    pool_submit,
    record_span,
    reset_collector,
    snapshot,
    span,
    trace,
    tracing_enabled,
    use_trace,
)

__all__ = [
    "ENV_VAR",
    "LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "TraceCollector",
    "absorb",
    "begin_span",
    "bind_cache_stats",
    "bind_engine_stats",
    "bind_serve_stats",
    "chrome_trace",
    "collector",
    "crosscheck_cache_identities",
    "crosscheck_serve_identities",
    "current",
    "disable",
    "disabled_span_overhead_ns",
    "drain",
    "drain_payload",
    "enable",
    "end_span",
    "explain",
    "pool_submit",
    "prometheus_text",
    "record_span",
    "reset_collector",
    "snapshot",
    "span",
    "spans_by_trace",
    "trace",
    "trace_roots",
    "tracing_enabled",
    "use_trace",
]
