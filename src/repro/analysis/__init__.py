"""``repro.analysis`` — the project-invariant static checker.

Run it as a module::

    PYTHONPATH=src python -m repro.analysis [paths...] [--strict] [--json]

Five AST-walking rules enforce invariants this codebase actually relies
on (see each rule module's docstring for the full rationale):

``numeric-safety``
    no bare ``==``/``!=`` on floating-point expressions outside
    ``repro: bit-exact`` files; every ``1e-N`` tolerance lives in
    :mod:`repro.core.tolerances` under a documented name.
``kernel-purity``
    the ``@njit`` kernels of :mod:`repro.core.kernels` are statically
    nopython-safe, signature-identical twins of their numpy fallbacks,
    and the hot-loop callers route through the kernels module.
``wire-drift``
    every wire/page codec is symmetric (``encode_X`` ↔ ``decode_X``,
    same struct formats both sides) and the committed golden fingerprint
    fails if the byte layout changes without a version bump.
``fork-safety``
    nothing unpicklable goes into ``ShardSpec``; no module-level mutable
    containers or import-time OS resources in fork/thread fan-out
    modules.
``accounting``
    every counter field on a stats/report class reaches its
    ``to_dict``/``stats``/``summary`` surface.

Findings are suppressed per line with ``# repro: allow[rule-id] -- why``;
the justification is mandatory and ``--strict`` additionally rejects
stale suppressions.
"""

from __future__ import annotations

from repro.analysis.framework import (
    AnalysisResult,
    Finding,
    Module,
    Project,
    Rule,
    Suppression,
    render_json,
    render_text,
    run_rules,
)
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "Suppression",
    "render_json",
    "render_text",
    "run_rules",
]
