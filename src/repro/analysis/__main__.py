"""CLI entry point: ``python -m repro.analysis``.

Exit status is 0 when no findings survive suppression, 1 otherwise —
which is what makes the checker usable as a CI gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.framework import (
    Project,
    render_github,
    render_json,
    render_text,
    run_rules,
)
from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.wire_drift import WireDriftRule


def _default_target() -> Path:
    """``src/repro`` relative to the repo this package is installed from."""
    return Path(__file__).resolve().parents[1]


def _select_rules(select: str | None, ignore: str | None):
    known = {cls.id: cls for cls in ALL_RULES}
    chosen = list(known)
    if select:
        chosen = [rid.strip() for rid in select.split(",") if rid.strip()]
    if ignore:
        dropped = {rid.strip() for rid in ignore.split(",")}
        chosen = [rid for rid in chosen if rid not in dropped]
    unknown = [rid for rid in chosen if rid not in known]
    if unknown:
        raise SystemExit(
            f"repro.analysis: unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(known)})"
        )
    return [known[rid]() for rid in chosen]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant static checker for the GIR repro.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output format: human text, machine-readable JSON, or GitHub "
            "Actions ::error annotations"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="additionally fail on suppressions that match no finding",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="regenerate the wire-layout golden fingerprint and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.id}: {cls.name}")
            print(f"    {cls.doc}")
        return 0

    paths = args.paths or [_default_target()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise SystemExit(
            f"repro.analysis: no such path: "
            f"{', '.join(str(p) for p in missing)}"
        )
    project = Project.load(Path.cwd(), paths)

    if args.update_golden:
        rule = WireDriftRule()
        path = rule.write_golden(project)
        print(f"repro.analysis: wrote {path}")
        return 0

    rules = _select_rules(args.select, args.ignore)
    result = run_rules(project, rules, strict=args.strict)
    fmt = "json" if args.json else args.format
    if fmt == "json":
        render_json(result)
    elif fmt == "github":
        render_github(result)
    else:
        render_text(result)
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
