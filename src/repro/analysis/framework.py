"""The rule framework of ``repro.analysis``: findings, suppressions, projects.

A :class:`Rule` inspects a parsed :class:`Project` (a set of Python
modules, each an AST plus its raw source lines) and yields
:class:`Finding` objects. The framework — not the rules — handles
suppressions, output rendering and exit codes, so every rule stays a
pure AST walker.

Suppressions
------------

A finding is suppressed by a comment on the offending line, or on a
comment-only line directly above it::

    x == 0.0  # repro: allow[numeric-safety] -- exact tie detection is intentional

The justification after ``--`` is **required**: a suppression without one
is itself reported (rule id ``suppression``) — the point of the marker is
to leave the *reason* in the code, not just to silence the tool. In
``--strict`` mode, suppressions that match no finding are also reported
(rule id ``unused-suppression``), so stale markers cannot accumulate.

The concurrency rules additionally honour a second marker kind,
``# repro: thread-owned[name] -- justification`` (see
:meth:`Module.thread_owned`), declaring a class or attribute
single-owner; its justification is equally mandatory.
"""

from __future__ import annotations

import ast
import io
import json
import re
import sys
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "Suppression",
    "ThreadOwned",
    "Module",
    "Project",
    "Rule",
    "AnalysisResult",
    "run_rules",
    "render_text",
    "render_json",
    "render_github",
]

#: The suppression marker: ``repro: allow[<rule-id>]`` in a comment, with
#: an optional ``-- justification`` tail (angle brackets here keep this
#: very comment from matching its own pattern).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[a-z0-9-]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)

#: The single-owner marker the concurrency rules honour:
#: ``repro: thread-owned[<attr-or-class>]`` with a required
#: ``-- justification`` tail. On (or above) a ``class`` line naming the
#: class it declares the whole instance single-owner; inside a class
#: body naming an attribute it declares just that attribute.
_THREAD_OWNED_RE = re.compile(
    r"#\s*repro:\s*thread-owned\[(?P<name>[A-Za-z_]\w*)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: allow[...]`` marker."""

    rule: str
    path: str
    #: Line the marker is written on (1-based).
    line: int
    #: Justification text after ``--`` (empty string when missing).
    justification: str
    #: The code line the marker covers: its own line for a trailing
    #: comment, otherwise the first code line below the comment block.
    target: int = 0

    def covers(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and finding.line in (self.line, self.target)
        )


@dataclass(frozen=True)
class ThreadOwned:
    """One ``# repro: thread-owned[...]`` marker."""

    #: Attribute or class name the marker declares single-owner.
    name: str
    path: str
    line: int
    justification: str
    #: The code line the marker covers (same semantics as suppressions).
    target: int = 0


@dataclass
class Module:
    """One parsed source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        self._comments: dict[int, str] | None = None
        self._suppressions: list[Suppression] | None = None

    def line(self, lineno: int) -> str:
        """1-based source line (empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def comments(self) -> dict[int, str]:
        """Real comment tokens by line, tokenized once and cached.

        Tokenizing (rather than regex-scanning raw lines) keeps markers
        quoted inside docstrings — e.g. documentation *about* the
        suppression syntax — from registering as live markers. Every
        marker scan (suppressions, thread-owned) shares this one table,
        so a file is tokenized at most once per run.
        """
        if self._comments is None:
            comment_lines: dict[int, str] = {}
            try:
                tokens = tokenize.generate_tokens(
                    io.StringIO(self.source).readline
                )
                for tok in tokens:
                    if tok.type == tokenize.COMMENT:
                        comment_lines[tok.start[0]] = tok.string
            except tokenize.TokenError:  # pragma: no cover - already parsed
                pass
            self._comments = comment_lines
        return self._comments

    def marker_target(self, line: int) -> int:
        """The code line a comment marker on ``line`` covers: its own
        line for a trailing comment, otherwise the first code line below
        the contiguous comment/blank block it belongs to."""
        comment_lines = self.comments()
        before = self.line(line)[: self.line(line).find("#")]
        if before.strip():
            return line
        target = line + 1
        while target <= len(self.lines) and (
            not self.line(target).strip()
            or target in comment_lines
            and not self.line(target)[: self.line(target).find("#")].strip()
        ):
            target += 1
        return target

    def suppressions(self) -> list[Suppression]:
        """All ``# repro: allow[...]`` markers in real comments (cached)."""
        if self._suppressions is None:
            out = []
            for i, text in sorted(self.comments().items()):
                m = _SUPPRESS_RE.search(text)
                if m is None:
                    continue
                out.append(
                    Suppression(
                        rule=m.group("rule"),
                        path=self.path,
                        line=i,
                        justification=(m.group("why") or "").strip(),
                        target=self.marker_target(i),
                    )
                )
            self._suppressions = out
        return self._suppressions

    def thread_owned(self) -> list[ThreadOwned]:
        """All ``# repro: thread-owned[...]`` markers in real comments."""
        out = []
        for i, text in sorted(self.comments().items()):
            m = _THREAD_OWNED_RE.search(text)
            if m is None:
                continue
            out.append(
                ThreadOwned(
                    name=m.group("name"),
                    path=self.path,
                    line=i,
                    justification=(m.group("why") or "").strip(),
                    target=self.marker_target(i),
                )
            )
        return out


class Project:
    """The analyzed file set: parsed modules keyed by repo-relative path."""

    def __init__(self, root: Path, modules: dict[str, Module]) -> None:
        self.root = root
        self.modules = modules

    @classmethod
    def load(cls, root: Path, paths: Iterable[Path]) -> "Project":
        """Parse every ``.py`` file under ``paths`` (files or directories).

        Files that fail to parse are surfaced as ``parse-error`` findings
        by :func:`run_rules` rather than aborting the whole run.
        """
        root = root.resolve()
        modules: dict[str, Module] = {}
        errors: list[tuple[str, str]] = []
        seen: set[Path] = set()
        for path in paths:
            path = Path(path)
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for f in files:
                if "__pycache__" in f.parts:
                    continue
                resolved = f.resolve()
                if resolved in seen:
                    # Overlapping path arguments (``src src/repro``) must
                    # not parse — or report on — the same file twice.
                    continue
                seen.add(resolved)
                rel = _relpath(f, root)
                try:
                    source = f.read_text(encoding="utf-8")
                    tree = ast.parse(source, filename=str(f))
                except (SyntaxError, UnicodeDecodeError) as exc:
                    errors.append((rel, str(exc)))
                    continue
                modules[rel] = Module(path=rel, source=source, tree=tree)
        project = cls(root, modules)
        project._parse_errors = errors
        return project

    _parse_errors: list[tuple[str, str]] = []

    def find(self, suffix: str) -> Module | None:
        """The module whose path ends with ``suffix`` (``None`` if absent)."""
        for path, module in self.modules.items():
            if path.endswith(suffix):
                return module
        return None

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules.values())


def _relpath(f: Path, root: Path) -> str:
    try:
        return f.resolve().relative_to(root).as_posix()
    except ValueError:
        return f.as_posix()


class Rule:
    """Base class: subclasses set ``id``/``name``/``doc`` and implement
    :meth:`check`."""

    id = "abstract"
    name = "abstract rule"
    #: One-paragraph catalogue entry (shown by ``--list-rules``).
    doc = ""

    def check(self, project: Project) -> list[Finding]:
        raise NotImplementedError


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding]
    suppressed: list[tuple[Finding, Suppression]]
    checked_files: int
    rules_run: list[str]
    #: Wall-clock per rule, rule id → milliseconds.
    rule_timings_ms: dict[str, float] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def run_rules(
    project: Project, rules: Iterable[Rule], strict: bool = False
) -> AnalysisResult:
    """Run ``rules`` over ``project`` and fold in suppression handling."""
    raw: list[Finding] = [
        Finding("parse-error", path, 1, f"file does not parse: {msg}")
        for path, msg in project._parse_errors
    ]
    rules = list(rules)
    timings: dict[str, float] = {}
    for rule in rules:
        t0 = time.perf_counter()
        raw.extend(rule.check(project))
        timings[rule.id] = (time.perf_counter() - t0) * 1e3

    suppressions: list[Suppression] = []
    for module in project:
        suppressions.extend(module.suppressions())

    active: list[Finding] = []
    suppressed: list[tuple[Finding, Suppression]] = []
    used: set[Suppression] = set()
    for finding in raw:
        marker = next((s for s in suppressions if s.covers(finding)), None)
        if marker is None:
            active.append(finding)
            continue
        used.add(marker)
        if not marker.justification:
            active.append(
                Finding(
                    rule="suppression",
                    path=marker.path,
                    line=marker.line,
                    message=(
                        f"suppression of [{finding.rule}] lacks a "
                        f"justification; write "
                        f"'# repro: allow[{finding.rule}] -- <why>'"
                    ),
                )
            )
        else:
            suppressed.append((finding, marker))
    if strict:
        for marker in suppressions:
            if marker not in used:
                active.append(
                    Finding(
                        rule="unused-suppression",
                        path=marker.path,
                        line=marker.line,
                        message=(
                            f"suppression of [{marker.rule}] matches no "
                            f"finding; remove the stale marker"
                        ),
                    )
                )

    active.sort(key=lambda f: (f.path, f.line, f.rule))
    return AnalysisResult(
        findings=active,
        suppressed=suppressed,
        checked_files=len(project.modules),
        rules_run=[r.id for r in rules],
        rule_timings_ms=timings,
    )


def render_text(result: AnalysisResult, stream=sys.stdout) -> None:
    for finding in result.findings:
        print(finding.render(), file=stream)
    n = len(result.findings)
    print(
        f"repro.analysis: {n} finding{'s' if n != 1 else ''} "
        f"({len(result.suppressed)} suppressed) across "
        f"{result.checked_files} files "
        f"[rules: {', '.join(result.rules_run)}]",
        file=stream,
    )


def render_json(result: AnalysisResult, stream=sys.stdout) -> None:
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in result.findings
        ],
        "suppressed": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "justification": s.justification,
            }
            for f, s in result.suppressed
        ],
        "checked_files": result.checked_files,
        "rules": result.rules_run,
        "rule_timings_ms": {
            rid: round(ms, 3) for rid, ms in result.rule_timings_ms.items()
        },
        "exit_code": result.exit_code,
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def render_github(result: AnalysisResult, stream=sys.stdout) -> None:
    """GitHub Actions workflow commands: one ``::error`` annotation per
    finding, so PRs show findings inline at the offending line."""
    for f in result.findings:
        # Workflow-command syntax: property values escape ',' ':' '%';
        # the message escapes '%' and newlines.
        message = (
            f.message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )
        print(
            f"::error file={f.path},line={f.line},"
            f"title=repro.analysis[{f.rule}]::{message}",
            file=stream,
        )
    n = len(result.findings)
    print(
        f"repro.analysis: {n} finding{'s' if n != 1 else ''} "
        f"({len(result.suppressed)} suppressed) across "
        f"{result.checked_files} files",
        file=stream,
    )
