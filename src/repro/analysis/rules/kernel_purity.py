"""Rule ``kernel-purity``: the compiled kernels stay nopython-safe twins.

The bit-equivalence contract of :mod:`repro.core.kernels` — numba twins
produce byte-identical answers to the numpy fallbacks, selected once at
import time — only holds if three structural facts stay true, and all
three are checkable statically:

1. **Twinning** — every ``*_numba`` kernel has a ``*_numpy`` fallback
   (and vice versa when numba variants exist at all), with an
   *identical* argument list: same names, same order, no defaults on one
   side only. A signature drift makes the import-time selection swap in
   a function that cannot be called interchangeably.

2. **Nopython safety** — a ``@njit`` body must compile in nopython mode,
   so the static subset numba supports is enforced up front: no
   closures or nested functions, no ``lambda``, no ``*args``/
   ``**kwargs``, no dict/set literals or comprehensions, no ``global``
   / ``nonlocal``, no ``try``, no ``yield``, no f-strings, and no free
   names beyond the allowed module globals (``np`` plus builtins numba
   lowers: ``range``, ``len``, ``bool``, ``int``, ``float``, ``abs``,
   ``min``, ``max``, ``enumerate``, ``zip``). Violations otherwise
   surface only on machines that *have* numba — i.e. not in this
   container and not in the default CI lane.

3. **Routing** — the hot-loop callers (``core/region_index.py``,
   ``core/phase2_fp.py``, ``geometry/incident_facets.py``) import the
   kernels module and do not re-inline the segmented reductions
   (``*.reduceat`` is the tell-tale): an inlined copy silently stops
   benefiting from (and being covered by) the kernel equivalence tests.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Finding, Module, Project, Rule

__all__ = ["KernelPurityRule"]

#: Names a jitted kernel body may reference beyond its own arguments and
#: locals.
_ALLOWED_GLOBALS = frozenset(
    {
        "np",
        "range",
        "len",
        "bool",
        "int",
        "float",
        "abs",
        "min",
        "max",
        "enumerate",
        "zip",
    }
)

_NUMBA_SUFFIX = "_numba"
_NUMPY_SUFFIX = "_numpy"


def _decorator_names(fn: ast.FunctionDef) -> list[str]:
    names = []
    for dec in fn.decorator_list:
        node = dec.func if isinstance(dec, ast.Call) else dec
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        names.append(".".join(reversed(parts)))
    return names


def _arg_names(fn: ast.FunctionDef) -> list[str]:
    a = fn.args
    return [x.arg for x in a.posonlyargs + a.args + a.kwonlyargs]


def _nopython_violations(fn: ast.FunctionDef) -> list[tuple[int, str]]:
    """Static nopython-subset violations inside one jitted function."""
    out: list[tuple[int, str]] = []
    a = fn.args
    if a.vararg or a.kwarg:
        out.append((fn.lineno, "*args/**kwargs are not nopython-safe"))

    # Walk statement bodies only: decorators and annotations are not part
    # of the compiled kernel body.
    body_nodes = [n for stmt in fn.body for n in ast.walk(stmt)]
    bound: set[str] = set(_arg_names(fn))
    for node in body_nodes:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for t in targets:
                for name in ast.walk(t):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
        elif isinstance(node, (ast.For,)):
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    bound.add(name.id)
        elif isinstance(node, ast.comprehension):
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    bound.add(name.id)

    for node in body_nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node.lineno, "nested function (closure) in kernel"))
        elif isinstance(node, ast.Lambda):
            out.append((node.lineno, "lambda in kernel"))
        elif isinstance(node, (ast.Dict, ast.DictComp)):
            out.append((node.lineno, "dict construction in kernel"))
        elif isinstance(node, (ast.Set, ast.SetComp)):
            out.append((node.lineno, "set construction in kernel"))
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            out.append((node.lineno, "global/nonlocal statement in kernel"))
        elif isinstance(node, (ast.Try,)):
            out.append((node.lineno, "try/except in kernel"))
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            out.append((node.lineno, "generator kernel cannot be jitted"))
        elif isinstance(node, ast.JoinedStr):
            out.append((node.lineno, "f-string in kernel"))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in bound and node.id not in _ALLOWED_GLOBALS:
                out.append(
                    (
                        node.lineno,
                        f"free name {node.id!r} (closed-over/global state "
                        f"is not nopython-safe)",
                    )
                )
    return out


class KernelPurityRule(Rule):
    id = "kernel-purity"
    name = "njit kernels are nopython-safe, signature-identical twins"
    doc = (
        "Checks core/kernels.py: every *_numba kernel twins a *_numpy "
        "fallback with an identical signature and passes a static "
        "nopython-subset screen; hot-loop callers route through the "
        "kernels module instead of re-inlining reduceat loops."
    )

    kernels_suffix = "core/kernels.py"
    #: Modules that must call kernels.* rather than re-inline the loops.
    caller_suffixes = (
        "core/region_index.py",
        "core/phase2_fp.py",
        "geometry/incident_facets.py",
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        kernels = project.find(self.kernels_suffix)
        if kernels is not None:
            findings.extend(self._check_kernels(kernels))
        for suffix in self.caller_suffixes:
            module = project.find(suffix)
            if module is not None:
                findings.extend(self._check_caller(module))
        return findings

    # -- kernels module --------------------------------------------------------

    def _check_kernels(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        functions: dict[str, ast.FunctionDef] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef):
                functions[node.name] = node

        numba_twins = {
            name: fn
            for name, fn in functions.items()
            if name.endswith(_NUMBA_SUFFIX)
        }
        numpy_twins = {
            name: fn
            for name, fn in functions.items()
            if name.endswith(_NUMPY_SUFFIX)
        }

        for name, fn in sorted(numba_twins.items()):
            stem = name[: -len(_NUMBA_SUFFIX)]
            if not any("njit" in d for d in _decorator_names(fn)):
                findings.append(
                    Finding(
                        self.id,
                        module.path,
                        fn.lineno,
                        f"{name} is a *_numba twin without an @njit "
                        f"decorator",
                    )
                )
            twin = numpy_twins.get(stem + _NUMPY_SUFFIX)
            if twin is None:
                findings.append(
                    Finding(
                        self.id,
                        module.path,
                        fn.lineno,
                        f"{name} has no {stem}_numpy fallback twin",
                    )
                )
            elif _arg_names(twin) != _arg_names(fn):
                findings.append(
                    Finding(
                        self.id,
                        module.path,
                        fn.lineno,
                        f"{name} signature {_arg_names(fn)} differs from "
                        f"its fallback's {_arg_names(twin)}; the import-"
                        f"time selection swaps them interchangeably",
                    )
                )
            for lineno, why in _nopython_violations(fn):
                findings.append(
                    Finding(self.id, module.path, lineno, f"{name}: {why}")
                )

        # When numba twins exist at all, a fallback without a twin means
        # that kernel silently never compiles.
        if numba_twins:
            for name, fn in sorted(numpy_twins.items()):
                stem = name[: -len(_NUMPY_SUFFIX)]
                if stem + _NUMBA_SUFFIX not in numba_twins:
                    findings.append(
                        Finding(
                            self.id,
                            module.path,
                            fn.lineno,
                            f"{name} has no {stem}_numba twin; the kernel "
                            f"never runs compiled",
                        )
                    )
        return findings

    # -- hot-loop callers ------------------------------------------------------

    def _check_caller(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        imports_kernels = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module and node.module.startswith("repro"):
                    if any(alias.name == "kernels" for alias in node.names):
                        imports_kernels = True
                if node.module and node.module.endswith("kernels"):
                    imports_kernels = True
            elif isinstance(node, ast.Import):
                if any("kernels" in alias.name for alias in node.names):
                    imports_kernels = True
        if not imports_kernels:
            findings.append(
                Finding(
                    self.id,
                    module.path,
                    1,
                    "hot-loop module does not import repro.core.kernels; "
                    "its inner loops are outside the kernel equivalence "
                    "contract",
                )
            )
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "reduceat"
            ):
                findings.append(
                    Finding(
                        self.id,
                        module.path,
                        node.lineno,
                        "re-inlined segmented reduction (*.reduceat); "
                        "route through repro.core.kernels so the compiled "
                        "twin and the equivalence tests cover it",
                    )
                )
        return findings
