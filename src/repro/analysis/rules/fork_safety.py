"""Rule ``fork-safety``: nothing unpicklable or shared-mutable crosses a fork.

:class:`~repro.cluster.backends.process.ProcessBackend` ships a
:class:`~repro.cluster.backends.base.ShardSpec` to a worker process —
under ``spawn`` that means *pickling* it, and under ``fork`` every piece
of module-level state in the parent is silently duplicated into each
worker. The in-process backend fans out over threads, so the same
module-level state is *shared* instead. Both failure modes are
structural, so both are checked statically, over the fan-out-reachable
modules (``cluster/``, ``engine/``, and the core modules the shard
engine touches):

1. **Unpicklable payloads into ``ShardSpec``** — a ``lambda`` or a
   locally-defined function passed as a ``ShardSpec(...)`` argument
   pickles under ``spawn`` only by accident of never being exercised,
   then explodes the first time someone flips the start method. Scorers
   and configs must be module-level importable objects.

2. **Module-level mutable containers** — a plain ``dict``/``list``/
   ``set`` at module scope is shared across the thread fan-out and
   duplicated-but-diverging across forked workers. Lookup tables must be
   immutable (``frozenset``, tuple, ``types.MappingProxyType``); genuine
   registries need an explicit suppression explaining why mutation is
   safe. Dunder names (``__all__``) are exempt — import machinery owns
   them.

3. **Module-level OS resources** — a ``threading.Lock()`` (child
   inherits it possibly *held*) or an ``open()`` handle (shared file
   offset across forks) created at import time.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Finding, Module, Project, Rule

__all__ = ["ForkSafetyRule"]

#: Calls that produce mutable containers when assigned at module level.
_MUTABLE_CALLS = frozenset({"dict", "list", "set", "defaultdict", "deque"})

#: Calls that produce OS-level resources unsafe to create at import time
#: in a fork-crossing module.
_RESOURCE_CALLS = frozenset({"Lock", "RLock", "Semaphore", "Condition", "open"})


def _is_mutable_literal(node: ast.expr) -> str | None:
    """A human label when ``node`` evidently builds a mutable container."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in _MUTABLE_CALLS:
            return name
    return None


def _resource_label(node: ast.expr) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _RESOURCE_CALLS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _RESOURCE_CALLS:
        return func.attr
    return None


def _local_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined *inside* other functions (unpicklable)."""
    out: set[str] = set()
    for top in tree.body:
        if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for node in ast.walk(top):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node is not top
                ):
                    out.add(node.name)
    return out


class ForkSafetyRule(Rule):
    id = "fork-safety"
    name = "no unpicklable or shared-mutable state across fork/thread fan-out"
    doc = (
        "In cluster/, engine/ and the shard-reachable core modules: no "
        "lambdas or nested functions passed into ShardSpec(...), no "
        "module-level mutable dict/list/set (wrap in MappingProxyType/"
        "frozenset/tuple or justify a registry), no module-level "
        "threading.Lock()/open() created at import time."
    )

    #: Path fragments of modules that cross the fork / thread boundary.
    scope = (
        "repro/cluster/",
        "repro/engine/",
        "repro/core/caching.py",
        "repro/core/region_index.py",
        "repro/core/kernels.py",
    )

    def _in_scope(self, module: Module) -> bool:
        return any(fragment in module.path for fragment in self.scope)

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            # ShardSpec payload checks apply everywhere (any module may
            # construct a spec); state checks only to fan-out modules.
            findings.extend(self._check_shardspec_payloads(module))
            if self._in_scope(module):
                findings.extend(self._check_module_state(module))
        return findings

    # -- ShardSpec construction ------------------------------------------------

    def _check_shardspec_payloads(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        local_fns = _local_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "ShardSpec"
            ):
                continue
            payloads = list(node.args) + [kw.value for kw in node.keywords]
            for arg in payloads:
                if isinstance(arg, ast.Lambda):
                    findings.append(
                        Finding(
                            self.id,
                            module.path,
                            arg.lineno,
                            "lambda passed into ShardSpec(...); lambdas "
                            "don't pickle, so the spec cannot cross a "
                            "spawn-based process boundary",
                        )
                    )
                elif (
                    isinstance(arg, ast.Name)
                    and arg.id in local_fns
                ):
                    findings.append(
                        Finding(
                            self.id,
                            module.path,
                            arg.lineno,
                            f"locally-defined function {arg.id!r} passed "
                            f"into ShardSpec(...); nested functions don't "
                            f"pickle — use a module-level callable",
                        )
                    )
        return findings

    # -- module-level state ----------------------------------------------------

    def _check_module_state(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        for node in module.tree.body:
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or all(n.startswith("__") for n in names):
                continue

            label = _is_mutable_literal(value)
            if label is not None:
                findings.append(
                    Finding(
                        self.id,
                        module.path,
                        node.lineno,
                        f"module-level mutable {label} {names[0]!r} in a "
                        f"fork/thread fan-out module; freeze it "
                        f"(MappingProxyType/frozenset/tuple) or justify "
                        f"the registry with a suppression",
                    )
                )
                continue

            resource = _resource_label(value)
            if resource is not None:
                findings.append(
                    Finding(
                        self.id,
                        module.path,
                        node.lineno,
                        f"module-level {resource}() {names[0]!r} created "
                        f"at import time; a forked child inherits it "
                        f"(possibly held/mid-write) — create it lazily "
                        f"per owner instead",
                    )
                )
        return findings
