"""Rule ``shared-state``: no unprotected read/write-shared mutables.

The router serves reads by fanning out on pool threads while routed
writes mutate shard state — so anything reachable from **both** the
read path (``topk``/``topk_batch``/``_fan_out``/``_fan_out_batch`` and
executor-submitted callables) and the write path (``insert``/``delete``)
of the ``cluster/`` tier is shared across threads. This rule generalizes
``fork-safety`` from picklability to *mutation*: a shared structure is a
finding unless the analysis can prove a common lock, or the code
declares single-ownership.

Concretely, for every class defined under ``cluster/`` and every
instance attribute of it:

* collect the attribute's **mutation sites** in write-path-reachable
  methods and its **access sites** (reads and mutations) in
  read-path-reachable methods, each with the set of declared locks held
  (entry-held ∪ lexically held, per reachable entry state);
* if both sides are non-empty, the **lockset intersection** over all
  sites must be non-empty (Eraser-style): some one lock is held at
  every touch. An empty intersection is a finding — unless the
  attribute (or its whole class) carries
  ``# repro: thread-owned[name] -- justification`` or the finding is
  suppressed with ``# repro: allow[shared-state] -- why``.

Attributes only ever assigned in ``__init__`` are immutable in this
analysis (construction happens-before publication; ``__init__`` is not
reachable from either path), so plain configuration never fires.

Module-level names of ``cluster/`` modules get the symmetric check: a
name mutated on one path and touched on the other with an empty common
lockset is a finding (bare-name rebinding counts only under an explicit
``global`` declaration).

Scope of the *reachability* walk is the full concurrency surface
(``cluster/`` + engine + mutated core modules) so call chains through
the engine are followed; only ``cluster/``-defined state is reported
here (the core-module state is covered by ``lock-discipline``).
"""

from __future__ import annotations

from repro.analysis.callgraph import Access, CallGraph, FunctionNode, Mutation
from repro.analysis.framework import Finding, Project, Rule
from repro.analysis.rules.lock_discipline import (
    CONCURRENCY_SCOPE,
    collect_thread_owned,
    is_owned,
)

__all__ = ["SharedStateRule"]

#: Method names that begin the concurrent read path.
READ_ROOTS = ("topk", "topk_batch", "_fan_out", "_fan_out_batch")
#: Method names that begin the routed write path.
WRITE_ROOTS = ("insert", "delete")


class SharedStateRule(Rule):
    id = "shared-state"
    name = "read/write-shared cluster state is locked or owned"
    doc = (
        "Instance attributes and module-level names of cluster/ that "
        "are mutated on the write path (insert/delete) and touched on "
        "the read fan-out path (topk/topk_batch and submitted "
        "callables) must share a common declared lock across every "
        "site, be immutable, be declared thread-owned, or carry a "
        "justified suppression."
    )

    scope = CONCURRENCY_SCOPE

    def check(self, project: Project) -> list[Finding]:
        graph = CallGraph(project, self.scope)
        # Marker hygiene findings are lock-discipline's job; here the
        # markers only grant exemptions.
        owners, _ = collect_thread_owned(graph, self.id)

        read_roots = graph.thread_roots(READ_ROOTS)
        write_roots = [
            fn.qual
            for fn in graph.functions.values()
            if fn.name in WRITE_ROOTS
            and fn.cls is not None
            and "cluster/" in fn.path
        ]
        read_states = graph.propagate(read_roots)
        write_states = graph.propagate(write_roots)

        findings = self._check_instance_attrs(
            graph, owners, read_states, write_states
        )
        findings.extend(
            self._check_module_globals(graph, read_states, write_states)
        )
        return findings

    # -- instance attributes ---------------------------------------------------

    def _check_instance_attrs(
        self,
        graph: CallGraph,
        owners: dict[tuple[str, str], set[str] | None],
        read_states: dict[str, set[frozenset[str]]],
        write_states: dict[str, set[frozenset[str]]],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for cls_qual in sorted(graph.classes):
            cls = graph.classes[cls_qual]
            if "cluster/" not in cls.path:
                continue
            for attr in sorted(cls.attrs - cls.locks):
                if is_owned(owners, cls.path, cls.name, attr):
                    continue
                write_sites = _sites(
                    cls.methods.values(), attr, write_states, writes=True
                )
                read_sites = _sites(
                    cls.methods.values(), attr, read_states, writes=False
                )
                if not write_sites or not read_sites:
                    continue
                locksets = [
                    entry | held
                    for _line, held, entries in write_sites + read_sites
                    for entry in entries
                ]
                if locksets and frozenset.intersection(*locksets):
                    continue
                line, _held, _entries = write_sites[0]
                findings.append(
                    Finding(
                        self.id,
                        cls.path,
                        line,
                        f"attribute {attr!r} of {cls.name} is mutated on "
                        f"the write path and touched on the read fan-out "
                        f"path with no lock common to every site; guard "
                        f"both sides with one declared lock or declare "
                        f"'# repro: thread-owned[{attr}] -- <why>'",
                    )
                )
        return findings

    # -- module-level names ----------------------------------------------------

    def _check_module_globals(
        self,
        graph: CallGraph,
        read_states: dict[str, set[frozenset[str]]],
        write_states: dict[str, set[frozenset[str]]],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for path in sorted(graph.module_globals):
            if "cluster/" not in path:
                continue
            fns = [f for f in graph.functions.values() if f.path == path]
            for name in sorted(graph.module_globals[path]):
                r_mut = _global_sites(fns, name, read_states, writes=True)
                w_mut = _global_sites(fns, name, write_states, writes=True)
                r_acc = _global_sites(fns, name, read_states, writes=False)
                w_acc = _global_sites(fns, name, write_states, writes=False)
                if not ((w_mut and r_acc) or (r_mut and w_acc)):
                    continue
                involved = w_mut + r_mut + r_acc + w_acc
                locksets = [
                    entry | held
                    for _line, held, entries in involved
                    for entry in entries
                ]
                if locksets and frozenset.intersection(*locksets):
                    continue
                site = (w_mut or r_mut)[0]
                findings.append(
                    Finding(
                        self.id,
                        path,
                        site[0],
                        f"module-level name {name!r} is mutated on one "
                        f"concurrent path and touched on the other with "
                        f"no common lock; make it immutable, guard it, "
                        f"or justify it with a suppression",
                    )
                )
        return findings


def _sites(
    methods,
    attr: str,
    states: dict[str, set[frozenset[str]]],
    writes: bool,
) -> list[tuple[int, frozenset[str], set[frozenset[str]]]]:
    """``(line, lexically_held, entry_states)`` for every touch of
    ``attr`` in a reachable method — mutations only when ``writes``,
    mutations *and* reads otherwise."""
    out = []
    for fn in methods:
        entries = states.get(fn.qual)
        if not entries:
            continue
        touches: list[Mutation | Access] = list(fn.mutations)
        if not writes:
            touches += fn.self_reads
        for t in touches:
            if t.attr == attr:
                out.append((t.line, t.held, entries))
    return out


def _global_sites(
    fns: list[FunctionNode],
    name: str,
    states: dict[str, set[frozenset[str]]],
    writes: bool,
) -> list[tuple[int, frozenset[str], set[frozenset[str]]]]:
    out = []
    for fn in fns:
        entries = states.get(fn.qual)
        if not entries:
            continue
        if writes:
            for m in fn.name_mutations:
                if m.attr != name:
                    continue
                if m.kind == "assign" and name not in fn.global_decls:
                    continue
                out.append((m.line, m.held, entries))
        else:
            for a in fn.name_reads:
                if a.attr == name:
                    out.append((a.line, a.held, entries))
    return out
