"""Rule ``wire-drift``: codec symmetry and versioned layout fingerprints.

The serving tier's byte formats — the shard wire frames of
:mod:`repro.cluster.wire`, the R-tree page layout of
:mod:`repro.index.serde`, and the :class:`~repro.geometry.polytope.Polytope`
H-representation payload the wire embeds — promise bit-exact round trips
and explicit versioning. Three static checks keep that promise honest:

1. **Codec symmetry** — every module-level ``encode_X`` has a matching
   ``decode_X`` and vice versa. An unpaired codec is a frame that can be
   written but never read (or read but never produced).

2. **Struct-format agreement** — for each ``encode_X``/``decode_X`` pair
   (and each ``_put_X``/``_get_X`` helper pair), the multiset of
   ``struct`` format strings reachable from the encoder equals the
   decoder's, expanding same-module helper calls transitively and
   resolving module-level ``struct.Struct`` constants. Packing ``<qqd``
   on one side and unpacking ``<qdd`` on the other is exactly the drift
   this catches.

3. **Golden fingerprint** — a committed JSON file
   (``src/repro/analysis/golden/wire_layout.json``) records, per format,
   the version constant's value and a SHA-256 over the canonical layout
   description (every codec's expanded format multiset plus the message-
   type/magic constants). If the layout hash changes while the version
   constant did not, the rule fails: the frame bytes changed on the wire
   without bumping ``WIRE_VERSION``/``FORMAT_VERSION``, which breaks the
   decode-time version check's whole reason to exist. Regenerate the
   golden with ``python -m repro.analysis --update-golden`` *after*
   bumping the version.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from repro.analysis.framework import Finding, Module, Project, Rule

__all__ = ["WireDriftRule", "layout_descriptor", "layout_fingerprint"]

_ENCODE = "encode_"
_DECODE = "decode_"
_PUT = "_put_"
_GET = "_get_"

#: Struct-consuming callables whose first argument is a format string.
_STRUCT_CALLS = frozenset(
    {"pack", "unpack", "pack_into", "unpack_from", "Struct", "calcsize"}
)


def _format_of(node: ast.expr) -> str | None:
    """The format-string literal of a struct call argument, with f-string
    interpolations normalized to ``{}`` (shape-dependent counts)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("{}")
        return "".join(parts)
    return None


def _module_structs(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = struct.Struct("<fmt>")`` assignments."""
    out: dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        value = node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "Struct"
            and value.args
        ):
            fmt = _format_of(value.args[0])
            if fmt is not None:
                out[target.id] = fmt
    return out


def _function_formats(
    fn: ast.FunctionDef, structs: dict[str, str]
) -> tuple[list[str], set[str]]:
    """(struct format literals, same-module helper names called) in ``fn``."""
    formats: list[str] = []
    calls: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            # struct.pack("<q", ...) / reader.unpack("<q") / _FRAME.pack(...)
            if func.attr in _STRUCT_CALLS:
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id in structs
                ):
                    formats.append(structs[func.value.id])
                elif node.args:
                    fmt = _format_of(node.args[0])
                    if fmt is not None:
                        formats.append(fmt)
        elif isinstance(func, ast.Name):
            calls.add(func.id)
            if func.id in structs:
                formats.append(structs[func.id])
    return formats, calls


def _expanded_formats(
    name: str,
    functions: dict[str, ast.FunctionDef],
    structs: dict[str, str],
    _seen: frozenset[str] = frozenset(),
) -> list[str]:
    """Format multiset of ``name``, expanding same-module calls."""
    fn = functions.get(name)
    if fn is None or name in _seen:
        return []
    formats, calls = _function_formats(fn, structs)
    for callee in sorted(calls):
        formats.extend(
            _expanded_formats(
                callee, functions, structs, _seen | {name}
            )
        )
    return formats


def _module_constants(tree: ast.Module) -> dict[str, object]:
    """Module-level UPPER_CASE (and ``_DTYPE_*``-style) scalar constants."""
    out: dict[str, object] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        if name != name.upper() or name.startswith("__"):
            continue
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(
            value.value, (int, str, bytes)
        ):
            v = value.value
            out[name] = v.decode("latin-1") if isinstance(v, bytes) else v
    return out


def layout_descriptor(module: Module) -> dict:
    """Canonical JSON-able description of a codec module's byte layout."""
    functions = {
        node.name: node
        for node in module.tree.body
        if isinstance(node, ast.FunctionDef)
    }
    # Methods of module-level classes participate too (Reader, Polytope).
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    functions.setdefault(
                        f"{node.name}.{item.name}", item
                    )
    structs = _module_structs(module.tree)
    codecs = {}
    for name in sorted(functions):
        base = name.rsplit(".", 1)[-1]
        if base.startswith((_ENCODE, _DECODE, _PUT, _GET)) or base in (
            "to_bytes",
            "from_bytes",
        ):
            codecs[name] = sorted(
                _expanded_formats(name, functions, structs)
            )
    return {
        "constants": _module_constants(module.tree),
        "structs": dict(sorted(structs.items())),
        "codecs": codecs,
    }


def layout_fingerprint(descriptors: dict[str, dict]) -> str:
    """SHA-256 over the canonical JSON of per-module layout descriptors."""
    blob = json.dumps(descriptors, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _codec_linenos(module: Module) -> dict[str, int]:
    """Definition lines of module-level functions and class methods (for
    finding locations only — line numbers never enter the fingerprint)."""
    out: dict[str, int] = {}
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef):
            out[node.name] = node.lineno
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    out[f"{node.name}.{item.name}"] = item.lineno
    return out


#: Default golden location, relative to the analysis package itself.
GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "wire_layout.json"


class WireDriftRule(Rule):
    id = "wire-drift"
    name = "codec symmetry + versioned layout fingerprint"
    doc = (
        "Checks cluster/wire.py, index/serde.py and the Polytope byte "
        "codec: encode_*/decode_* pairing, struct-format agreement per "
        "pair, and a committed golden fingerprint that fails when the "
        "byte layout changes without a version-constant bump "
        "(regenerate with --update-golden after bumping)."
    )

    #: ``format name -> (module suffixes hashed, version constant name)``.
    formats: dict[str, tuple[tuple[str, ...], str]] = {
        "wire": (
            ("cluster/wire.py", "geometry/polytope.py"),
            "WIRE_VERSION",
        ),
        "page": (("index/serde.py",), "FORMAT_VERSION"),
    }

    def __init__(self, golden_path: Path | None = None) -> None:
        self.golden_path = Path(golden_path or GOLDEN_PATH)

    # -- golden management -----------------------------------------------------

    def current_golden(self, project: Project) -> dict:
        """The golden payload the current source would commit."""
        golden: dict[str, dict] = {}
        for fmt, (suffixes, version_name) in self.formats.items():
            descriptors: dict[str, dict] = {}
            version = None
            for suffix in suffixes:
                module = project.find(suffix)
                if module is None:
                    continue
                desc = layout_descriptor(module)
                descriptors[suffix] = desc
                if version_name in desc["constants"]:
                    version = desc["constants"][version_name]
            if not descriptors:
                continue
            golden[fmt] = {
                "version_constant": version_name,
                "version": version,
                "fingerprint": layout_fingerprint(descriptors),
            }
        return golden

    def write_golden(self, project: Project) -> Path:
        payload = self.current_golden(project)
        self.golden_path.parent.mkdir(parents=True, exist_ok=True)
        self.golden_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return self.golden_path

    # -- rule ------------------------------------------------------------------

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for fmt, (suffixes, _version) in self.formats.items():
            for suffix in suffixes:
                module = project.find(suffix)
                if module is not None:
                    findings.extend(self._check_symmetry(module))
        findings.extend(self._check_golden(project))
        return findings

    def _check_symmetry(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        desc = layout_descriptor(module)
        codecs = desc["codecs"]
        linenos = _codec_linenos(module)

        # Pairing is checked in both directions; the format comparison only
        # on the writer side (one report per asymmetric pair).
        pairs = (
            (_ENCODE, _DECODE, True),
            (_DECODE, _ENCODE, False),
            (_PUT, _GET, True),
            (_GET, _PUT, False),
        )
        for prefix, mate_prefix, compare in pairs:
            for name, formats in sorted(codecs.items()):
                base = name.rsplit(".", 1)[-1]
                if not base.startswith(prefix):
                    continue
                stem = base[len(prefix) :]
                mate_base = mate_prefix + stem
                mate = next(
                    (
                        n
                        for n in codecs
                        if n.rsplit(".", 1)[-1] == mate_base
                    ),
                    None,
                )
                if mate is None:
                    findings.append(
                        Finding(
                            self.id,
                            module.path,
                            linenos.get(name, 1),
                            f"{name} has no symmetric {mate_base}; an "
                            f"unpaired codec cannot round-trip",
                        )
                    )
                elif compare and formats != codecs[mate]:
                    findings.append(
                        Finding(
                            self.id,
                            module.path,
                            linenos.get(name, 1),
                            f"struct formats of {name} {formats} disagree "
                            f"with {mate} {codecs[mate]}; the two sides "
                            f"of the codec read different bytes",
                        )
                    )
        # to_bytes/from_bytes pair when either exists.
        names = {n.rsplit(".", 1)[-1]: n for n in codecs}
        if ("to_bytes" in names) != ("from_bytes" in names):
            findings.append(
                Finding(
                    self.id,
                    module.path,
                    1,
                    "to_bytes/from_bytes codec is unpaired",
                )
            )
        return findings

    def _check_golden(self, project: Project) -> list[Finding]:
        current = self.current_golden(project)
        if not current:
            return []
        anchor_module = None
        for _fmt, (suffixes, _v) in self.formats.items():
            for suffix in suffixes:
                anchor_module = anchor_module or project.find(suffix)
        path = anchor_module.path if anchor_module else str(self.golden_path)

        if not self.golden_path.exists():
            return [
                Finding(
                    self.id,
                    path,
                    1,
                    f"no committed golden layout fingerprint at "
                    f"{self.golden_path}; run "
                    f"'python -m repro.analysis --update-golden' and "
                    f"commit the result",
                )
            ]
        try:
            golden = json.loads(self.golden_path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            return [
                Finding(
                    self.id,
                    path,
                    1,
                    f"golden layout fingerprint unreadable: {exc}",
                )
            ]

        findings: list[Finding] = []
        for fmt, entry in current.items():
            committed = golden.get(fmt)
            if committed is None:
                findings.append(
                    Finding(
                        self.id,
                        path,
                        1,
                        f"format {fmt!r} missing from the committed "
                        f"golden; regenerate with --update-golden",
                    )
                )
                continue
            if entry["fingerprint"] == committed.get("fingerprint"):
                continue
            if entry["version"] == committed.get("version"):
                findings.append(
                    Finding(
                        self.id,
                        path,
                        1,
                        f"{fmt} byte layout changed but "
                        f"{entry['version_constant']} is still "
                        f"{entry['version']}; bump the version constant, "
                        f"then regenerate the golden with --update-golden",
                    )
                )
            else:
                findings.append(
                    Finding(
                        self.id,
                        path,
                        1,
                        f"{fmt} layout and {entry['version_constant']} "
                        f"both changed; regenerate the golden with "
                        f"--update-golden to commit the new fingerprint",
                    )
                )
        return findings
