"""Rule ``numeric-safety``: no bare float equality, no inline tolerances.

Two checks, both grounded in invariants this repro actually ships:

1. **Bare float equality** — ``==`` / ``!=`` where an operand is
   evidently floating-point (a float literal, a ``float(...)`` /
   ``np.float64(...)`` conversion, a float-returning numpy reduction
   like ``.sum()`` / ``np.dot`` / ``np.linalg.norm``, or arithmetic over
   any of these). Every such comparison in the serving stack is either a
   bug (it should go through a tolerance) or an intentional bit-exact
   test (the backend-equivalence contract) — and intent must be visible:
   either a ``repro: bit-exact`` marker in the module docstring, which
   exempts the whole file, or a per-line suppression with a
   justification.

2. **Inline tolerance literals** — a literal of the form ``1e-N``
   (``3 ≤ N ≤ 320``) anywhere outside :mod:`repro.core.tolerances`.
   Tolerances are system-wide contracts (the grid prescreen is only
   sound because its slack dominates *the* membership tolerance), so
   each one lives exactly once, in the consolidated module, under a name
   that documents what it guards.
"""

from __future__ import annotations

import ast
import math

from repro.analysis.framework import Finding, Module, Project, Rule

__all__ = ["NumericSafetyRule"]

#: Attribute / function names whose call results are treated as floats.
_FLOAT_CALLS = frozenset(
    {
        "float",
        "float64",
        "sum",
        "dot",
        "mean",
        "norm",
        "prod",
        "vdot",
        "trace",
        "maximize",
        "chebyshev_radius",
        "volume",
        "log",
        "log10",
        "exp",
        "sqrt",
    }
)

#: Module docstring marker that exempts a whole file from the bare-float-
#: equality check (for bit-exactness tests, where exact ``==`` is the
#: entire point).
BIT_EXACT_MARKER = "repro: bit-exact"


def _is_tolerance_literal(value: float) -> bool:
    """True for literals of the exact form ``1e-N`` with ``N >= 3``.

    The reconstruction round-trip (format the candidate exponent back
    through ``float``) keeps the test exact without comparing logs up to
    an epsilon — this module must not itself contain a tolerance.
    """
    if not isinstance(value, float) or value <= 0.0:
        return False
    try:
        n = -math.log10(value)
    except ValueError:  # pragma: no cover - value > 0 guards this
        return False
    exponent = round(n)
    if exponent < 3 or exponent > 320:
        return False
    return float(f"1e-{exponent}") == value


def _is_floatish(node: ast.expr) -> bool:
    """Conservatively: does this expression evidently produce a float
    (or a float ndarray)?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _FLOAT_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _FLOAT_CALLS:
            return True
    return False


class NumericSafetyRule(Rule):
    id = "numeric-safety"
    name = "no bare float equality, no inline tolerance literals"
    doc = (
        "Flags ==/!= comparisons with evidently floating-point operands "
        "outside files whose docstring carries a 'repro: bit-exact' "
        "marker, and 1e-N tolerance literals defined anywhere but "
        "repro/core/tolerances.py."
    )

    #: Path suffix of the one module allowed to define tolerance literals.
    tolerances_suffix = "core/tolerances.py"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        docstring = ast.get_docstring(module.tree) or ""
        bit_exact_file = BIT_EXACT_MARKER in docstring
        literals_allowed = module.path.endswith(self.tolerances_suffix)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare) and not bit_exact_file:
                operands = [node.left] + node.comparators
                for i, op in enumerate(node.ops):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    left, right = operands[i], operands[i + 1]
                    if _is_floatish(left) or _is_floatish(right):
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=module.path,
                                line=node.lineno,
                                message=(
                                    "bare ==/!= on a floating-point "
                                    "expression; compare against a "
                                    "tolerance from repro.core.tolerances, "
                                    "or mark the file 'repro: bit-exact' "
                                    "if exact equality is the contract"
                                ),
                            )
                        )
                        break
            elif isinstance(node, ast.Constant) and not literals_allowed:
                if _is_tolerance_literal(node.value):
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"inline tolerance literal {node.value!r}; "
                                f"import a named constant from "
                                f"repro.core.tolerances instead"
                            ),
                        )
                    )
        return findings
