"""Rule ``lock-discipline``: fan-out-reachable mutations hold a lock.

:class:`~repro.cluster.ShardedGIREngine` answers reads by fanning out
over a ``ThreadPoolExecutor`` — so every method reachable from
``_fan_out`` / ``_fan_out_batch`` / an executor-submitted callable can
run on a pool thread, concurrently with whatever the caller's thread
does next. This rule enforces the discipline that makes that safe:

1. **Guarded mutations** — any ``self.<attr>`` store (assignment,
   augmented assignment, subscript store, in-place mutator call like
   ``.append``) in a function reachable from a fan-out root must happen
   with at least one *declared lock* held — lexically (``with
   self.lock:``) or anywhere up the call chain (tracked
   interprocedurally, with the held set reset across ``submit``/
   ``Thread`` spawn edges, because the child thread starts bare).
   A declared lock is an instance attribute assigned from
   ``Lock()``/``RLock()``/``make_lock()``.

2. **Declared single-ownership** — structures that are genuinely
   confined to one thread at a time carry
   ``# repro: thread-owned[name] -- justification`` instead of a lock:
   on (or above) the ``class`` line, naming the class, it declares the
   whole instance single-owner; inside a class body, naming an
   attribute, it declares just that attribute. The justification is
   mandatory (a bare marker is a finding), and a marker naming no known
   class/attribute is a stale-marker finding.

3. **Consistent acquisition order** — locks are ranked by the order the
   code acquires them (``A`` held while taking ``B`` orders ``A`` before
   ``B``, over every interprocedural path); a cycle in that order graph
   is an ABBA deadlock candidate and is reported once per cycle.

The scope is the concurrency surface: ``cluster/`` plus the engine and
the core modules a shard engine mutates while serving
(``engine/engine.py``, ``core/caching.py``, ``core/region_index.py``).
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, ClassNode
from repro.analysis.framework import Finding, Project, Rule

__all__ = ["LockDisciplineRule", "collect_thread_owned", "CONCURRENCY_SCOPE"]

#: Path fragments of the modules the concurrency rules analyze: the
#: cluster tier plus the engine/core modules its shard engines mutate
#: while serving. (Shared with ``shared-state``.)
CONCURRENCY_SCOPE = (
    "repro/cluster/",
    "repro/engine/engine.py",
    "repro/core/caching.py",
    "repro/core/region_index.py",
)

#: Method names that start a pool-thread fan-out in this codebase.
FAN_OUT_ROOTS = ("_fan_out", "_fan_out_batch")


def collect_thread_owned(
    graph: CallGraph, rule_id: str
) -> tuple[dict[tuple[str, str], set[str] | None], list[Finding]]:
    """Resolve every ``# repro: thread-owned[...]`` marker in scope.

    Returns ``(owners, problems)``: ``owners`` maps ``(path, class)`` to
    the owned attribute names (``None`` = the whole class is owned);
    ``problems`` are hygiene findings — unjustified markers and markers
    naming no known class or attribute. Ownership is granted even to an
    unjustified marker (mirroring suppression semantics: the violation
    is the missing *reason*, reported once, not re-reported per use).
    """
    owners: dict[tuple[str, str], set[str] | None] = {}
    problems: list[Finding] = []

    def own_all(path: str, cls: str) -> None:
        owners[(path, cls)] = None

    def own_attr(path: str, cls: str, attr: str) -> None:
        current = owners.setdefault((path, cls), set())
        if current is not None:
            current.add(attr)

    for module in graph.modules:
        classes_here = [
            c for c in graph.classes.values() if c.path == module.path
        ]
        for marker in module.thread_owned():
            if not marker.justification:
                problems.append(
                    Finding(
                        rule_id,
                        module.path,
                        marker.line,
                        f"thread-owned[{marker.name}] marker lacks a "
                        f"justification; write '# repro: "
                        f"thread-owned[{marker.name}] -- <why this "
                        f"structure is single-owner>'",
                    )
                )
            cls = next(
                (
                    c
                    for c in classes_here
                    if c.node.lineno == marker.target
                    and c.name == marker.name
                ),
                None,
            )
            if cls is not None:
                own_all(module.path, cls.name)
                continue
            host = _innermost_class(classes_here, marker.target)
            if host is not None and marker.name == host.name:
                own_all(module.path, host.name)
            elif host is not None and (
                marker.name in host.attrs
                or marker.name in host.methods
                or marker.name in host.locks
            ):
                own_attr(module.path, host.name, marker.name)
            else:
                problems.append(
                    Finding(
                        rule_id,
                        module.path,
                        marker.line,
                        f"stale thread-owned[{marker.name}] marker: "
                        f"names no class on this line and no attribute "
                        f"of the enclosing class",
                    )
                )
    return owners, problems


def _innermost_class(
    classes: list[ClassNode], line: int
) -> ClassNode | None:
    containing = [
        c
        for c in classes
        if c.node.lineno <= line <= (c.node.end_lineno or c.node.lineno)
    ]
    if not containing:
        return None
    return max(containing, key=lambda c: c.node.lineno)


def is_owned(
    owners: dict[tuple[str, str], set[str] | None],
    path: str,
    cls: str | None,
    attr: str,
) -> bool:
    if cls is None:
        return False
    entry = owners.get((path, cls))
    if entry is None and (path, cls) in owners:
        return True
    return entry is not None and attr in entry


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    name = "fan-out-reachable mutations hold a declared lock"
    doc = (
        "Any attribute mutated from a method reachable from _fan_out/"
        "_fan_out_batch or an executor-submitted callable must run with "
        "a declared lock held (lexically or up the call chain) or be "
        "declared '# repro: thread-owned[name] -- why'; lock "
        "acquisition order must be acyclic across all paths (no ABBA)."
    )

    scope = CONCURRENCY_SCOPE

    def check(self, project: Project) -> list[Finding]:
        graph = CallGraph(project, self.scope)
        owners, findings = collect_thread_owned(graph, self.id)

        roots = graph.thread_roots(FAN_OUT_ROOTS)
        states = graph.propagate(roots)
        for qual in sorted(states):
            fn = graph.functions[qual]
            if fn.cls is None:
                continue
            held_sets = states[qual]
            for mut in fn.mutations:
                if is_owned(owners, fn.path, fn.cls, mut.attr):
                    continue
                cls = graph.class_of(fn)
                if cls is not None and mut.attr in cls.locks:
                    continue
                if any(not (entry | mut.held) for entry in held_sets):
                    findings.append(
                        Finding(
                            self.id,
                            fn.path,
                            mut.line,
                            f"attribute {mut.attr!r} of {fn.cls} is "
                            f"mutated on a thread-fan-out-reachable path "
                            f"(via {fn.name!r}) with no declared lock "
                            f"held; wrap the mutation in 'with "
                            f"self.<lock>:' or declare '# repro: "
                            f"thread-owned[{mut.attr}] -- <why>'",
                        )
                    )
        findings.extend(self._check_lock_order(graph))
        return findings

    # -- ABBA ------------------------------------------------------------------

    def _check_lock_order(self, graph: CallGraph) -> list[Finding]:
        edges = graph.lock_order_edges()
        succ: dict[str, set[str]] = {}
        for a, b in edges:
            succ.setdefault(a, set()).add(b)

        findings: list[Finding] = []
        reported: set[frozenset[str]] = set()
        for start in sorted(succ):
            cycle = _find_cycle(succ, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
            sites = "; ".join(
                f"{a}->{b} at {edges[(a, b)][0]}:{edges[(a, b)][1]}"
                for a, b in pairs
                if (a, b) in edges
            )
            path, line = edges[pairs[0]]
            findings.append(
                Finding(
                    self.id,
                    path,
                    line,
                    f"inconsistent lock acquisition order (ABBA deadlock "
                    f"candidate): {' -> '.join(cycle + [cycle[0]])} "
                    f"({sites}); pick one global order and stick to it",
                )
            )
        return findings


def _find_cycle(
    succ: dict[str, set[str]], start: str
) -> list[str] | None:
    """First cycle through ``start`` (DFS), as a node list, or None."""
    stack: list[tuple[str, list[str]]] = [(start, [start])]
    seen: set[str] = set()
    while stack:
        node, trail = stack.pop()
        for nxt in sorted(succ.get(node, ())):
            if nxt == start:
                return trail
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, trail + [nxt]))
    return None
