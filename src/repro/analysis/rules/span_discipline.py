"""Rule ``span-discipline``: trace spans are entered as context managers.

A span that is opened but never closed poisons the whole trace: the
collector's enter/exit accounting goes permanently unbalanced, the
CI trace-smoke gate (which asserts ``balanced``) fails, and — worse —
every later span in the same task silently parents under the leaked
span, so timelines nest wrongly without any functional symptom. The
:mod:`repro.obs` API makes the safe form the easy one (``with
obs.span(...)``), and this rule pins it statically:

1. **No bare ``begin_span()`` / ``end_span()``** outside ``repro.obs``
   itself. The paired low-level calls exist so the tracer can build the
   context managers; user code pairing them by hand loses the
   exception-safety ``with`` gives for free (an exception between the
   two leaks the span). The sanctioned low-level form is
   ``record_span`` — atomic, nothing to leak.
2. **Span constructors are ``with``-items** — a call to ``span`` /
   ``trace`` / ``use_trace`` (through any import alias) must appear
   directly as a ``with`` (or ``async with``) context expression, or as
   the direct argument of an ``ExitStack``-style ``.enter_context(...)``
   call, whose stack closes it exception-safely. Assigning the span to
   a variable first, or calling ``__enter__`` by hand, is a finding.

The ``repro/obs/`` package itself is exempt (it implements the
primitives this rule polices).
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Finding, Module, Project, Rule

__all__ = ["SpanDisciplineRule"]

#: Span-constructor functions that must be entered via ``with`` /
#: ``enter_context``.
_SPAN_FNS = frozenset({"span", "trace", "use_trace"})

#: The hand-paired low-level API, banned outside repro.obs.
_RAW_FNS = frozenset({"begin_span", "end_span"})

#: Module paths of the tracer implementation (every import spelling).
_OBS_MODULES = frozenset({"repro.obs", "repro.obs.trace"})


def _import_aliases(tree: ast.AST) -> tuple[set[str], dict[str, str]]:
    """``(module_aliases, fn_aliases)`` bound to the tracer in a module:
    names referring to the ``repro.obs`` module itself, and local names
    referring to its span functions (mapped to the original name)."""
    modules: set[str] = set()
    fns: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _OBS_MODULES:
                    modules.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "repro":
                for alias in node.names:
                    if alias.name == "obs":
                        modules.add(alias.asname or "obs")
            elif node.module in _OBS_MODULES:
                for alias in node.names:
                    if alias.name in _SPAN_FNS | _RAW_FNS:
                        fns[alias.asname or alias.name] = alias.name
    return modules, fns


def _span_call_name(
    call: ast.Call, modules: set[str], fns: dict[str, str]
) -> str | None:
    """The tracer function a Call invokes (``"span"``/``"trace"``/...),
    or ``None`` if the call is not a tracer call at all."""
    func = call.func
    if isinstance(func, ast.Name):
        return fns.get(func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in modules and func.attr in _SPAN_FNS | _RAW_FNS:
            return func.attr
    return None


def _sanctioned_calls(tree: ast.AST) -> set[int]:
    """Ids of Call nodes in sanctioned positions: direct ``with``-item
    context expressions, and direct arguments of ``.enter_context``."""
    allowed: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    allowed.add(id(item.context_expr))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "enter_context":
                for arg in node.args:
                    if isinstance(arg, ast.Call):
                        allowed.add(id(arg))
    return allowed


class SpanDisciplineRule(Rule):
    id = "span-discipline"
    name = "trace spans are entered as context managers"
    doc = (
        "Outside repro/obs/: bans bare begin_span()/end_span() (an "
        "exception between the pair leaks the span) and requires every "
        "span()/trace()/use_trace() call to be a with-item context "
        "expression or a direct .enter_context(...) argument, so spans "
        "close exception-safely and the collector stays balanced."
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            if "obs/" in module.path:
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: Module) -> list[Finding]:
        modules, fns = _import_aliases(module.tree)
        if not modules and not fns:
            return []
        allowed = _sanctioned_calls(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _span_call_name(node, modules, fns)
            if name is None:
                continue
            if name in _RAW_FNS:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"bare {name}() outside repro.obs — an "
                            f"exception between begin and end leaks the "
                            f"span; use 'with obs.span(...)' (or "
                            f"record_span for the atomic form)"
                        ),
                    )
                )
            elif id(node) not in allowed:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"{name}() is not entered as a context "
                            f"manager — use it directly as a with-item "
                            f"(or pass it to ExitStack.enter_context) so "
                            f"the span closes exception-safely"
                        ),
                    )
                )
        return findings
