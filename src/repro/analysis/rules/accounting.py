"""Rule ``accounting``: every counter a class keeps must be reported.

The bench harness and the paper-reproduction tables are only as honest as
the counter plumbing: a counter that is incremented but never surfaced in
``to_dict()`` / ``stats()`` / ``summary()`` silently drops a column from
every saved report (the eviction split ``capacity_evictions =
lru_evictions + cost_evictions`` was added precisely so the cost-aware
eviction policy's behaviour stays auditable — an unreported counter is
the same bug one refactor later).

The check is structural: for every class that defines at least one
reporting method (``to_dict``, ``stats`` or ``summary``), every *public
counter field* — a dataclass field with a numeric ``0`` / ``0.0`` default
or a plain ``self.name = 0`` init — must be referenced somewhere in the
reporting methods or the class's property bodies (counters folded into a
derived property that is itself reported count as surfaced, because the
property body names them).
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Finding, Project, Rule

__all__ = ["AccountingRule"]

_REPORTING_METHODS = frozenset({"to_dict", "stats", "summary"})


def _is_zero_literal(node: ast.expr | None) -> bool:
    """``0`` or ``0.0`` (but not ``False``)."""
    return (
        isinstance(node, ast.Constant)
        and type(node.value) in (int, float)
        and node.value == 0
    )


def _counter_fields(cls: ast.ClassDef) -> dict[str, int]:
    """Public counter fields of ``cls``: name -> definition line."""
    out: dict[str, int] = {}
    for node in cls.body:
        # Dataclass style: ``name: int = 0``.
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and not node.target.id.startswith("_")
            and _is_zero_literal(node.value)
        ):
            out[node.target.id] = node.lineno
        # Plain-class style: ``self.name = 0`` in __init__.
        elif (
            isinstance(node, ast.FunctionDef)
            and node.name == "__init__"
        ):
            for stmt in ast.walk(node):
                if not (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                ):
                    continue
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and not target.attr.startswith("_")
                    and _is_zero_literal(stmt.value)
                ):
                    out[target.attr] = stmt.lineno
    return out


def _is_property(fn: ast.FunctionDef) -> bool:
    for dec in fn.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else (
            dec.id if isinstance(dec, ast.Name) else None
        )
        if name in ("property", "cached_property"):
            return True
    return False


def _reported_names(cls: ast.ClassDef) -> set[str]:
    """Every attribute / string-key name the class's reporting surface
    mentions: ``to_dict``/``stats``/``summary``, property bodies, and —
    transitively — any same-class helper method those reference (a
    ``stats()`` that merges in ``self.cluster_stats()`` reports whatever
    the helper reports)."""
    methods = {
        node.name: node
        for node in cls.body
        if isinstance(node, ast.FunctionDef)
    }
    names: set[str] = set()
    queue = [
        name
        for name, fn in methods.items()
        if name in _REPORTING_METHODS or _is_property(fn)
    ]
    scanned: set[str] = set()
    while queue:
        name = queue.pop()
        if name in scanned:
            continue
        scanned.add(name)
        for sub in ast.walk(methods[name]):
            if isinstance(sub, ast.Attribute):
                names.add(sub.attr)
                if sub.attr in methods:
                    queue.append(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(
                sub.value, str
            ):
                names.add(sub.value)
    return names


class AccountingRule(Rule):
    id = "accounting"
    name = "every counter field reaches to_dict/stats/summary"
    doc = (
        "For classes that define to_dict()/stats()/summary(): every "
        "public field initialized to 0/0.0 (dataclass default or "
        "self.x = 0 in __init__) must be referenced in a reporting "
        "method or a property body — counters that can increment but "
        "never surface drop columns from saved reports."
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                method_names = {
                    item.name
                    for item in node.body
                    if isinstance(item, ast.FunctionDef)
                }
                if not (method_names & _REPORTING_METHODS):
                    continue
                reported = _reported_names(node)
                for field_name, lineno in sorted(
                    _counter_fields(node).items()
                ):
                    if field_name not in reported:
                        findings.append(
                            Finding(
                                self.id,
                                module.path,
                                lineno,
                                f"counter {node.name}.{field_name} never "
                                f"reaches to_dict/stats/summary or a "
                                f"property; it accumulates invisibly and "
                                f"drops a column from saved reports",
                            )
                        )
        return findings
