"""The rule catalogue of :mod:`repro.analysis`.

``ALL_RULES`` is the registry the CLI selects from; ordering here is the
ordering of ``--list-rules`` output and of ties in rendered findings.
"""

from __future__ import annotations

from repro.analysis.rules.accounting import AccountingRule
from repro.analysis.rules.async_safety import AsyncSafetyRule
from repro.analysis.rules.fork_safety import ForkSafetyRule
from repro.analysis.rules.kernel_purity import KernelPurityRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.numeric_safety import NumericSafetyRule
from repro.analysis.rules.shared_state import SharedStateRule
from repro.analysis.rules.span_discipline import SpanDisciplineRule
from repro.analysis.rules.wire_drift import WireDriftRule

__all__ = [
    "ALL_RULES",
    "NumericSafetyRule",
    "KernelPurityRule",
    "WireDriftRule",
    "ForkSafetyRule",
    "AccountingRule",
    "LockDisciplineRule",
    "SharedStateRule",
    "AsyncSafetyRule",
    "SpanDisciplineRule",
]

ALL_RULES = (
    NumericSafetyRule,
    KernelPurityRule,
    WireDriftRule,
    ForkSafetyRule,
    AccountingRule,
    LockDisciplineRule,
    SharedStateRule,
    AsyncSafetyRule,
    SpanDisciplineRule,
)
