"""Rule ``async-safety``: no blocking calls inside ``serve/`` coroutines.

The serving front door's contract is that the event loop never blocks:
every engine call crosses the one-thread executor bridge
(``run_in_executor``), and waiting is always an ``await``. A single
blocking call in a coroutine silently serializes the whole tier — the
micro-batcher stops collecting, coalescing windows close, and the
latency split the stats report becomes fiction — without failing any
functional test. This rule pins the contract statically, for every
module under a ``serve/`` directory:

1. **``time.sleep``** anywhere in an ``async def`` body — the canonical
   loop-blocker (``asyncio.sleep`` is the awaitable replacement).
2. **Raw lock acquisition** — a non-awaited ``.acquire(...)`` call.
   Thread locks block the loop; asyncio primitives are entered with
   ``async with`` (or an awaited ``acquire``).
3. **Synchronous engine calls** — a non-awaited call to the engine
   serving surface (``topk`` / ``topk_batch`` / ``insert`` / ``delete``
   / ``run``) in a coroutine. Engine work belongs on the executor
   bridge: pass the bound method to ``run_in_executor`` and await the
   future. Awaited calls are exempt — they are the front door's own
   async counterparts, not the engine's blocking methods.

Nested ``def``\\ s inside a coroutine are skipped (they don't run on the
loop by virtue of where they're written), and sync functions are out of
scope entirely — that is what makes the executor-bridge half of the
code legal.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Finding, Module, Project, Rule

__all__ = ["AsyncSafetyRule"]

#: The engine serving surface a coroutine must not call synchronously.
_ENGINE_CALLS = frozenset({"topk", "topk_batch", "insert", "delete", "run"})


def _await_targets(tree: ast.AST) -> set[int]:
    """Ids of every Call node that is directly awaited."""
    targets: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            targets.add(id(node.value))
    return targets


def _coroutine_body_nodes(fn: ast.AsyncFunctionDef):
    """Nodes that execute *on the event loop* when the coroutine runs:
    the body, minus the subtrees of any nested function definition."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a nested def runs wherever it is *called*
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_time_sleep(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "sleep":
        return isinstance(func.value, ast.Name) and func.value.id == "time"
    return False


class AsyncSafetyRule(Rule):
    id = "async-safety"
    name = "serve/ coroutines never block the event loop"
    doc = (
        "Inside async def bodies under serve/: flags time.sleep, "
        "non-awaited lock .acquire(...), and non-awaited calls to the "
        "engine serving surface (topk/topk_batch/insert/delete/run) — "
        "engine work must cross the run_in_executor bridge."
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            if "serve/" not in module.path:
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        awaited = _await_targets(module.tree)
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _coroutine_body_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                if _is_time_sleep(node):
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"time.sleep blocks the event loop in "
                                f"coroutine {fn.name!r}; use asyncio.sleep"
                            ),
                        )
                    )
                    continue
                if id(node) in awaited:
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr == "acquire":
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"non-awaited .acquire() in coroutine "
                                f"{fn.name!r} blocks the event loop; use "
                                f"an asyncio primitive with 'async with'"
                            ),
                        )
                    )
                elif func.attr in _ENGINE_CALLS:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"synchronous engine call .{func.attr}() "
                                f"in coroutine {fn.name!r}; route it "
                                f"through the executor bridge "
                                f"(run_in_executor) and await the future"
                            ),
                        )
                    )
        return findings
