"""Lightweight interprocedural call-graph / reachability layer.

The concurrency rules (``lock-discipline``, ``shared-state``) need to
answer two questions that no single-function AST walk can: *which
functions can run on a fan-out thread?* and *which locks are certainly
held when a statement executes?* This module builds, once per analysis
run, a conservative over-approximation of both:

* a **call graph** whose nodes are functions/methods of the in-scope
  modules and whose edges are resolved name-based: ``self.m(...)``
  binds to the defining class when it defines ``m`` and otherwise to
  every in-scope method named ``m``; ``obj.m(...)`` binds to every
  in-scope method named ``m`` (plus the aliased module's function for
  ``mod.f(...)`` when ``mod`` is an imported project module); bare
  ``f(...)`` binds to the same-module function, a ``from``-imported
  project function, or any in-scope module-level ``f``. Class
  instantiation (``C(...)``) is deliberately *not* resolved to
  ``__init__`` — construction happens-before sharing, so flagging
  initializer stores would only produce noise;

* **spawn edges** for ``pool.submit(fn, ...)``, ``Thread(target=fn)``,
  ``Process(target=fn)`` and ``Timer(_, fn)``: the callee becomes a
  fresh thread root, and — crucially — the held-lock set does *not*
  propagate across the edge (the child starts with nothing held);

* a **held-lock dataflow**: :meth:`CallGraph.propagate` runs a BFS over
  ``(function, frozenset(held_locks))`` states, where a call edge adds
  the locks lexically held at the call site. A mutation is *guarded* in
  a given entry state iff the entry-held set union the locks lexically
  wrapping the mutation is non-empty.

Locks are *declared* instance attributes: any ``self.X = ...`` whose
right-hand side calls ``Lock``/``RLock``/``make_lock`` (including
``sanitize.make_lock``). A lock's identity is ``Class.attr`` — the
name-based abstraction every lock-order tool uses: two instances of the
same class alias to one lock name, which over-approximates ordering
constraints and under-approximates exclusion exactly the safe way
around for deadlock (over-report) but is accepted as "guarded" for
mutation discipline (the rules are a review gate, not a proof).

Everything here is resolution by *name*, on purpose: the codebase is
small, names are unambiguous in practice, and over-approximating the
callee set only makes the rules stricter.
"""

from __future__ import annotations

import ast
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.framework import Module, Project

__all__ = [
    "MUTATOR_METHODS",
    "LOCK_FACTORIES",
    "THREAD_CTORS",
    "Mutation",
    "Access",
    "Acquire",
    "FunctionNode",
    "ClassNode",
    "CallGraph",
]

#: In-place mutator methods of the stdlib containers: calling one of
#: these on ``self.x`` (or a module-level name) mutates the receiver.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "update",
    "pop", "popitem", "popleft", "remove", "discard", "clear",
    "setdefault", "move_to_end", "sort", "reverse",
})

#: Call names whose result is a declared lock when stored on ``self``.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "make_lock"})

#: Constructors whose ``target=`` (or first arg, for ``submit``) starts
#: executing on another thread of control.
THREAD_CTORS = frozenset({"Thread", "Process", "Timer"})


@dataclass(frozen=True)
class Mutation:
    """One store into ``self.<attr>`` (or a bare name, for globals)."""

    attr: str
    #: ``assign`` / ``augassign`` / ``subscript`` / ``call`` / ``del``
    kind: str
    line: int
    #: Lock names lexically held (``with self.lock:``) at the site.
    held: frozenset[str]


@dataclass(frozen=True)
class Access:
    """One read of ``self.<attr>`` (or a bare name, for globals)."""

    attr: str
    line: int
    held: frozenset[str]


@dataclass(frozen=True)
class Acquire:
    """One ``with self.<lock>:`` entry."""

    lock: str
    line: int
    #: Locks already lexically held when this one is taken.
    held: frozenset[str]


@dataclass
class FunctionNode:
    """One function or method, with everything the rules ask about."""

    qual: str
    path: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: ``(ref, lexically_held, line)`` — ref is a resolution descriptor.
    calls: list[tuple[tuple[str, ...], frozenset[str], int]] = field(
        default_factory=list
    )
    #: ``(ref, line)`` — callables handed to another thread of control.
    spawns: list[tuple[tuple[str, ...], int]] = field(default_factory=list)
    mutations: list[Mutation] = field(default_factory=list)
    self_reads: list[Access] = field(default_factory=list)
    name_mutations: list[Mutation] = field(default_factory=list)
    name_reads: list[Access] = field(default_factory=list)
    acquires: list[Acquire] = field(default_factory=list)
    global_decls: set[str] = field(default_factory=set)


@dataclass
class ClassNode:
    """One class definition of an in-scope module."""

    qual: str
    path: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionNode] = field(default_factory=dict)
    properties: set[str] = field(default_factory=set)
    #: Declared lock attribute names (``self.X = Lock()`` anywhere).
    locks: set[str] = field(default_factory=set)
    #: Every attribute ever stored through ``self`` in any method.
    attrs: set[str] = field(default_factory=set)


def _base_name(expr: ast.expr) -> ast.expr:
    """Strip attribute/subscript chains down to the base expression."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr


def _first_attr(expr: ast.expr) -> str | None:
    """For a chain rooted at ``self``, the first-level attribute name
    (``self.a.b[c].d`` → ``a``); ``None`` when the chain has none."""
    first: str | None = None
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            first = node.attr
        node = node.value
    return first


class _FunctionScanner:
    """Single pass over one function body, tracking the lexical lock
    stack. Nested functions and lambdas are *inlined* into their parent
    (their bodies execute, in every case this codebase has, on the same
    thread that reached the parent) — a conservative over-approximation
    that keeps closures visible to reachability."""

    def __init__(self, fn: FunctionNode, lock_attrs: set[str], cls: str | None):
        self.fn = fn
        self.lock_attrs = lock_attrs
        self.cls = cls

    def _lock_name(self, expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.lock_attrs
        ):
            return f"{self.cls}.{expr.attr}"
        return None

    # -- statement / expression walk -----------------------------------------

    def scan(self, body: list[ast.stmt], held: frozenset[str]) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _stmt(self, node: ast.stmt, held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                self._expr(item.context_expr, held)
                lock = self._lock_name(item.context_expr)
                if lock is not None:
                    self.fn.acquires.append(
                        Acquire(lock=lock, line=item.context_expr.lineno, held=inner)
                    )
                    inner = inner | {lock}
            self.scan(node.body, inner)
            return
        if isinstance(node, ast.Assign):
            for t in node.targets:
                self._store(t, "assign", node.lineno, held)
            self._expr(node.value, held)
            return
        if isinstance(node, ast.AugAssign):
            self._store(node.target, "augassign", node.lineno, held)
            # An augmented store also reads its target.
            self._expr_load(node.target, held)
            self._expr(node.value, held)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._store(node.target, "assign", node.lineno, held)
                self._expr(node.value, held)
            return
        if isinstance(node, ast.Delete):
            for t in node.targets:
                self._store(t, "del", node.lineno, held)
            return
        if isinstance(node, ast.Global):
            self.fn.global_decls.update(node.names)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.scan(node.body, held)
            return
        # Generic statement: walk child statements with the same held
        # set, and child expressions for reads/calls.
        for field_name, value in ast.iter_fields(node):
            if isinstance(value, list):
                stmts = [v for v in value if isinstance(v, ast.stmt)]
                if stmts:
                    self.scan(stmts, held)
                for v in value:
                    if isinstance(v, ast.expr):
                        self._expr(v, held)
            elif isinstance(value, ast.expr):
                self._expr(value, held)
            elif isinstance(value, ast.stmt):
                self._stmt(value, held)

    def _store(
        self, target: ast.expr, kind: str, line: int, held: frozenset[str]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, kind, line, held)
            return
        base = _base_name(target)
        if isinstance(base, ast.Name) and base.id == "self":
            attr = _first_attr(target)
            if attr is not None:
                real_kind = (
                    "subscript" if isinstance(target, ast.Subscript) else kind
                )
                self.fn.mutations.append(
                    Mutation(attr=attr, kind=real_kind, line=line, held=held)
                )
            return
        if isinstance(base, ast.Name):
            if target is base:
                # Bare-name assignment: a global mutation only under an
                # explicit ``global`` declaration (checked by the rule).
                self.fn.name_mutations.append(
                    Mutation(attr=base.id, kind=kind, line=line, held=held)
                )
            else:
                self.fn.name_mutations.append(
                    Mutation(attr=base.id, kind="subscript", line=line, held=held)
                )
            return
        # Subscript/attribute of a complex base (call result, etc.):
        # walk it for reads; no attributable mutation.
        self._expr(target, held)

    def _expr_load(self, expr: ast.expr, held: frozenset[str]) -> None:
        """Record the *read* half of an augmented assignment target."""
        base = _base_name(expr)
        if isinstance(base, ast.Name) and base.id == "self":
            attr = _first_attr(expr)
            if attr is not None:
                self.fn.self_reads.append(
                    Access(attr=attr, line=expr.lineno, held=held)
                )
        elif isinstance(base, ast.Name):
            self.fn.name_reads.append(
                Access(attr=base.id, line=expr.lineno, held=held)
            )

    def _callable_ref(self, expr: ast.expr) -> tuple[str, ...] | None:
        """Resolution descriptor for an expression used as a callable."""
        if isinstance(expr, ast.Name):
            return ("name", expr.id)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return ("selfattr", expr.attr)
            if isinstance(expr.value, ast.Name):
                return ("dotted", expr.value.id, expr.attr)
            return ("method", expr.attr)
        return None

    def _expr(self, expr: ast.expr | None, held: frozenset[str]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            self._call(expr, held)
            return
        if isinstance(expr, ast.Attribute) and isinstance(expr.ctx, ast.Load):
            base = _base_name(expr)
            if isinstance(base, ast.Name) and base.id == "self":
                attr = _first_attr(expr)
                if attr is not None:
                    self.fn.self_reads.append(
                        Access(attr=attr, line=expr.lineno, held=held)
                    )
                # The chain below the first attribute needs no further
                # walk for self-reads, but may contain calls/subscripts.
                for child in ast.walk(expr):
                    if isinstance(child, ast.Call):
                        self._call(child, held)
                return
        if isinstance(expr, ast.Name) and isinstance(expr.ctx, ast.Load):
            self.fn.name_reads.append(
                Access(attr=expr.id, line=expr.lineno, held=held)
            )
            return
        if isinstance(expr, ast.Lambda):
            self._expr(expr.body, held)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, held)
            elif isinstance(child, ast.stmt):  # pragma: no cover - defensive
                self._stmt(child, held)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, held)
                for cond in child.ifs:
                    self._expr(cond, held)

    def _call(self, call: ast.Call, held: frozenset[str]) -> None:
        func = call.func
        ref = self._callable_ref(func)
        spawn_target: ast.expr | None = None
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            if call.args:
                spawn_target = call.args[0]
        elif ref is not None and ref[-1] in THREAD_CTORS:
            for kw in call.keywords:
                if kw.arg == "target":
                    spawn_target = kw.value
        if spawn_target is not None:
            sref = self._callable_ref(spawn_target)
            if sref is not None:
                self.fn.spawns.append((sref, spawn_target.lineno))

        if ref is not None:
            self.fn.calls.append((ref, held, call.lineno))
        else:
            self._expr(func, held)
        # Mutator-method call on a self attribute / bare name:
        # ``self.x.append(v)`` mutates ``x``.
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            base = _base_name(func.value)
            attr = _first_attr(func)
            if isinstance(base, ast.Name) and base.id == "self":
                if attr is not None and attr != func.attr:
                    self.fn.mutations.append(
                        Mutation(attr=attr, kind="call", line=call.lineno, held=held)
                    )
            elif isinstance(base, ast.Name):
                self.fn.name_mutations.append(
                    Mutation(
                        attr=base.id, kind="call", line=call.lineno, held=held
                    )
                )
        # Receiver chain of an attribute call is itself a read.
        if isinstance(func, ast.Attribute):
            self._expr(func.value, held)
        for arg in call.args:
            if arg is not spawn_target:
                self._expr(arg, held)
        for kw in call.keywords:
            if kw.value is not spawn_target:
                self._expr(kw.value, held)


class CallGraph:
    """Name-resolved call graph over the in-scope modules of a project."""

    def __init__(self, project: Project, scope: Iterable[str]) -> None:
        self.scope = tuple(scope)
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        self.classes_by_name: dict[str, list[ClassNode]] = defaultdict(list)
        self.methods_by_name: dict[str, list[FunctionNode]] = defaultdict(list)
        self.module_functions: dict[str, dict[str, FunctionNode]] = {}
        self.module_globals: dict[str, set[str]] = {}
        #: Per-module import maps: alias → dotted module, name → (module, name).
        self._mod_aliases: dict[str, dict[str, str]] = {}
        self._from_imports: dict[str, dict[str, tuple[str, str]]] = {}
        self._dotted: dict[str, str] = {}
        self.modules: list[Module] = [
            m for m in project if any(frag in m.path for frag in self.scope)
        ]
        for module in self.modules:
            self._index_module(module)
        for module in self.modules:
            self._scan_module(module)

    # -- construction ----------------------------------------------------------

    def _index_module(self, module: Module) -> None:
        path = module.path
        self._dotted[path] = path[:-3].replace("/", ".") if path.endswith(
            ".py"
        ) else path.replace("/", ".")
        self.module_functions[path] = {}
        self.module_globals[path] = set()
        self._mod_aliases[path] = {}
        self._from_imports[path] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._mod_aliases[path][alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self._from_imports[path][alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionNode(
                    qual=f"{path}::{node.name}",
                    path=path,
                    cls=None,
                    name=node.name,
                    node=node,
                )
                self.functions[fn.qual] = fn
                self.module_functions[path][node.name] = fn
            elif isinstance(node, ast.ClassDef):
                cls = ClassNode(
                    qual=f"{path}::{node.name}",
                    path=path,
                    name=node.name,
                    node=node,
                )
                self.classes[cls.qual] = cls
                self.classes_by_name[node.name].append(cls)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = FunctionNode(
                            qual=f"{path}::{node.name}.{item.name}",
                            path=path,
                            cls=node.name,
                            name=item.name,
                            node=item,
                        )
                        cls.methods[item.name] = fn
                        self.functions[fn.qual] = fn
                        self.methods_by_name[item.name].append(fn)
                        for dec in item.decorator_list:
                            if isinstance(dec, ast.Name) and dec.id == "property":
                                cls.properties.add(item.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name) and not t.id.startswith("__"):
                        self.module_globals[path].add(t.id)

    def _scan_module(self, module: Module) -> None:
        path = module.path
        for cls in [c for c in self.classes.values() if c.path == path]:
            # Pass 1: declared locks and known attributes (needed before
            # the body scan can classify ``with self.X:`` blocks).
            for fn in cls.methods.values():
                for node in ast.walk(fn.node):
                    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for t in targets:
                            base = _base_name(t)
                            if isinstance(base, ast.Name) and base.id == "self":
                                attr = _first_attr(t)
                                if attr:
                                    cls.attrs.add(attr)
                            if (
                                isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                                and isinstance(node, (ast.Assign, ast.AnnAssign))
                                and node.value is not None
                                and self._is_lock_ctor(node.value)
                            ):
                                cls.locks.add(t.attr)
            # Pass 2: full body scan with the lock set known.
            for fn in cls.methods.values():
                scanner = _FunctionScanner(fn, cls.locks, cls.name)
                scanner.scan(fn.node.body, frozenset())
                # Property loads on self resolve to the getter.
                for read in fn.self_reads:
                    if read.attr in cls.properties and read.attr != fn.name:
                        fn.calls.append(
                            (("selfattr", read.attr), read.held, read.line)
                        )
        for fn in self.module_functions[path].values():
            scanner = _FunctionScanner(fn, set(), None)
            scanner.scan(fn.node.body, frozenset())

    @staticmethod
    def _is_lock_ctor(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in LOCK_FACTORIES

    # -- resolution ------------------------------------------------------------

    def class_of(self, fn: FunctionNode) -> ClassNode | None:
        if fn.cls is None:
            return None
        return self.classes.get(f"{fn.path}::{fn.cls}")

    def _module_path_of(self, dotted: str) -> str | None:
        for path, d in self._dotted.items():
            if d == dotted or d.endswith("." + dotted):
                return path
        return None

    def resolve(
        self, fn: FunctionNode, ref: tuple[str, ...]
    ) -> list[FunctionNode]:
        kind = ref[0]
        if kind == "name":
            name = ref[1]
            local = self.module_functions.get(fn.path, {})
            if name in local:
                return [local[name]]
            imported = self._from_imports.get(fn.path, {}).get(name)
            if imported is not None:
                target = self._module_path_of(imported[0])
                if target is not None:
                    got = self.module_functions.get(target, {}).get(imported[1])
                    return [got] if got is not None else []
            return [
                fns[name]
                for fns in self.module_functions.values()
                if name in fns
            ]
        if kind == "selfattr":
            meth = ref[1]
            cls = self.class_of(fn)
            if cls is not None and meth in cls.methods:
                return [cls.methods[meth]]
            return list(self.methods_by_name.get(meth, []))
        if kind == "dotted":
            base, meth = ref[1], ref[2]
            dotted = self._mod_aliases.get(fn.path, {}).get(base)
            if dotted is not None:
                target = self._module_path_of(dotted)
                if target is not None:
                    got = self.module_functions.get(target, {}).get(meth)
                    if got is not None:
                        return [got]
            return list(self.methods_by_name.get(meth, []))
        if kind == "method":
            return list(self.methods_by_name.get(ref[1], []))
        return []

    # -- reachability ----------------------------------------------------------

    def propagate(
        self, roots: Iterable[str]
    ) -> dict[str, set[frozenset[str]]]:
        """BFS over ``(function, held-locks)`` states from ``roots``
        (each seeded with the empty held set). Spawn edges reset the
        held set — the child thread starts with nothing held."""
        states: dict[str, set[frozenset[str]]] = defaultdict(set)
        work: deque[tuple[str, frozenset[str]]] = deque()

        def push(qual: str, held: frozenset[str]) -> None:
            if held not in states[qual]:
                states[qual].add(held)
                work.append((qual, held))

        for qual in roots:
            if qual in self.functions:
                push(qual, frozenset())
        while work:
            qual, held = work.popleft()
            fn = self.functions[qual]
            for ref, lex_held, _line in fn.calls:
                for callee in self.resolve(fn, ref):
                    push(callee.qual, held | lex_held)
            for ref, _line in fn.spawns:
                for callee in self.resolve(fn, ref):
                    push(callee.qual, frozenset())
        return dict(states)

    def thread_roots(self, names: Iterable[str]) -> list[str]:
        """Quals of every function whose bare name is in ``names``, plus
        every spawn target anywhere in scope — the set of functions that
        can be the first frame on a non-main thread of control."""
        wanted = set(names)
        roots = [
            fn.qual for fn in self.functions.values() if fn.name in wanted
        ]
        for fn in self.functions.values():
            for ref, _line in fn.spawns:
                for callee in self.resolve(fn, ref):
                    roots.append(callee.qual)
        return sorted(set(roots))

    # -- lock-order graph ------------------------------------------------------

    def lock_order_edges(
        self,
    ) -> dict[tuple[str, str], tuple[str, int]]:
        """``(held, acquired) → example (path, line)`` over every state
        reachable from *any* function seeded with the empty held set —
        i.e. every acquisition order the code can exhibit, whatever the
        entry point. Same-name pairs (reentrant re-acquisition) are not
        edges."""
        states = self.propagate(list(self.functions))
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        for qual, held_sets in states.items():
            fn = self.functions[qual]
            if not fn.acquires:
                continue
            for entry in held_sets:
                for acq in fn.acquires:
                    for h in entry | acq.held:
                        if h != acq.lock and (h, acq.lock) not in edges:
                            edges[(h, acq.lock)] = (fn.path, acq.line)
        return edges
