"""R-tree node layout and page-capacity arithmetic.

A node occupies exactly one disk page. Fan-out is derived from the page size
the way a C++ implementation would lay entries out on disk:

* leaf entry: ``d`` float64 attribute values + one 8-byte record id;
* internal entry: an MBB (``2 d`` float64) + one 8-byte child page id;
* a small fixed page header.

This makes the simulated page counts (and therefore the I/O measurements)
track dataset dimensionality the same way the paper's numbers do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.mbb import MBB

__all__ = ["NodeEntry", "Node", "node_capacities", "PAGE_HEADER_BYTES"]

#: Bytes reserved per page for node metadata (level, count, ids).
PAGE_HEADER_BYTES = 32


def node_capacities(page_size: int, d: int) -> tuple[int, int]:
    """Return ``(leaf_capacity, internal_capacity)`` for a page size.

    Capacities are floored at 4 so that degenerate configurations (huge ``d``
    with a tiny page) still yield a working tree.
    """
    if d <= 0:
        raise ValueError("dimensionality must be positive")
    usable = page_size - PAGE_HEADER_BYTES
    leaf_entry = 8 * d + 8
    internal_entry = 16 * d + 8
    leaf_cap = max(4, usable // leaf_entry)
    internal_cap = max(4, usable // internal_entry)
    return int(leaf_cap), int(internal_cap)


@dataclass
class NodeEntry:
    """One slot of a node.

    For a leaf node, ``child_id`` is a *record id* and ``mbb`` is the
    degenerate box of the record's point. For an internal node, ``child_id``
    is a child *page id* and ``mbb`` is the child's bounding box.
    """

    mbb: MBB
    child_id: int

    @property
    def point(self) -> np.ndarray:
        """The record point (valid for leaf entries only)."""
        return self.mbb.lo


class Node:
    """One R-tree node = one disk page."""

    __slots__ = ("node_id", "level", "entries", "parent_id")

    def __init__(self, node_id: int, level: int, entries: list[NodeEntry] | None = None):
        self.node_id = node_id
        self.level = level  # 0 = leaf
        self.entries: list[NodeEntry] = entries if entries is not None else []
        self.parent_id: int | None = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbb(self) -> MBB:
        """Tight bounding box over the node's entries."""
        if not self.entries:
            raise ValueError(f"node {self.node_id} has no entries")
        return MBB.union_of([e.mbb for e in self.entries])

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else f"internal(l={self.level})"
        return f"Node(id={self.node_id}, {kind}, entries={len(self.entries)})"
