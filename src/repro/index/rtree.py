"""Dynamic R*-tree (Beckmann et al., SIGMOD 1990) over a simulated page store.

This is the access method the paper indexes its datasets with. The
implementation follows the original R* design:

* **choose-subtree** — minimum overlap enlargement at the level above the
  leaves, minimum area enlargement elsewhere;
* **forced reinsert** — on the first overflow per level per insertion, the
  30% of entries farthest from the node centre are reinserted;
* **topological split** — split axis chosen by minimum total margin, split
  position by minimum overlap (ties: minimum combined area).

Query-time node accesses go through :meth:`RStarTree.fetch`, which meters
page reads on the underlying :class:`~repro.index.storage.PageStore`;
construction and maintenance use unmetered reads, matching how the paper
charges I/O to query processing only.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.index.mbb import MBB
from repro.index.node import Node, NodeEntry, node_capacities
from repro.index.storage import PageStore

__all__ = ["RStarTree"]

#: Fraction of entries evicted by forced reinsertion (the R* paper's p=30%).
REINSERT_FRACTION = 0.3

#: Minimum node fill as a fraction of capacity (the R* paper's 40%).
MIN_FILL_FRACTION = 0.4


class RStarTree:
    """R*-tree storing ``d``-dimensional points keyed by record id.

    Parameters
    ----------
    d:
        Dimensionality of the indexed points.
    store:
        Backing :class:`PageStore`; a private one is created if omitted.
    leaf_capacity / internal_capacity:
        Fan-out overrides; by default derived from the store's page size via
        :func:`repro.index.node.node_capacities`.
    """

    def __init__(
        self,
        d: int,
        store: PageStore | None = None,
        leaf_capacity: int | None = None,
        internal_capacity: int | None = None,
    ) -> None:
        if d <= 0:
            raise ValueError("dimensionality must be positive")
        self.d = int(d)
        self.store = store if store is not None else PageStore()
        auto_leaf, auto_internal = node_capacities(self.store.page_size, d)
        self.leaf_capacity = int(leaf_capacity or auto_leaf)
        self.internal_capacity = int(internal_capacity or auto_internal)
        if self.leaf_capacity < 2 or self.internal_capacity < 2:
            raise ValueError("node capacities must be at least 2")
        self.size = 0
        #: Structural mutation counter: bumped by every successful
        #: ``insert``/``delete``. Retained query state (e.g. a
        #: :class:`~repro.query.brs.BRSRun` heap) is only resumable while
        #: this counter matches the value it was captured at.
        self.mutations = 0
        root = Node(self.store.allocate(), level=0)
        self.store.write(root)
        self.root_id = root.node_id

    # ------------------------------------------------------------------ util

    def _capacity(self, node: Node) -> int:
        return self.leaf_capacity if node.is_leaf else self.internal_capacity

    def _min_fill(self, node: Node) -> int:
        return max(1, math.floor(MIN_FILL_FRACTION * self._capacity(node)))

    def _node(self, node_id: int) -> Node:
        """Unmetered node access for construction/maintenance."""
        return self.store.read_unmetered(node_id)

    def fetch(self, node_id: int) -> Node:
        """Metered node access: charges one page read (query-time use)."""
        return self.store.read(node_id)

    def root(self) -> Node:
        return self._node(self.root_id)

    @property
    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        return self.root().level + 1

    def root_entries(self) -> list[NodeEntry]:
        """Entries of the root, free of I/O charge (the root is pinned in
        memory in any real system)."""
        return list(self.root().entries)

    # ---------------------------------------------------------------- insert

    def insert(self, point: np.ndarray, rid: int) -> None:
        """Insert record ``rid`` located at ``point``."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise ValueError(f"expected point of shape ({self.d},)")
        entry = NodeEntry(MBB.of_point(point), rid)
        self._reinserted_levels: set[int] = set()
        self._pending: list[tuple[NodeEntry, int]] = [(entry, 0)]
        while self._pending:
            pending_entry, level = self._pending.pop()
            self._insert_at_level(pending_entry, level)
        self.size += 1
        self.mutations += 1

    def _insert_at_level(self, entry: NodeEntry, target_level: int) -> None:
        root = self.root()
        if root.level < target_level:  # can happen only transiently
            raise RuntimeError("target level above root")
        split_entry = self._insert_rec(root, entry, target_level)
        if split_entry is not None:
            # Root split: grow the tree by one level.
            old_root = self.root()
            new_root = Node(self.store.allocate(), level=old_root.level + 1)
            new_root.entries.append(NodeEntry(old_root.mbb(), old_root.node_id))
            new_root.entries.append(split_entry)
            self.store.write(new_root)
            self.root_id = new_root.node_id

    def _insert_rec(
        self, node: Node, entry: NodeEntry, target_level: int
    ) -> NodeEntry | None:
        """Insert ``entry`` under ``node``; return a new sibling entry if
        ``node`` was split."""
        if node.level == target_level:
            node.entries.append(entry)
        else:
            child_idx = self._choose_subtree(node, entry)
            child = self._node(node.entries[child_idx].child_id)
            split_entry = self._insert_rec(child, entry, target_level)
            node.entries[child_idx] = NodeEntry(child.mbb(), child.node_id)
            if split_entry is not None:
                node.entries.append(split_entry)
        if len(node.entries) > self._capacity(node):
            return self._overflow(node)
        self.store.write(node)
        return None

    def _choose_subtree(self, node: Node, entry: NodeEntry) -> int:
        """R* choose-subtree: index of the child to descend into."""
        boxes = [e.mbb for e in node.entries]
        if node.level == 1:
            # Children are leaves: minimise overlap enlargement.
            best_idx = -1
            best_key: tuple[float, float, float] | None = None
            for i, box in enumerate(boxes):
                merged = box.union(entry.mbb)
                overlap_before = sum(
                    box.overlap(other) for j, other in enumerate(boxes) if j != i
                )
                overlap_after = sum(
                    merged.overlap(other) for j, other in enumerate(boxes) if j != i
                )
                key = (
                    overlap_after - overlap_before,
                    box.enlargement(entry.mbb),
                    box.area(),
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_idx = i
            return best_idx
        best_idx = -1
        best_key2: tuple[float, float] | None = None
        for i, box in enumerate(boxes):
            key2 = (box.enlargement(entry.mbb), box.area())
            if best_key2 is None or key2 < best_key2:
                best_key2 = key2
                best_idx = i
        return best_idx

    # -------------------------------------------------------------- overflow

    def _overflow(self, node: Node) -> NodeEntry | None:
        """Handle an over-full node: forced reinsert once per level, else
        split. Returns the new sibling's entry when a split happened."""
        is_root = node.node_id == self.root_id
        if not is_root and node.level not in self._reinserted_levels:
            self._reinserted_levels.add(node.level)
            self._force_reinsert(node)
            self.store.write(node)
            return None
        return self._split(node)

    def _force_reinsert(self, node: Node) -> None:
        """Evict the ~30% of entries farthest from the node centre and queue
        them for reinsertion at the same level."""
        count = max(1, int(REINSERT_FRACTION * len(node.entries)))
        centre = node.mbb().center()
        distances = [
            float(np.sum((e.mbb.center() - centre) ** 2)) for e in node.entries
        ]
        order = np.argsort(distances)  # ascending; evict the tail (farthest)
        keep = [node.entries[i] for i in order[:-count]]
        evicted = [node.entries[i] for i in order[-count:]]
        node.entries = keep
        # Reinsert close entries first (the R* paper's "close reinsert").
        for entry in reversed(evicted):
            self._pending.append((entry, node.level))

    def _split(self, node: Node) -> NodeEntry:
        """R* topological split; mutates ``node`` and returns the entry for
        the freshly allocated sibling."""
        entries = node.entries
        min_fill = self._min_fill(node)
        max_k = len(entries) - min_fill
        best: tuple[float, float, list[NodeEntry], list[NodeEntry]] | None = None

        # Choose split axis by minimal total margin, then the best
        # distribution on that axis by (overlap, combined area).
        best_axis, best_axis_margin = -1, float("inf")
        axis_sorted: dict[int, list[list[NodeEntry]]] = {}
        for axis in range(self.d):
            by_lo = sorted(entries, key=lambda e: (e.mbb.lo[axis], e.mbb.hi[axis]))
            by_hi = sorted(entries, key=lambda e: (e.mbb.hi[axis], e.mbb.lo[axis]))
            axis_sorted[axis] = [by_lo, by_hi]
            margin_sum = 0.0
            for ordering in (by_lo, by_hi):
                for k in range(min_fill, max_k + 1):
                    left = MBB.union_of([e.mbb for e in ordering[:k]])
                    right = MBB.union_of([e.mbb for e in ordering[k:]])
                    margin_sum += left.margin() + right.margin()
            if margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                best_axis = axis

        for ordering in axis_sorted[best_axis]:
            for k in range(min_fill, max_k + 1):
                group_a = ordering[:k]
                group_b = ordering[k:]
                mbb_a = MBB.union_of([e.mbb for e in group_a])
                mbb_b = MBB.union_of([e.mbb for e in group_b])
                key = (mbb_a.overlap(mbb_b), mbb_a.area() + mbb_b.area())
                if best is None or key < (best[0], best[1]):
                    best = (key[0], key[1], group_a, group_b)

        assert best is not None
        node.entries = best[2]
        sibling = Node(self.store.allocate(), level=node.level, entries=best[3])
        self.store.write(node)
        self.store.write(sibling)
        return NodeEntry(sibling.mbb(), sibling.node_id)

    # ---------------------------------------------------------------- delete

    def delete(self, point: np.ndarray, rid: int) -> bool:
        """Remove record ``rid`` at ``point``. Returns False if absent."""
        point = np.asarray(point, dtype=np.float64)
        path = self._find_leaf(self.root(), point, rid, [])
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries = [e for e in leaf.entries if e.child_id != rid or not e.mbb.contains_point(point)]
        self.store.write(leaf)
        orphans = self._condense(path)
        self.size -= 1
        self.mutations += 1
        # Shrink the root while it is an internal node with a single child.
        root = self.root()
        while not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0].child_id
            self.store.free(root.node_id)
            self.root_id = child_id
            root = self.root()
        # Reinsert every orphaned entry. An orphan's level can equal the
        # (post-shrink) root level, in which case the entry is appended into
        # the root itself; levels above the root violate the invariant that
        # only nodes below the root dissolve and raise in _insert_at_level.
        for entry, level in orphans:
            self._reinserted_levels = set()
            self._pending = [(entry, level)]
            while self._pending:
                pending_entry, lvl = self._pending.pop()
                self._insert_at_level(pending_entry, lvl)
        return True

    def _find_leaf(
        self, node: Node, point: np.ndarray, rid: int, path: list[Node]
    ) -> list[Node] | None:
        path = path + [node]
        if node.is_leaf:
            for e in node.entries:
                if e.child_id == rid and e.mbb.contains_point(point):
                    return path
            return None
        for e in node.entries:
            if e.mbb.contains_point(point):
                found = self._find_leaf(self._node(e.child_id), point, rid, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: list[Node]) -> list[tuple[NodeEntry, int]]:
        """Propagate underflow upward (the classic condense-tree procedure).

        Returns the orphaned ``(entry, level)`` pairs of every dissolved
        node for the caller to reinsert. Reinsertion is unconditional:
        an earlier revision guarded it with ``level == 0 or level <
        self.root().level``, which silently discards any orphan whose level
        reaches the root's — losing every indexed point under that entry —
        instead of appending it into the root.
        """
        orphans: list[tuple[NodeEntry, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self._min_fill(node):
                parent.entries = [e for e in parent.entries if e.child_id != node.node_id]
                for e in node.entries:
                    orphans.append((e, node.level))
                self.store.free(node.node_id)
            else:
                for i, e in enumerate(parent.entries):
                    if e.child_id == node.node_id:
                        parent.entries[i] = NodeEntry(node.mbb(), node.node_id)
                        break
            self.store.write(parent)
        return orphans

    # ---------------------------------------------------------------- search

    def range_query(self, lo: np.ndarray, hi: np.ndarray, metered: bool = False) -> list[int]:
        """Record ids whose points fall inside the window ``[lo, hi]``."""
        window = MBB(np.asarray(lo, float), np.asarray(hi, float))
        result: list[int] = []
        read = self.fetch if metered else self._node
        stack = [self.root_id]
        while stack:
            node = read(stack.pop())
            for e in node.entries:
                # Descend on the closed-box intersects predicate: a volume
                # test (`overlap > 0`) skips zero-volume contacts — flat
                # MBBs from duplicated coordinates, or entries that only
                # touch the window boundary — and drops their records.
                if window.intersects(e.mbb):
                    if node.is_leaf:
                        if window.contains_point(e.point):
                            result.append(e.child_id)
                    else:
                        stack.append(e.child_id)
        return result

    # ------------------------------------------------------------ validation

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes in the tree, root first (unmetered)."""
        stack = [self.root_id]
        while stack:
            node = self._node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(e.child_id for e in node.entries)

    def validate(self, check_fill: bool = True) -> None:
        """Check structural invariants; raises AssertionError on violation.

        Invariants: every child entry's MBB equals the child's tight MBB,
        all leaves share level 0, non-root nodes respect minimum fill
        (skippable for bulk-loaded trees whose tail nodes may be lighter),
        no node exceeds capacity, and the number of indexed points equals
        ``self.size``.
        """
        count = 0
        for node in self.iter_nodes():
            assert len(node.entries) <= self._capacity(node), "capacity exceeded"
            if check_fill and node.node_id != self.root_id and self.size > 0:
                assert len(node.entries) >= self._min_fill(node), (
                    f"underfull node {node.node_id}"
                )
            if node.is_leaf:
                count += len(node.entries)
            else:
                for e in node.entries:
                    child = self._node(e.child_id)
                    assert child.level == node.level - 1, "broken level structure"
                    assert e.mbb == child.mbb(), "stale parent MBB"
        assert count == self.size, f"size mismatch: {count} != {self.size}"
