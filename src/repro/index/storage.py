"""Simulated disk: a page store with I/O accounting.

The paper reports I/O cost as (page reads) × (per-page latency) on a
disk-resident R*-tree with 4 KiB pages, and uses no buffer because none of
the algorithms fetches the same page twice. The :class:`PageStore` simulates
exactly that: every *metered* read of a node counts one page access, and an
optional LRU buffer can absorb repeat reads when enabled.

Separating metered reads (query-time page fetches) from unmetered reads
(index construction / maintenance) mirrors how the paper charges I/O only to
query processing.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.index.node import Node

__all__ = ["IOStats", "PageStore", "DEFAULT_PAGE_SIZE", "DEFAULT_PAGE_LATENCY_MS"]

#: 4 KiB pages, as in the paper's experimental setup.
DEFAULT_PAGE_SIZE = 4096

#: Latency charged per page read (ms). ≈ one random read on a 2014-era HDD.
DEFAULT_PAGE_LATENCY_MS = 10.0


@dataclass
class IOStats:
    """Counters for simulated disk traffic."""

    page_reads: int = 0
    leaf_reads: int = 0
    internal_reads: int = 0
    buffer_hits: int = 0
    latency_ms_per_page: float = DEFAULT_PAGE_LATENCY_MS

    @property
    def io_time_ms(self) -> float:
        """Simulated I/O time under the configured per-page latency."""
        return self.page_reads * self.latency_ms_per_page

    def reset(self) -> None:
        self.page_reads = 0
        self.leaf_reads = 0
        self.internal_reads = 0
        self.buffer_hits = 0

    def snapshot(self) -> "IOStats":
        """A frozen copy of the current counters."""
        return IOStats(
            page_reads=self.page_reads,
            leaf_reads=self.leaf_reads,
            internal_reads=self.internal_reads,
            buffer_hits=self.buffer_hits,
            latency_ms_per_page=self.latency_ms_per_page,
        )


class PageStore:
    """In-memory map of node-id → node that simulates a paged disk.

    Parameters
    ----------
    page_size:
        Page capacity in bytes; determines index fan-out (see
        :func:`repro.index.node.node_capacities`).
    buffer_pages:
        Size of an optional LRU buffer. ``0`` (the default) disables
        buffering, matching the paper's setup.
    latency_ms_per_page:
        Simulated cost of one page read, used by :attr:`IOStats.io_time_ms`.
    sleep_ms_per_page:
        When positive, every metered page read *actually sleeps* this many
        milliseconds instead of only counting. Accounting-only mode (the
        default ``0.0``) keeps benchmarks fast; the real-latency mode is
        what makes wall-clock fan-out comparisons honest — a sharded
        serving tier can only overlap page waits that really happen.
        Buffer hits do not sleep (no disk access).
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = 0,
        latency_ms_per_page: float = DEFAULT_PAGE_LATENCY_MS,
        sleep_ms_per_page: float = 0.0,
    ) -> None:
        if page_size < 256:
            raise ValueError("page_size must be at least 256 bytes")
        if buffer_pages < 0:
            raise ValueError("buffer_pages must be non-negative")
        if sleep_ms_per_page < 0:
            raise ValueError("sleep_ms_per_page must be non-negative")
        self.page_size = int(page_size)
        self.buffer_pages = int(buffer_pages)
        self.sleep_ms_per_page = float(sleep_ms_per_page)
        self.stats = IOStats(latency_ms_per_page=latency_ms_per_page)
        self._pages: dict[int, "Node"] = {}
        self._buffer: OrderedDict[int, None] = OrderedDict()
        self._next_id = 0

    # -- allocation / writes (not metered: the paper charges read I/O) ------

    def allocate(self) -> int:
        """Reserve a fresh page id."""
        nid = self._next_id
        self._next_id += 1
        return nid

    def write(self, node: "Node") -> None:
        """Persist ``node`` at its page id."""
        self._pages[node.node_id] = node

    def free(self, node_id: int) -> None:
        """Drop a page (after node merges/splits)."""
        self._pages.pop(node_id, None)
        self._buffer.pop(node_id, None)

    # -- reads ---------------------------------------------------------------

    def read(self, node_id: int) -> "Node":
        """Metered read: counts one page access (unless buffered)."""
        node = self._pages[node_id]
        if self.buffer_pages > 0 and node_id in self._buffer:
            self._buffer.move_to_end(node_id)
            self.stats.buffer_hits += 1
            return node
        self.stats.page_reads += 1
        if node.is_leaf:
            self.stats.leaf_reads += 1
        else:
            self.stats.internal_reads += 1
        if self.sleep_ms_per_page > 0.0:
            time.sleep(self.sleep_ms_per_page / 1e3)
        if self.buffer_pages > 0:
            self._buffer[node_id] = None
            self._buffer.move_to_end(node_id)
            while len(self._buffer) > self.buffer_pages:
                self._buffer.popitem(last=False)
        return node

    def read_unmetered(self, node_id: int) -> "Node":
        """Read without I/O accounting (index construction / tests)."""
        return self._pages[node_id]

    # -- introspection --------------------------------------------------------

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def node_ids(self) -> list[int]:
        return list(self._pages.keys())

    def reset_meter(self) -> None:
        """Zero the I/O counters (start of a fresh query)."""
        self.stats.reset()
        self._buffer.clear()
