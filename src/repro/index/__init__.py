"""Spatial index substrate: R*-tree over a simulated page store.

The paper assumes the dataset is indexed by a disk-resident R*-tree with
4 KiB pages and measures I/O cost in page reads (no buffer, since no method
fetches the same page twice). This package reproduces that setting:

* :mod:`repro.index.storage` — page store with read counters and a
  configurable I/O latency model;
* :mod:`repro.index.mbb` — minimum bounding boxes and score bounds;
* :mod:`repro.index.node` — leaf/internal node layout and fan-out math;
* :mod:`repro.index.rtree` — dynamic R*-tree (choose-subtree, forced
  reinsert, topological split);
* :mod:`repro.index.bulkload` — Sort-Tile-Recursive packing for large data.
"""

from repro.index.bulkload import bulk_load_str
from repro.index.mbb import MBB
from repro.index.node import Node, NodeEntry, node_capacities
from repro.index.rtree import RStarTree
from repro.index.storage import IOStats, PageStore

__all__ = [
    "MBB",
    "Node",
    "NodeEntry",
    "node_capacities",
    "PageStore",
    "IOStats",
    "RStarTree",
    "bulk_load_str",
]
