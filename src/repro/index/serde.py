"""Byte-level page layout for R-tree nodes.

The simulated page store keeps nodes as Python objects, but the fan-out
arithmetic in :func:`repro.index.node.node_capacities` is justified by an
actual on-disk layout. This module implements that layout so the capacity
math is verified, not asserted:

``page := header | entry*``

* header (32 bytes): magic ``b"GIRP"``, format version, level, entry
  count, node id — little-endian, padded;
* leaf entry: record id (int64) + ``d`` float64 attribute values;
* internal entry: child page id (int64) + MBB as ``2 d`` float64.

``encode_node`` refuses to overflow a page, which pins the capacities used
by the I/O model to what genuinely fits in 4 KiB.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.index.mbb import MBB
from repro.index.node import Node, NodeEntry, PAGE_HEADER_BYTES

__all__ = ["encode_node", "decode_node", "PageOverflowError", "MAGIC"]

MAGIC = b"GIRP"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHHiq12x")  # magic, version, level, count, node_id
assert _HEADER.size == PAGE_HEADER_BYTES


class PageOverflowError(ValueError):
    """Raised when a node's entries do not fit in one page."""


def encode_node(node: Node, page_size: int, d: int) -> bytes:
    """Serialise ``node`` into exactly ``page_size`` bytes."""
    if node.is_leaf:
        entry_size = 8 + 8 * d
    else:
        entry_size = 8 + 16 * d
    needed = PAGE_HEADER_BYTES + entry_size * len(node.entries)
    if needed > page_size:
        raise PageOverflowError(
            f"node {node.node_id} needs {needed} bytes > page size {page_size}"
        )
    out = bytearray(page_size)
    _HEADER.pack_into(
        out, 0, MAGIC, FORMAT_VERSION, node.level, len(node.entries), node.node_id
    )
    offset = PAGE_HEADER_BYTES
    for e in node.entries:
        struct.pack_into("<q", out, offset, e.child_id)
        offset += 8
        if node.is_leaf:
            payload = np.ascontiguousarray(e.mbb.lo, dtype="<f8").tobytes()
        else:
            payload = (
                np.ascontiguousarray(e.mbb.lo, dtype="<f8").tobytes()
                + np.ascontiguousarray(e.mbb.hi, dtype="<f8").tobytes()
            )
        out[offset : offset + len(payload)] = payload
        offset += len(payload)
    return bytes(out)


def decode_node(page: bytes, d: int) -> Node:
    """Reconstruct a node from its page bytes."""
    magic, version, level, count, node_id = _HEADER.unpack_from(page, 0)
    if magic != MAGIC:
        raise ValueError("not a GIR page (bad magic)")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported page format version {version}")
    node = Node(node_id, level)
    offset = PAGE_HEADER_BYTES
    for _ in range(count):
        (child_id,) = struct.unpack_from("<q", page, offset)
        offset += 8
        if level == 0:
            point = np.frombuffer(page, dtype="<f8", count=d, offset=offset).copy()
            offset += 8 * d
            mbb = MBB(point, point.copy())
        else:
            lo = np.frombuffer(page, dtype="<f8", count=d, offset=offset).copy()
            offset += 8 * d
            hi = np.frombuffer(page, dtype="<f8", count=d, offset=offset).copy()
            offset += 8 * d
            mbb = MBB(lo, hi)
        node.entries.append(NodeEntry(mbb, int(child_id)))
    return node
