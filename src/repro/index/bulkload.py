"""Sort-Tile-Recursive (STR) bulk loading for the R*-tree.

The paper's datasets reach 20M records; building such trees by one-at-a-time
insertion is needlessly slow. STR (Leutenegger et al., ICDE 1997) packs a
height-balanced tree directly and is the standard way large experimental
R-trees are built. A ``fill_factor`` below 1.0 (default 0.7) reproduces the
typical occupancy of a dynamically built tree, so simulated page counts stay
comparable to the paper's.

The resulting tree is a fully functional :class:`RStarTree` — subsequent
dynamic inserts/deletes work normally.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.index.mbb import MBB
from repro.index.node import Node, NodeEntry
from repro.index.rtree import RStarTree
from repro.index.storage import PageStore

__all__ = ["bulk_load_str"]


def _tile(order: np.ndarray, keys: np.ndarray, groups: int) -> list[np.ndarray]:
    """Split ``order`` (an index array) into ``groups`` contiguous runs after
    sorting by ``keys``."""
    ranked = order[np.argsort(keys[order], kind="stable")]
    return [chunk for chunk in np.array_split(ranked, groups) if len(chunk)]


def _str_partition(
    indices: np.ndarray, coords: np.ndarray, capacity: int, axis: int
) -> list[np.ndarray]:
    """Recursively tile ``indices`` into runs of at most ``capacity``."""
    n = len(indices)
    pages = math.ceil(n / capacity)
    if pages <= 1:
        return [indices]
    d = coords.shape[1]
    remaining_axes = d - axis
    if remaining_axes <= 1:
        return _tile(indices, coords[:, axis], pages)
    slabs = math.ceil(pages ** (1.0 / remaining_axes))
    result: list[np.ndarray] = []
    for slab in _tile(indices, coords[:, axis], slabs):
        result.extend(_str_partition(slab, coords, capacity, axis + 1))
    return result


def bulk_load_str(
    dataset: Dataset,
    store: PageStore | None = None,
    fill_factor: float = 0.7,
    leaf_capacity: int | None = None,
    internal_capacity: int | None = None,
) -> RStarTree:
    """Build an R*-tree over ``dataset`` with STR packing.

    Parameters
    ----------
    fill_factor:
        Target node occupancy in ``(0, 1]``; 0.7 mimics a dynamically
        maintained tree, 1.0 packs nodes full.
    """
    if not 0.0 < fill_factor <= 1.0:
        raise ValueError("fill_factor must be in (0, 1]")
    tree = RStarTree(
        dataset.d,
        store=store,
        leaf_capacity=leaf_capacity,
        internal_capacity=internal_capacity,
    )
    points = dataset.points
    leaf_cap = max(2, int(tree.leaf_capacity * fill_factor))
    internal_cap = max(2, int(tree.internal_capacity * fill_factor))

    # Level 0: pack records into leaves.
    all_ids = np.arange(dataset.n, dtype=np.intp)
    runs = _str_partition(all_ids, points, leaf_cap, axis=0)
    level_nodes: list[Node] = []
    for run in runs:
        node = Node(tree.store.allocate(), level=0)
        node.entries = [NodeEntry(MBB.of_point(points[i]), int(i)) for i in run]
        tree.store.write(node)
        level_nodes.append(node)

    # Upper levels: pack child nodes by their MBB centres.
    level = 0
    while len(level_nodes) > 1:
        level += 1
        centres = np.array([n.mbb().center() for n in level_nodes])
        idx = np.arange(len(level_nodes), dtype=np.intp)
        runs = _str_partition(idx, centres, internal_cap, axis=0)
        parents: list[Node] = []
        for run in runs:
            node = Node(tree.store.allocate(), level=level)
            node.entries = [
                NodeEntry(level_nodes[i].mbb(), level_nodes[i].node_id) for i in run
            ]
            tree.store.write(node)
            parents.append(node)
        level_nodes = parents

    root = level_nodes[0]
    # Free the placeholder empty root allocated by the RStarTree constructor.
    tree.store.free(tree.root_id)
    tree.root_id = root.node_id
    tree.size = dataset.n
    return tree
