"""Minimum bounding boxes (MBBs) and their score bounds.

The R-tree organises entries by axis-aligned minimum bounding boxes. For
top-k processing with non-negative weight vectors, the *maxscore* of an MBB
— the largest score any point inside it can achieve — is attained at its top
corner (the paper defines it as the max over the MBB's corners, which for a
monotone function is the top corner). The BRS and BBS algorithms order their
search heaps by this bound.
"""

from __future__ import annotations

import numpy as np
from repro.core.tolerances import EXACT_TOL

__all__ = ["MBB"]


class MBB:
    """Axis-aligned box ``[lo, hi]`` in ``[0, 1]^d``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray) -> None:
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError("lo and hi must be 1-d arrays of equal length")
        if (lo > hi + EXACT_TOL).any():
            raise ValueError("MBB requires lo <= hi in every dimension")
        self.lo = lo
        self.hi = hi

    # -- constructors ---------------------------------------------------------

    @classmethod
    def of_point(cls, point: np.ndarray) -> "MBB":
        point = np.asarray(point, dtype=np.float64)
        return cls(point.copy(), point.copy())

    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBB":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("need a non-empty (m, d) array of points")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def union_of(cls, boxes: list["MBB"]) -> "MBB":
        if not boxes:
            raise ValueError("cannot take the union of zero boxes")
        lo = np.minimum.reduce([b.lo for b in boxes])
        hi = np.maximum.reduce([b.hi for b in boxes])
        return cls(lo, hi)

    # -- geometry --------------------------------------------------------------

    @property
    def d(self) -> int:
        return int(self.lo.shape[0])

    def union(self, other: "MBB") -> "MBB":
        return MBB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def area(self) -> float:
        """Volume of the box (the R*-tree literature calls it area)."""
        return float(np.prod(self.hi - self.lo))

    def margin(self) -> float:
        """Sum of edge lengths (×2^(d-1) in the R* paper; constant factor
        does not affect argmin comparisons, so we use the plain sum)."""
        return float(np.sum(self.hi - self.lo))

    def overlap(self, other: "MBB") -> float:
        """Volume of the intersection with ``other`` (0 when disjoint)."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        ext = hi - lo
        if (ext <= 0).any():
            return 0.0
        return float(np.prod(ext))

    def enlargement(self, point_or_box: "MBB | np.ndarray") -> float:
        """Area increase needed to cover ``point_or_box``."""
        if isinstance(point_or_box, MBB):
            merged = self.union(point_or_box)
        else:
            p = np.asarray(point_or_box, dtype=np.float64)
            merged = MBB(np.minimum(self.lo, p), np.maximum(self.hi, p))
        return merged.area() - self.area()

    def intersects(self, other: "MBB", atol: float = EXACT_TOL) -> bool:
        """True when the boxes share at least one point (closed-box test).

        Unlike ``overlap() > 0`` this is exact for zero-volume contacts:
        boxes that merely touch at a face/edge/corner, and degenerate
        (axis-flat or point) boxes, still intersect. R-tree window descent
        must use this predicate — a volume test silently skips subtrees
        whose bounding boxes are flat along some axis (e.g. duplicated
        coordinate values).
        """
        return bool(
            (self.lo <= other.hi + atol).all() and (other.lo <= self.hi + atol).all()
        )

    def contains_point(self, point: np.ndarray, atol: float = EXACT_TOL) -> bool:
        p = np.asarray(point, dtype=np.float64)
        return bool((p >= self.lo - atol).all() and (p <= self.hi + atol).all())

    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    # -- score bounds -----------------------------------------------------------

    def maxscore(self, weights: np.ndarray) -> float:
        """Upper bound on the score of any point in the box.

        For non-negative weights this is the score of the top corner ``hi``;
        in general it is attained corner-wise: take ``hi_i`` where ``w_i > 0``
        and ``lo_i`` otherwise.
        """
        w = np.asarray(weights, dtype=np.float64)
        return float(np.where(w >= 0, self.hi, self.lo) @ w)

    def minscore(self, weights: np.ndarray) -> float:
        """Lower bound on the score of any point in the box."""
        w = np.asarray(weights, dtype=np.float64)
        return float(np.where(w >= 0, self.lo, self.hi) @ w)

    def upper_corner(self) -> np.ndarray:
        """Top corner — the maxscore point for monotone scoring functions."""
        return self.hi

    # -- dominance (used by BBS pruning) ------------------------------------------

    def dominated_by(self, point: np.ndarray) -> bool:
        """True if ``point`` dominates the *entire* box.

        A record dominates the whole box iff it dominates the box's top
        corner (every point in the box is ≤ the top corner component-wise).
        """
        p = np.asarray(point, dtype=np.float64)
        return bool((p >= self.hi).all() and (p > self.hi).any())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBB):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MBB(lo={self.lo.tolist()}, hi={self.hi.tolist()})"
