"""Synthetic benchmark distributions: IND, COR, ANTI.

These are the standard data families used throughout the skyline and
preference-query literature (Börzsönyi et al., ICDE 2001) and in the paper's
evaluation (Section 8):

* **IND** — attributes independently and uniformly distributed.
* **COR** — records that are good in one dimension tend to be good in all
  others: values cluster around the main diagonal of the cube.
* **ANTI** — records that are good in one dimension tend to be bad in the
  others: values cluster around the anti-diagonal hyperplane
  ``sum(x) ≈ const``, producing very wide skylines.

All generators are deterministic given a seed and return points in
``[0, 1]^d``.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["independent", "correlated", "anticorrelated", "make_synthetic"]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def independent(n: int, d: int, seed: int | None = 0) -> Dataset:
    """Uniform, independent attributes (the paper's IND family)."""
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    rng = _rng(seed)
    return Dataset(rng.random((n, d)), name=f"IND(n={n},d={d})")


def correlated(
    n: int,
    d: int,
    seed: int | None = 0,
    level_sigma: float = 0.12,
    spread: float = 0.02,
) -> Dataset:
    """Positively correlated attributes (the paper's COR family).

    Following the classic Börzsönyi-style generator, each record is a
    per-record quality *level* drawn from a normal peaked at 0.5 (resampled
    into ``[0, 1]``) plus small per-attribute perturbations. The normal's
    thin upper tail is essential to reproduce the paper's observations: the
    best records are separated by sizeable gaps *along the diagonal*, so
    adjacent top-k records differ mainly in overall quality. That yields
    very loose ordering half-spaces and hence the paper's finding that the
    GIR is largest on COR (Figure 14(a)), as well as its narrow skylines
    (Figure 6).
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    if spread < 0 or level_sigma <= 0:
        raise ValueError("spread must be non-negative and level_sigma positive")
    rng = _rng(seed)
    level = rng.normal(0.5, level_sigma, size=n)
    bad = (level < 0.0) | (level > 1.0)
    while bad.any():
        level[bad] = rng.normal(0.5, level_sigma, size=int(bad.sum()))
        bad = (level < 0.0) | (level > 1.0)
    noise = rng.normal(0.0, spread, size=(n, d))
    pts = np.clip(level[:, None] + noise, 0.0, 1.0)
    return Dataset(pts, name=f"COR(n={n},d={d})")


def anticorrelated(
    n: int, d: int, seed: int | None = 0, spread: float = 0.05
) -> Dataset:
    """Anti-correlated attributes (the paper's ANTI family).

    Records lie in a thin band around the hyperplane ``sum(x) = d/2``: a
    record with a large value in one dimension tends to have small values in
    the others. Points are sampled on the plane via a symmetric Dirichlet
    (which spreads mass across the trade-off frontier) and then jittered
    orthogonally by a small normal offset.
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    if spread < 0:
        raise ValueError("spread must be non-negative")
    rng = _rng(seed)
    if d == 1:
        # Degenerate: anti-correlation is meaningless in 1-d; fall back to a
        # tight band around 0.5.
        pts = np.clip(rng.normal(0.5, spread, size=(n, 1)), 0.0, 1.0)
        return Dataset(pts, name=f"ANTI(n={n},d={d})")
    # Dirichlet samples sum to 1; scale so coordinates average 0.5.
    simplex = rng.dirichlet(np.ones(d), size=n) * (d / 2.0)
    offset = rng.normal(0.0, spread, size=(n, 1))
    pts = np.clip(simplex + offset, 0.0, 1.0)
    return Dataset(pts, name=f"ANTI(n={n},d={d})")


_FAMILIES = {
    "IND": independent,
    "COR": correlated,
    "ANTI": anticorrelated,
}


def make_synthetic(family: str, n: int, d: int, seed: int | None = 0) -> Dataset:
    """Dispatch on the family name used in the paper's charts.

    ``family`` is one of ``"IND"``, ``"COR"``, ``"ANTI"`` (case-insensitive).
    """
    key = family.upper()
    if key not in _FAMILIES:
        raise ValueError(
            f"unknown synthetic family {family!r}; expected one of {sorted(_FAMILIES)}"
        )
    return _FAMILIES[key](n, d, seed)
