"""Surrogates for the paper's real datasets (HOUSE and HOTEL).

The paper evaluates on two real datasets that are not redistributable:

* **HOUSE** (ipums.org): 315,265 records × 6 attributes — an American
  family's expenditure on gas, electricity, water, heating, insurance and
  property tax.
* **HOTEL** (hotelsbase.org): 418,843 records × 4 attributes — stars, price,
  number of rooms and number of facilities.

Because the originals are unavailable offline, we generate *surrogates* that
match the documented cardinality, dimensionality and the joint-distribution
shape that drives the paper's measurements (skew and positive correlation,
which determine skyline width and convex-hull facet counts). The
substitution is recorded in DESIGN.md §4.

Both surrogates are deterministic given a seed and are min-max normalised to
``[0, 1]^d`` exactly as the paper normalises its real data.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["house_surrogate", "hotel_surrogate", "HOUSE_N", "HOTEL_N"]

#: Cardinalities of the original datasets, used as defaults.
HOUSE_N = 315_265
HOTEL_N = 418_843


def house_surrogate(n: int = HOUSE_N, seed: int | None = 7) -> Dataset:
    """Synthetic stand-in for the 6-attribute HOUSE expenditure data.

    Household expenditures are right-skewed (log-normal-like) and positively
    correlated through the household's overall spending level: families that
    spend more on heating also tend to spend more on electricity, insurance,
    etc. We model each attribute as ``exp(a_j * z + e)`` where ``z`` is a
    per-household affluence factor and ``e`` is attribute noise.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    d = 6
    affluence = rng.normal(0.0, 1.0, size=(n, 1))
    # Per-attribute loading on the affluence factor and idiosyncratic noise;
    # loadings < 1 keep pairwise correlations realistic (≈ 0.4-0.6).
    loadings = np.array([0.8, 0.9, 0.6, 0.85, 0.7, 0.75])
    noise = rng.normal(0.0, 0.8, size=(n, d))
    raw = np.exp(affluence * loadings + noise)
    # Expenditure data has a long right tail; cap extreme outliers at the
    # 99.9th percentile so normalisation does not squash the bulk of the data
    # into a corner (the paper's normalised real data is similarly spread).
    cap = np.quantile(raw, 0.999, axis=0)
    raw = np.minimum(raw, cap)
    return Dataset.from_raw(raw, name=f"HOUSE*(n={n})")


def hotel_surrogate(n: int = HOTEL_N, seed: int | None = 11) -> Dataset:
    """Synthetic stand-in for the 4-attribute HOTEL data.

    Attributes: stars (discrete 1..5), price, number of rooms, number of
    facilities. Price and facilities correlate positively with stars; rooms
    is skewed and only mildly star-dependent.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    stars = rng.choice([1, 2, 3, 4, 5], size=n, p=[0.08, 0.22, 0.38, 0.24, 0.08])
    quality = (stars - 1) / 4.0  # 0..1 latent quality
    price = np.exp(rng.normal(3.5 + 1.2 * quality, 0.45, size=n))
    rooms = np.exp(rng.normal(3.0 + 0.6 * quality, 0.9, size=n))
    facilities = rng.poisson(3 + 18 * quality**1.5) + rng.integers(0, 3, size=n)
    raw = np.column_stack(
        [stars.astype(float), price, rooms, facilities.astype(float)]
    )
    cap = np.quantile(raw, 0.999, axis=0)
    raw = np.minimum(raw, cap)
    return Dataset.from_raw(raw, name=f"HOTEL*(n={n})")
