"""Datasets for GIR experiments.

Provides the :class:`Dataset` container, the three synthetic benchmark
distributions from the skyline/preference-query literature (independent,
correlated, anti-correlated), and surrogates for the paper's two real
datasets (HOUSE, HOTEL).
"""

from repro.data.dataset import Dataset, PointTable
from repro.data.real import house_surrogate, hotel_surrogate
from repro.data.synthetic import (
    anticorrelated,
    correlated,
    independent,
    make_synthetic,
)

__all__ = [
    "Dataset",
    "PointTable",
    "independent",
    "correlated",
    "anticorrelated",
    "make_synthetic",
    "house_surrogate",
    "hotel_surrogate",
]
