"""Dataset container used across the library.

A :class:`Dataset` wraps an ``(n, d)`` float64 array of records normalised to
the unit hyper-cube ``[0, 1]^d``, exactly as assumed by the paper
(Section 3.1). Records are addressed by integer ids ``0 .. n-1`` which are
stable across all index and query structures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Dataset"]


class Dataset:
    """An immutable collection of ``n`` records with ``d`` numeric attributes.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``. Values are expected in ``[0, 1]``; use
        :meth:`from_raw` to min-max normalise arbitrary data first.
    name:
        Human-readable label used in benchmark reports.
    """

    __slots__ = ("points", "name")

    def __init__(self, points: np.ndarray, name: str = "dataset") -> None:
        points = np.array(points, dtype=np.float64, copy=True)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-dimensional, got shape {points.shape}")
        if points.shape[0] == 0 or points.shape[1] == 0:
            raise ValueError(f"dataset must be non-empty, got shape {points.shape}")
        if not np.isfinite(points).all():
            raise ValueError("points must be finite")
        if points.min() < -1e-9 or points.max() > 1 + 1e-9:
            raise ValueError(
                "points must lie in [0, 1]^d; use Dataset.from_raw to normalise"
            )
        np.clip(points, 0.0, 1.0, out=points)
        points.setflags(write=False)
        self.points = points
        self.name = str(name)

    # -- basic geometry -----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of records."""
        return int(self.points.shape[0])

    @property
    def d(self) -> int:
        """Dimensionality (number of attributes)."""
        return int(self.points.shape[1])

    def __len__(self) -> int:
        return self.n

    def record(self, rid: int) -> np.ndarray:
        """Return the attribute vector of record ``rid`` (read-only view)."""
        return self.points[rid]

    def __getitem__(self, rid: int) -> np.ndarray:
        return self.points[rid]

    # -- scoring ------------------------------------------------------------

    def scores(self, weights: np.ndarray) -> np.ndarray:
        """Dot-product scores of every record under query vector ``weights``."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.d,):
            raise ValueError(f"expected weight vector of shape ({self.d},)")
        return self.points @ weights

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_raw(cls, raw: np.ndarray, name: str = "dataset") -> "Dataset":
        """Min-max normalise ``raw`` per attribute into ``[0, 1]^d``.

        Constant attributes (zero spread) map to 0.5 so they carry no
        preference signal but stay inside the unit cube.
        """
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim != 2:
            raise ValueError("raw data must be 2-dimensional")
        lo = raw.min(axis=0)
        hi = raw.max(axis=0)
        spread = hi - lo
        constant = spread <= 0
        safe_spread = np.where(constant, 1.0, spread)
        normalised = (raw - lo) / safe_spread
        normalised[:, constant] = 0.5
        return cls(normalised, name=name)

    @classmethod
    def from_csv(
        cls,
        path,
        name: str | None = None,
        delimiter: str = ",",
        skip_header: int = 1,
        columns: "list[int] | None" = None,
        normalise: bool = True,
    ) -> "Dataset":
        """Load records from a CSV file.

        Parameters
        ----------
        path:
            File path (anything ``numpy.genfromtxt`` accepts).
        skip_header:
            Header lines to skip (default 1).
        columns:
            Attribute columns to use (default: all).
        normalise:
            Min-max normalise into ``[0, 1]^d`` (default). Disable only if
            the file already contains unit-cube data.
        """
        raw = np.genfromtxt(path, delimiter=delimiter, skip_header=skip_header)
        if raw.ndim == 1:
            raw = raw[:, None]
        if columns is not None:
            raw = raw[:, columns]
        if not np.isfinite(raw).all():
            raise ValueError(f"{path}: non-numeric or missing values in data")
        label = name or str(path)
        if normalise:
            return cls.from_raw(raw, name=label)
        return cls(raw, name=label)

    def subset(self, rids: np.ndarray, name: str | None = None) -> "Dataset":
        """Dataset restricted to the given record ids (ids are re-numbered)."""
        rids = np.asarray(rids, dtype=np.intp)
        return Dataset(self.points[rids], name=name or f"{self.name}[subset]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(name={self.name!r}, n={self.n}, d={self.d})"
