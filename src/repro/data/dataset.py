"""Dataset containers used across the library.

A :class:`Dataset` wraps an ``(n, d)`` float64 array of records normalised to
the unit hyper-cube ``[0, 1]^d``, exactly as assumed by the paper
(Section 3.1). Records are addressed by integer ids ``0 .. n-1`` which are
stable across all index and query structures.

:class:`PointTable` is the *mutable* counterpart backing the dynamic
serving engine: record ids stay append-only and stable (an insert returns
the next fresh rid; a delete tombstones its row rather than renumbering),
so every structure keyed by rid — the R*-tree, cached GIRs, retained BRS
runs — remains addressable across updates.
"""

from __future__ import annotations

import numpy as np
from repro.core.tolerances import MEMBERSHIP_TOL

__all__ = ["Dataset", "PointTable", "grow_rows"]


def grow_rows(buf: np.ndarray, used: int) -> np.ndarray:
    """Return a buffer with room for at least one more row past ``used``,
    doubling capacity when full (contents of the first ``used`` rows are
    preserved). Shared by :class:`PointTable` and any parallel per-row
    image a caller maintains in lockstep (e.g. the engine's g-space
    buffer), so both follow the same growth policy.
    """
    if used < buf.shape[0]:
        return buf
    grown = np.empty((max(4, 2 * buf.shape[0]), *buf.shape[1:]), dtype=buf.dtype)
    grown[:used] = buf[:used]
    return grown


class Dataset:
    """An immutable collection of ``n`` records with ``d`` numeric attributes.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``. Values are expected in ``[0, 1]``; use
        :meth:`from_raw` to min-max normalise arbitrary data first.
    name:
        Human-readable label used in benchmark reports.
    """

    __slots__ = ("points", "name")

    def __init__(self, points: np.ndarray, name: str = "dataset") -> None:
        points = np.array(points, dtype=np.float64, copy=True)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-dimensional, got shape {points.shape}")
        if points.shape[0] == 0 or points.shape[1] == 0:
            raise ValueError(f"dataset must be non-empty, got shape {points.shape}")
        if not np.isfinite(points).all():
            raise ValueError("points must be finite")
        if points.min() < -MEMBERSHIP_TOL or points.max() > 1 + MEMBERSHIP_TOL:
            raise ValueError(
                "points must lie in [0, 1]^d; use Dataset.from_raw to normalise"
            )
        np.clip(points, 0.0, 1.0, out=points)
        points.setflags(write=False)
        self.points = points
        self.name = str(name)

    # -- basic geometry -----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of records."""
        return int(self.points.shape[0])

    @property
    def d(self) -> int:
        """Dimensionality (number of attributes)."""
        return int(self.points.shape[1])

    def __len__(self) -> int:
        return self.n

    def record(self, rid: int) -> np.ndarray:
        """Return the attribute vector of record ``rid`` (read-only view)."""
        return self.points[rid]

    def __getitem__(self, rid: int) -> np.ndarray:
        return self.points[rid]

    # -- scoring ------------------------------------------------------------

    def scores(self, weights: np.ndarray) -> np.ndarray:
        """Dot-product scores of every record under query vector ``weights``."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.d,):
            raise ValueError(f"expected weight vector of shape ({self.d},)")
        return self.points @ weights

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_raw(cls, raw: np.ndarray, name: str = "dataset") -> "Dataset":
        """Min-max normalise ``raw`` per attribute into ``[0, 1]^d``.

        Constant attributes (zero spread) map to 0.5 so they carry no
        preference signal but stay inside the unit cube.
        """
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim != 2:
            raise ValueError("raw data must be 2-dimensional")
        lo = raw.min(axis=0)
        hi = raw.max(axis=0)
        spread = hi - lo
        constant = spread <= 0
        safe_spread = np.where(constant, 1.0, spread)
        normalised = (raw - lo) / safe_spread
        normalised[:, constant] = 0.5
        return cls(normalised, name=name)

    @classmethod
    def from_csv(
        cls,
        path,
        name: str | None = None,
        delimiter: str = ",",
        skip_header: int = 1,
        columns: "list[int] | None" = None,
        normalise: bool = True,
    ) -> "Dataset":
        """Load records from a CSV file.

        Parameters
        ----------
        path:
            File path (anything ``numpy.genfromtxt`` accepts).
        skip_header:
            Header lines to skip (default 1).
        columns:
            Attribute columns to use (default: all).
        normalise:
            Min-max normalise into ``[0, 1]^d`` (default). Disable only if
            the file already contains unit-cube data.
        """
        raw = np.genfromtxt(path, delimiter=delimiter, skip_header=skip_header)
        if raw.ndim == 1:
            raw = raw[:, None]
        if columns is not None:
            raw = raw[:, columns]
        if not np.isfinite(raw).all():
            raise ValueError(f"{path}: non-numeric or missing values in data")
        label = name or str(path)
        if normalise:
            return cls.from_raw(raw, name=label)
        return cls(raw, name=label)

    def subset(self, rids: np.ndarray, name: str | None = None) -> "Dataset":
        """Dataset restricted to the given record ids (ids are re-numbered)."""
        rids = np.asarray(rids, dtype=np.intp)
        return Dataset(self.points[rids], name=name or f"{self.name}[subset]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(name={self.name!r}, n={self.n}, d={self.d})"


class PointTable:
    """A growable point table with stable rids and tombstoned deletes.

    The dynamic engine's record store. Rows live in a capacity-doubling
    buffer; ``insert`` appends at the next fresh rid, ``delete`` marks the
    row dead without renumbering, so rids handed to the R*-tree and to
    cached GIRs stay valid for the table's lifetime. The raw row array
    (including dead rows) is exposed through :attr:`rows` for algorithms
    that index by rid; live-only views come from :meth:`live_ids` /
    :attr:`live_mask`.

    Parameters
    ----------
    points:
        Initial ``(n, d)`` records in ``[0, 1]^d`` (all live).
    name:
        Label used in reports.
    """

    __slots__ = ("_buf", "_live", "_n", "name")

    def __init__(self, points: np.ndarray, name: str = "table") -> None:
        points = np.array(points, dtype=np.float64, copy=True)
        if points.ndim != 2 or points.shape[0] == 0 or points.shape[1] == 0:
            raise ValueError(f"need a non-empty (n, d) array, got {points.shape}")
        _check_unit_cube(points)
        self._buf = points
        self._live = np.ones(points.shape[0], dtype=bool)
        self._n = points.shape[0]
        self.name = str(name)

    @classmethod
    def from_dataset(cls, data: "Dataset") -> "PointTable":
        return cls(data.points, name=data.name)

    # -- views ----------------------------------------------------------------

    @property
    def d(self) -> int:
        return int(self._buf.shape[1])

    @property
    def n_allocated(self) -> int:
        """Rows ever allocated (live + tombstoned); rids are ``0 .. n_allocated-1``."""
        return self._n

    @property
    def n_live(self) -> int:
        return int(self._live[: self._n].sum())

    def __len__(self) -> int:
        return self.n_live

    @property
    def rows(self) -> np.ndarray:
        """Read-only ``(n_allocated, d)`` view of every row, dead ones
        included — index by rid. Re-fetch after inserts (growth reallocates)."""
        view = self._buf[: self._n]
        view.setflags(write=False)
        return view

    @property
    def live_mask(self) -> np.ndarray:
        """Read-only boolean mask over :attr:`rows` (True = live)."""
        view = self._live[: self._n]
        view.setflags(write=False)
        return view

    def live_ids(self) -> np.ndarray:
        """Rids of the live records, ascending."""
        return np.flatnonzero(self._live[: self._n])

    def is_live(self, rid: int) -> bool:
        return 0 <= rid < self._n and bool(self._live[rid])

    def point(self, rid: int) -> np.ndarray:
        """The record's point (read-only view); the row may be tombstoned."""
        if not 0 <= rid < self._n:
            raise KeyError(f"rid {rid} was never allocated")
        view = self._buf[rid]
        view.setflags(write=False)
        return view

    # -- mutation -------------------------------------------------------------

    def insert(self, point: np.ndarray) -> int:
        """Append a record; returns its (fresh, stable) rid."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.d,):
            raise ValueError(f"expected point of shape ({self.d},)")
        _check_unit_cube(point)
        if self._n == self._buf.shape[0]:
            self._buf = grow_rows(self._buf, self._n)
            live_grown = np.zeros(self._buf.shape[0], dtype=bool)
            live_grown[: self._n] = self._live[: self._n]
            self._live = live_grown
        rid = self._n
        self._buf[rid] = np.clip(point, 0.0, 1.0)
        self._live[rid] = True
        self._n += 1
        return rid

    def delete(self, rid: int) -> np.ndarray:
        """Tombstone a live record; returns a copy of its point (the tree
        needs the coordinates to locate the leaf entry)."""
        if not self.is_live(rid):
            raise KeyError(f"rid {rid} is not a live record")
        self._live[rid] = False
        return self._buf[rid].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PointTable(name={self.name!r}, live={self.n_live}, "
            f"allocated={self._n}, d={self.d})"
        )


def _check_unit_cube(points: np.ndarray) -> None:
    if not np.isfinite(points).all():
        raise ValueError("points must be finite")
    if points.min() < -MEMBERSHIP_TOL or points.max() > 1 + MEMBERSHIP_TOL:
        raise ValueError("points must lie in [0, 1]^d")
