"""Runtime concurrency sanitizer — the dynamic twin of the static rules.

The ``lock-discipline`` / ``shared-state`` rules prove discipline
*statically*, by conservative over-approximation; this module checks the
same contracts *dynamically*, on real executions, and fails fast with
**both** stacks when a violation actually happens. Two primitives:

* :class:`SanitizedRLock` — an RLock that records, per thread, the
  stack of sanitized locks currently held and maintains a global
  acquisition-order graph keyed by lock *name*. Taking ``B`` while
  holding ``A`` orders ``A`` before ``B``; a later attempt to take
  ``A`` while holding ``B`` is an ABBA inversion and raises
  :class:`LockOrderViolation` immediately — on the *inversion*, without
  needing the actual deadlock to strike.

* :class:`AccessToken` — the ownership tag for structures the static
  rules accept as ``thread-owned``: every instrumented method enters the
  owner's token for its duration; two threads inside the same token at
  the same time, at least one of them mutating, is a data race by
  definition and raises :class:`OwnershipViolation` carrying the stacks
  of both participants.

Production wiring is **zero-overhead when disabled**: the
:func:`mutates` / :func:`reads` decorators return the function object
untouched unless ``REPRO_SANITIZE=1`` was set at import time, and
:func:`make_lock` degrades to a plain ``threading.RLock``. The
primitives themselves always work when constructed directly, so tests
can exercise them in-process without the environment flag.

Costs when enabled are kept proportional: a token access appends a
``(kind, frame)`` pair — stack *formatting* happens only on violation.
"""

from __future__ import annotations

import functools
import os
import sys
import threading
import traceback
from types import FrameType
from typing import Any, Callable, Iterator, TypeVar
from contextlib import contextmanager

__all__ = [
    "ENABLED",
    "SanitizerViolation",
    "OwnershipViolation",
    "LockOrderViolation",
    "AccessToken",
    "SanitizedRLock",
    "make_lock",
    "mutates",
    "reads",
]

#: Frozen at import: flipping the env var later must not half-instrument
#: a process (decorated classes would disagree with live instances).
ENABLED = os.environ.get("REPRO_SANITIZE", "") == "1"

F = TypeVar("F", bound=Callable[..., Any])


class SanitizerViolation(RuntimeError):
    """Base of every sanitizer failure (never raised directly)."""


class OwnershipViolation(SanitizerViolation):
    """Two threads were inside one thread-owned structure at once, at
    least one of them mutating."""


class LockOrderViolation(SanitizerViolation):
    """A sanitized lock was acquired against the established order."""


def _format_frame(frame: FrameType | None) -> str:
    if frame is None:  # pragma: no cover - frames are always captured
        return "  <no stack captured>"
    return "".join(traceback.format_stack(frame)).rstrip()


# -- ownership tokens ----------------------------------------------------------


class AccessToken:
    """Reentrant, per-structure ownership tag.

    ``access("mutate")`` / ``access("read")`` bracket an instrumented
    method. Concurrent brackets from different threads are legal only
    when *all* of them are reads; any read/mutate or mutate/mutate
    overlap raises :class:`OwnershipViolation` with both stacks. The
    same thread may nest freely (methods call methods).
    """

    __slots__ = ("name", "_guard", "_active")

    def __init__(self, name: str) -> None:
        self.name = name
        self._guard = threading.Lock()
        #: thread id → list of ``(kind, frame)`` currently inside.
        self._active: dict[int, list[tuple[str, FrameType]]] = {}

    @contextmanager
    def access(self, kind: str) -> Iterator[None]:
        me = threading.get_ident()
        frame = sys._getframe(2)  # caller of the with-statement
        with self._guard:
            for tid, entries in self._active.items():
                if tid == me or not entries:
                    continue
                other_kind, other_frame = entries[-1]
                if kind == "mutate" or other_kind == "mutate":
                    raise OwnershipViolation(
                        f"thread-owned structure {self.name!r} touched "
                        f"by two threads at once "
                        f"({kind} in thread {me} vs {other_kind} in "
                        f"thread {tid})\n"
                        f"--- this thread ({kind}) ---\n"
                        f"{_format_frame(frame)}\n"
                        f"--- other thread ({other_kind}) ---\n"
                        f"{_format_frame(other_frame)}"
                    )
            self._active.setdefault(me, []).append((kind, frame))
        try:
            yield
        finally:
            with self._guard:
                entries = self._active[me]
                entries.pop()
                if not entries:
                    del self._active[me]


# -- sanitized locks -----------------------------------------------------------

#: Global acquisition-order graph, by lock name: ``(a, b)`` present
#: means "a was held while b was acquired". Guarded by ``_ORDER_GUARD``.
_ORDER_EDGES: dict[tuple[str, str], str] = {}
_ORDER_GUARD = threading.Lock()
_HELD = threading.local()


def _held_stack() -> list[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = _HELD.stack = []
    return stack


def _reset_order_graph() -> None:
    """Test hook: forget every recorded acquisition order."""
    with _ORDER_GUARD:
        _ORDER_EDGES.clear()


class SanitizedRLock:
    """An RLock that checks acquisition order against all history.

    Order is keyed by *name*, so every instance of one lock site (e.g.
    each shard backend's pipe lock) shares one rank — exactly the
    abstraction the static ABBA check uses.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.RLock()

    def _check_order(self) -> None:
        held = _held_stack()
        if not held:
            return
        me = self.name
        with _ORDER_GUARD:
            for h in held:
                if h == me:
                    continue  # reentrant re-acquisition
                if (me, h) in _ORDER_EDGES:
                    first = _ORDER_EDGES[(me, h)]
                    raise LockOrderViolation(
                        f"lock order inversion (ABBA candidate): "
                        f"acquiring {me!r} while holding {h!r}, but the "
                        f"opposite order {me!r} -> {h!r} was established "
                        f"at:\n{first}\n"
                        f"--- this acquisition ---\n"
                        f"{_format_frame(sys._getframe(2))}"
                    )
                if (h, me) not in _ORDER_EDGES:
                    _ORDER_EDGES[(h, me)] = _format_frame(
                        sys._getframe(2)
                    )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check_order()
        got = self._lock.acquire(blocking, timeout)
        if got:
            _held_stack().append(self.name)
        return got

    def release(self) -> None:
        stack = _held_stack()
        # Pop the most recent occurrence (reentrant holds repeat).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == self.name:
                del stack[i]
                break
        self._lock.release()

    def __enter__(self) -> "SanitizedRLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


def make_lock(name: str) -> "SanitizedRLock | threading.RLock":
    """The lock constructor production code uses: sanitized under
    ``REPRO_SANITIZE=1``, a plain ``threading.RLock`` otherwise."""
    if ENABLED:
        return SanitizedRLock(name)
    return threading.RLock()


# -- method instrumentation ----------------------------------------------------

_TOKEN_ATTR = "__repro_sanitize_token__"
_TOKEN_CREATE = threading.Lock()


def _token_of(obj: Any) -> AccessToken:
    token = obj.__dict__.get(_TOKEN_ATTR)
    if token is None:
        with _TOKEN_CREATE:
            token = obj.__dict__.get(_TOKEN_ATTR)
            if token is None:
                token = AccessToken(
                    f"{type(obj).__name__}@{id(obj):#x}"
                )
                obj.__dict__[_TOKEN_ATTR] = token
    return token


def _instrument(kind: str, fn: F) -> F:
    if not ENABLED:
        return fn

    @functools.wraps(fn)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        with _token_of(self).access(kind):
            return fn(self, *args, **kwargs)

    return wrapper  # type: ignore[return-value]


def mutates(fn: F) -> F:
    """Instrument a method as a *mutating* access to its thread-owned
    instance. Identity (zero overhead) when the sanitizer is disabled."""
    return _instrument("mutate", fn)


def reads(fn: F) -> F:
    """Instrument a method as a *read-only* access."""
    return _instrument("read", fn)
