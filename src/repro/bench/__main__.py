"""CLI: ``python -m repro.bench --figure 15 --scale default``."""

from __future__ import annotations

import argparse

from repro.bench.config import SCALES
from repro.bench.figures import FIGURES
from repro.bench.harness import run_all, run_figure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Regenerate the evaluation figures of 'Global Immutable Region "
            "Computation' (SIGMOD 2014)."
        ),
    )
    parser.add_argument(
        "--figure",
        default="all",
        choices=[*FIGURES.keys(), "all"],
        help="which paper figure to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=list(SCALES.keys()),
        help="runtime/fidelity trade-off (see repro.bench.config)",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="directory to write the result tables into (optional)",
    )
    args = parser.parse_args(argv)
    if args.figure == "all":
        run_all(args.scale, args.out_dir)
    else:
        run_figure(args.figure, args.scale, args.out_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
