"""CLI: ``python -m repro.bench --figure 15 --scale default``.

Five top-level modes, mutually exclusive: paper figures (``--figure`` /
no flag), the serving-engine benchmarks (``--engine``, with ``--updates``
or ``--drift`` variants), the sharded fan-out benchmark (``--cluster``,
with ``--backend``), and the serving-front-door benchmark (``--serve``).
The shared modifiers compose as documented in the epilog's interaction
matrix (``python -m repro.bench --help``); every benchmark mode writes a
JSON report (default directory: ``benchmarks/``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.figures import FIGURES
from repro.bench.harness import run_all, run_figure

#: The flag-interaction matrix, kept in --help where it is discoverable
#: (the CLI grew mode by mode and the rules were previously folklore).
_EPILOG = """\
flag interactions:
  mode flags (pick one):   --figure | --engine | --cluster | --serve
  --updates, --drift       only with --engine, mutually exclusive with
                           each other (--updates serves the mixed
                           read/write stream; --drift the drifting-hot-
                           spot Zipf stream)
  --backend                only with --cluster ('process' also switches
                           to the zero-page-sleep CPU-bound regime)
  --trace                  only with --serve or --cluster: repeat the
                           workload with repro.obs tracing armed and
                           emit trace artifacts next to the report
  --family                 with --engine, --cluster or --serve (synthetic
                           data family; figures always sweep all three)
  --scale, --out-dir       every mode

report naming: <benchmark>[_<backend>][_<family>]_<scale>.json
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Regenerate the evaluation figures of 'Global Immutable Region "
            "Computation' (SIGMOD 2014), or run the serving-stack "
            "benchmarks (engine, cluster, front door)."
        ),
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--figure",
        default=None,
        choices=[*FIGURES.keys(), "all"],
        help="which paper figure to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=list(SCALES.keys()),
        help="runtime/fidelity trade-off (see repro.bench.config)",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="directory to write the result tables into (optional)",
    )
    parser.add_argument(
        "--engine",
        action="store_true",
        help=(
            "run the serving-layer throughput benchmark instead of the "
            "paper figures; writes a JSON report (see repro.bench.engine_bench)"
        ),
    )
    parser.add_argument(
        "--updates",
        action="store_true",
        help=(
            "with --engine: run the mixed read/write update-throughput "
            "benchmark (GIR-aware invalidation vs flush-on-write baseline)"
        ),
    )
    parser.add_argument(
        "--drift",
        action="store_true",
        help=(
            "with --engine: serve the drifting-hot-spot Zipf workload "
            "(drifting_zipf) instead of the stationary Zipf-clustered "
            "stream — the regime where cost-aware eviction beats LRU"
        ),
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help=(
            "run the sharded-cluster fan-out benchmark (1/2/4/8 shards, "
            "sequential vs thread vs process fan-out; see "
            "repro.bench.cluster_bench)"
        ),
    )
    parser.add_argument(
        "--backend",
        default="inproc",
        choices=["inproc", "process"],
        help=(
            "with --cluster: shard execution backend grid. 'inproc' sweeps "
            "sequential + thread fan-out over real-latency page stores; "
            "'process' adds one-worker-process-per-shard fan-out and turns "
            "page sleeping off (the CPU-bound regime process shards exist "
            "for)"
        ),
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help=(
            "run the serving-front-door benchmark: the flash-crowd "
            "coalescing regime plus a write-fence and an overload "
            "sub-run, each replay-checked for byte-identity with "
            "sequential per-request serving (see repro.bench.serve_bench)"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "with --serve or --cluster: add a traced sub-run (repro.obs "
            "spans armed) and write Chrome-trace / Prometheus artifacts "
            "next to the JSON report, with balance, stitching and "
            "disabled-overhead gates in the payload"
        ),
    )
    parser.add_argument(
        "--family",
        default="IND",
        choices=["IND", "COR", "ANTI"],
        help=(
            "with --engine/--cluster/--serve: synthetic data family (the "
            "paper's IND/COR/ANTI distributions; default IND)"
        ),
    )
    args = parser.parse_args(argv)
    modes = [
        name
        for name, on in [
            ("--figure", args.figure is not None),
            ("--engine", args.engine),
            ("--cluster", args.cluster),
            ("--serve", args.serve),
        ]
        if on
    ]
    if len(modes) > 1:
        parser.error(f"{' and '.join(modes)} are mutually exclusive")
    if args.updates and not args.engine:
        parser.error("--updates requires --engine")
    if args.drift and (not args.engine or args.updates):
        parser.error("--drift requires --engine (without --updates)")
    if args.backend != "inproc" and not args.cluster:
        parser.error("--backend requires --cluster")
    if args.trace and not (args.serve or args.cluster):
        parser.error("--trace requires --serve or --cluster")
    if args.family != "IND" and not (args.engine or args.cluster or args.serve):
        parser.error("--family requires --engine, --cluster or --serve")

    def report_name(base: str) -> str:
        parts = [base]
        if args.cluster and args.backend != "inproc":
            parts.append(args.backend)
        if args.family != "IND":
            parts.append(args.family.lower())
        parts.append(args.scale)
        return "_".join(parts) + ".json"

    if args.serve:
        from repro.bench.serve_bench import (
            ServeBenchConfig,
            run_serve_benchmark,
        )

        scale = SCALES[args.scale]
        out_dir = Path(args.out_dir) if args.out_dir else Path("benchmarks")
        config = ServeBenchConfig(
            n=scale.n_default,
            k=scale.k_default,
            requests=scale.serve_requests,
            family=args.family,
        )
        out_path = out_dir / report_name("serve_flash_crowd")
        payload = run_serve_benchmark(config, out_path, trace=args.trace)
        print(json.dumps(payload, indent=2))
        print(f"\n[serve benchmark report written to {out_path}]")
        return 0
    if args.cluster:
        from repro.bench.cluster_bench import (
            ClusterBenchConfig,
            run_cluster_benchmark,
        )

        scale = SCALES[args.scale]
        out_dir = Path(args.out_dir) if args.out_dir else Path("benchmarks")
        config = ClusterBenchConfig(
            n=scale.n_default,
            k=scale.k_default,
            queries=scale.cluster_queries,
            family=args.family,
            backend=args.backend,
            # Process fan-out targets the CPU-bound regime: no simulated
            # page sleeps, pure compute (the thread grid keeps the
            # real-latency default so it has waits to overlap).
            page_sleep_ms=(
                0.0
                if args.backend == "process"
                else ClusterBenchConfig.page_sleep_ms
            ),
        )
        out_path = out_dir / report_name("cluster_fanout")
        payload = run_cluster_benchmark(config, out_path, trace=args.trace)
        print(json.dumps(payload, indent=2))
        print(f"\n[cluster benchmark report written to {out_path}]")
        return 0
    if args.engine:
        scale = SCALES[args.scale]
        out_dir = Path(args.out_dir) if args.out_dir else Path("benchmarks")
        if args.updates:
            from repro.bench.engine_bench import (
                UpdateBenchConfig,
                run_update_benchmark,
            )

            config = UpdateBenchConfig(
                n=scale.n_default,
                k=scale.k_default,
                ops=scale.engine_update_ops,
                family=args.family,
            )
            out_path = out_dir / report_name("engine_updates")
            payload = run_update_benchmark(config, out_path)
        else:
            from repro.bench.engine_bench import (
                EngineBenchConfig,
                run_engine_benchmark,
            )

            config = EngineBenchConfig(
                n=scale.n_default,
                k=scale.k_default,
                queries=scale.engine_queries,
                family=args.family,
                workload=(
                    "drifting_zipf"
                    if args.drift
                    else EngineBenchConfig.workload
                ),
            )
            out_path = out_dir / report_name(
                "engine_throughput_drift" if args.drift else "engine_throughput"
            )
            payload = run_engine_benchmark(config, out_path)
        print(json.dumps(payload, indent=2))
        print(f"\n[engine benchmark report written to {out_path}]")
        return 0
    figure = args.figure or "all"
    if figure == "all":
        run_all(args.scale, args.out_dir)
    else:
        run_figure(figure, args.scale, args.out_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
