"""CLI: ``python -m repro.bench --figure 15 --scale default``.

``python -m repro.bench --engine`` runs the serving-layer throughput
benchmark instead and writes its JSON report (default: ``benchmarks/``);
``python -m repro.bench --engine --updates`` runs the mixed read/write
update-throughput benchmark, comparing GIR-aware selective cache
invalidation against the flush-on-write baseline;
``python -m repro.bench --engine --drift`` serves the drifting-hot-spot
Zipf stream instead of the stationary one;
``python -m repro.bench --cluster`` runs the sharded fan-out benchmark
(1/2/4/8 shards, sequential vs thread fan-out, gated on merged-result
equivalence with the single engine); ``--cluster --backend process``
adds the process-shard fan-out column in the CPU-bound (zero page-sleep)
regime. ``--family {IND,COR,ANTI}`` selects the synthetic data family
for the engine and cluster benchmarks.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.figures import FIGURES
from repro.bench.harness import run_all, run_figure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Regenerate the evaluation figures of 'Global Immutable Region "
            "Computation' (SIGMOD 2014)."
        ),
    )
    parser.add_argument(
        "--figure",
        default=None,
        choices=[*FIGURES.keys(), "all"],
        help="which paper figure to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=list(SCALES.keys()),
        help="runtime/fidelity trade-off (see repro.bench.config)",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="directory to write the result tables into (optional)",
    )
    parser.add_argument(
        "--engine",
        action="store_true",
        help=(
            "run the serving-layer throughput benchmark instead of the "
            "paper figures; writes a JSON report (see repro.bench.engine_bench)"
        ),
    )
    parser.add_argument(
        "--updates",
        action="store_true",
        help=(
            "with --engine: run the mixed read/write update-throughput "
            "benchmark (GIR-aware invalidation vs flush-on-write baseline)"
        ),
    )
    parser.add_argument(
        "--drift",
        action="store_true",
        help=(
            "with --engine: serve the drifting-hot-spot Zipf workload "
            "(drifting_zipf) instead of the stationary Zipf-clustered "
            "stream — the regime where cost-aware eviction beats LRU"
        ),
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help=(
            "run the sharded-cluster fan-out benchmark (1/2/4/8 shards, "
            "sequential vs thread vs process fan-out; see "
            "repro.bench.cluster_bench)"
        ),
    )
    parser.add_argument(
        "--backend",
        default="inproc",
        choices=["inproc", "process"],
        help=(
            "with --cluster: shard execution backend grid. 'inproc' sweeps "
            "sequential + thread fan-out over real-latency page stores; "
            "'process' adds one-worker-process-per-shard fan-out and turns "
            "page sleeping off (the CPU-bound regime process shards exist "
            "for)"
        ),
    )
    parser.add_argument(
        "--family",
        default="IND",
        choices=["IND", "COR", "ANTI"],
        help=(
            "with --engine/--cluster: synthetic data family (the paper's "
            "IND/COR/ANTI distributions; default IND)"
        ),
    )
    args = parser.parse_args(argv)
    if args.updates and not args.engine:
        parser.error("--updates requires --engine")
    if args.drift and (not args.engine or args.updates):
        parser.error("--drift requires --engine (without --updates)")
    if args.cluster and (args.engine or args.figure is not None):
        parser.error("--cluster is mutually exclusive with --engine/--figure")
    if args.backend != "inproc" and not args.cluster:
        parser.error("--backend requires --cluster")
    if args.family != "IND" and not (args.engine or args.cluster):
        parser.error("--family requires --engine or --cluster")

    def report_name(base: str) -> str:
        parts = [base]
        if args.cluster and args.backend != "inproc":
            parts.append(args.backend)
        if args.family != "IND":
            parts.append(args.family.lower())
        parts.append(args.scale)
        return "_".join(parts) + ".json"

    if args.cluster:
        from repro.bench.cluster_bench import (
            ClusterBenchConfig,
            run_cluster_benchmark,
        )

        scale = SCALES[args.scale]
        out_dir = Path(args.out_dir) if args.out_dir else Path("benchmarks")
        config = ClusterBenchConfig(
            n=scale.n_default,
            k=scale.k_default,
            queries=scale.cluster_queries,
            family=args.family,
            backend=args.backend,
            # Process fan-out targets the CPU-bound regime: no simulated
            # page sleeps, pure compute (the thread grid keeps the
            # real-latency default so it has waits to overlap).
            page_sleep_ms=(
                0.0
                if args.backend == "process"
                else ClusterBenchConfig.page_sleep_ms
            ),
        )
        out_path = out_dir / report_name("cluster_fanout")
        payload = run_cluster_benchmark(config, out_path)
        print(json.dumps(payload, indent=2))
        print(f"\n[cluster benchmark report written to {out_path}]")
        return 0
    if args.engine:
        if args.figure is not None:
            parser.error("--engine and --figure are mutually exclusive")
        scale = SCALES[args.scale]
        out_dir = Path(args.out_dir) if args.out_dir else Path("benchmarks")
        if args.updates:
            from repro.bench.engine_bench import (
                UpdateBenchConfig,
                run_update_benchmark,
            )

            config = UpdateBenchConfig(
                n=scale.n_default,
                k=scale.k_default,
                ops=scale.engine_update_ops,
                family=args.family,
            )
            out_path = out_dir / report_name("engine_updates")
            payload = run_update_benchmark(config, out_path)
        else:
            from repro.bench.engine_bench import (
                EngineBenchConfig,
                run_engine_benchmark,
            )

            config = EngineBenchConfig(
                n=scale.n_default,
                k=scale.k_default,
                queries=scale.engine_queries,
                family=args.family,
                workload=(
                    "drifting_zipf"
                    if args.drift
                    else EngineBenchConfig.workload
                ),
            )
            out_path = out_dir / report_name(
                "engine_throughput_drift" if args.drift else "engine_throughput"
            )
            payload = run_engine_benchmark(config, out_path)
        print(json.dumps(payload, indent=2))
        print(f"\n[engine benchmark report written to {out_path}]")
        return 0
    figure = args.figure or "all"
    if figure == "all":
        run_all(args.scale, args.out_dir)
    else:
        run_figure(figure, args.scale, args.out_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
