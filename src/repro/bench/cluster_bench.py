"""Sharded-cluster benchmark: fan-out serving across 1/2/4/8 shards.

``python -m repro.bench --cluster`` replays one fixed workload through a
grid of :class:`~repro.cluster.ShardedGIREngine` configurations —
every shard count × {sequential, parallel} fan-out — plus a single
:class:`~repro.engine.GIREngine` reference over the unpartitioned data,
and writes a JSON report with:

* **equivalence**: every sharded configuration must return the identical
  top-k rid sequence as the single engine on every request (this is the
  CI gate — the cluster is only interesting if it is *exactly* right);
* **per-shard breakdowns**: cache hits, page reads, fanned-out requests
  and latency per shard, with the accounting cross-checked to sum to the
  cluster totals;
* **wall-clock**: sequential vs parallel fan-out per shard count. The
  shard stores run in *real-latency* mode
  (:class:`~repro.index.storage.PageStore` ``sleep_ms_per_page``), so a
  page read actually waits — the regime the paper's disk-resident setup
  models — and the parallel fan-out has real waits to overlap. The
  headline field ``parallel_speedup_at_4`` is the sequential/parallel
  wall-time ratio at 4 shards.

The single-engine reference runs with accounting-only I/O (no sleeping):
it exists for answer equivalence, not for a timing comparison.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.cluster import ShardedGIREngine
from repro.data.synthetic import independent
from repro.engine import GIREngine, zipf_clustered_workload, uniform_workload
from repro.index.bulkload import bulk_load_str

__all__ = ["ClusterBenchConfig", "run_cluster_benchmark"]


@dataclass(frozen=True)
class ClusterBenchConfig:
    """Knobs of one cluster fan-out benchmark run."""

    n: int = 15_000
    d: int = 3
    k: int = 10
    queries: int = 240
    workload: str = "zipf_clustered"  # or "uniform"
    clusters: int = 8
    zipf_s: float = 1.1
    spread: float = 0.02
    shard_counts: tuple[int, ...] = (1, 2, 4, 8)
    partitioner: str = "kd"
    cache_capacity: int = 64
    cluster_cache_capacity: int = 128
    #: Real latency per metered page read in the shard stores (ms). The
    #: default models a fast networked/SSD page fetch; 0 disables sleeping
    #: (then the wall-clock comparison degenerates to pure CPU).
    page_sleep_ms: float = 0.5
    method: str = "fp"
    seed: int = 9


def _make_workload(config: ClusterBenchConfig):
    if config.workload == "uniform":
        return uniform_workload(
            config.d, config.queries, k=config.k, rng=config.seed
        )
    if config.workload == "zipf_clustered":
        return zipf_clustered_workload(
            config.d,
            config.queries,
            k=config.k,
            clusters=config.clusters,
            zipf_s=config.zipf_s,
            spread=config.spread,
            rng=config.seed,
        )
    raise ValueError(
        f"unknown workload {config.workload!r}; "
        "expected 'uniform' or 'zipf_clustered'"
    )


def run_cluster_benchmark(
    config: ClusterBenchConfig = ClusterBenchConfig(),
    out_path: str | Path | None = None,
) -> dict:
    """Run the full shard-count × fan-out-mode grid; return (and save)
    the report payload."""
    data = independent(n=config.n, d=config.d, seed=config.seed)
    workload = _make_workload(config)

    reference = GIREngine(
        data,
        bulk_load_str(data),
        method=config.method,
        cache_capacity=config.cache_capacity,
    )
    t0 = time.perf_counter()
    ref_report = reference.run(workload)
    ref_wall_ms = (time.perf_counter() - t0) * 1e3
    ref_ids = [r.ids for r in ref_report.responses]

    runs: list[dict] = []
    all_match = True
    accounting_ok = True
    for shards in config.shard_counts:
        for parallel in (False, True):
            with ShardedGIREngine(
                data,
                shards=shards,
                partitioner=config.partitioner,
                parallel=parallel,
                method=config.method,
                cache_capacity=config.cache_capacity,
                cluster_cache_capacity=config.cluster_cache_capacity,
                page_sleep_ms=config.page_sleep_ms,
            ) as engine:
                report = engine.run(workload)
                matches = all(
                    r.ids == ids
                    for r, ids in zip(report.responses, ref_ids)
                ) and len(report.responses) == len(ref_ids)
                shard_pages = sum(
                    s["page_reads"] for s in report.shard_stats
                )
                sums_ok = shard_pages == report.pages_read_total
                all_match &= matches
                accounting_ok &= sums_ok
                runs.append(
                    {
                        # Distinct from to_dict()'s "shards" key (the
                        # per-shard breakdown list).
                        "shard_count": shards,
                        "mode": "parallel" if parallel else "sequential",
                        "matches_reference": matches,
                        "shard_accounting_sums": sums_ok,
                        **report.to_dict(),
                    }
                )

    def wall_of(shards: int, mode: str) -> float | None:
        for run in runs:
            if run["shard_count"] == shards and run["mode"] == mode:
                return run["wall_ms"]
        return None

    seq4, par4 = wall_of(4, "sequential"), wall_of(4, "parallel")
    payload = {
        "benchmark": "cluster_fanout",
        "config": asdict(config),
        "reference": {
            **ref_report.to_dict(),
            "wall_ms_unslept": ref_wall_ms,
        },
        "runs": runs,
        "equivalence": {
            "all_match": all_match,
            "accounting_ok": accounting_ok,
            "requests": len(ref_ids),
        },
        "parallel_speedup_at_4": (
            seq4 / par4 if seq4 and par4 else None
        ),
    }
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
