"""Sharded-cluster benchmark: fan-out serving across 1/2/4/8 shards.

``python -m repro.bench --cluster`` replays one fixed workload through a
grid of :class:`~repro.cluster.ShardedGIREngine` configurations —
every shard count × fan-out mode — plus a single
:class:`~repro.engine.GIREngine` reference over the unpartitioned data,
and writes a JSON report with:

* **equivalence**: every sharded configuration must return the identical
  top-k rid sequence as the single engine on every request (this is the
  CI gate — the cluster is only interesting if it is *exactly* right);
* **per-shard breakdowns**: cache hits, page reads, fanned-out requests
  and latency per shard, with the accounting cross-checked to sum to the
  cluster totals;
* **wall-clock** per fan-out mode and shard count.

Fan-out modes (see :mod:`repro.cluster.backends`):

* ``sequential`` — in-process shards, one after another (the baseline);
* ``thread``     — in-process shards on a thread pool: overlaps
  *page-store waits* (run the stores in real-latency mode,
  ``page_sleep_ms > 0``, so there are genuine waits to overlap) but
  serializes CPU-bound phase-2 work on the GIL;
* ``process``    — one worker process per shard
  (``ClusterBenchConfig(backend="process")``): CPU-bound work runs
  genuinely in parallel, which is the regime to measure with
  ``page_sleep_ms = 0`` (no sleeping, pure compute). Needs > 1 CPU to
  show a wall-clock win, so the payload records ``host.cpu_count``.

The headline fields: ``parallel_speedup_at_4`` (sequential / thread wall
time at 4 shards) and, when the process mode runs,
``process_speedup_at_4`` (sequential / process) plus
``process_beats_sequential_at`` (the shard counts where process fan-out
won).

The single-engine reference runs with accounting-only I/O (no sleeping):
it exists for answer equivalence, not for a timing comparison.

With ``--trace`` an extra sub-run repeats the workload through one
two-shard cluster with :mod:`repro.obs` tracing armed (the configured
backend's most parallel mode), drains the worker-side spans through the
wire protocol, and gates on: answers still matching the reference,
every worker span stitching under a router trace id
(``cross_process_stitched``), the collector staying balanced, and the
measured disabled-mode span overhead staying within budget. A Chrome
trace-event artifact lands next to the report.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.cluster import ShardedGIREngine
from repro.data.synthetic import make_synthetic
from repro.engine import GIREngine, zipf_clustered_workload, uniform_workload
from repro.index.bulkload import bulk_load_str

__all__ = ["ClusterBenchConfig", "run_cluster_benchmark"]


@dataclass(frozen=True)
class ClusterBenchConfig:
    """Knobs of one cluster fan-out benchmark run."""

    n: int = 15_000
    d: int = 3
    k: int = 10
    queries: int = 240
    workload: str = "zipf_clustered"  # or "uniform"
    #: Synthetic data family: ``"IND"``, ``"COR"`` or ``"ANTI"`` (the
    #: paper's families; ANTI's wide skylines make phase-2 CPU-heavy —
    #: the interesting regime for process fan-out).
    family: str = "IND"
    clusters: int = 8
    zipf_s: float = 1.1
    spread: float = 0.02
    shard_counts: tuple[int, ...] = (1, 2, 4, 8)
    partitioner: str = "kd"
    #: ``"inproc"`` sweeps sequential + thread fan-out; ``"process"``
    #: adds the process-backed mode to the grid.
    backend: str = "inproc"
    cache_capacity: int = 64
    cluster_cache_capacity: int = 128
    #: Real latency per metered page read in the shard stores (ms). The
    #: default models a fast networked/SSD page fetch; 0 disables sleeping
    #: (then the wall-clock comparison is pure CPU — the process-backend
    #: regime).
    page_sleep_ms: float = 0.5
    method: str = "fp"
    seed: int = 9


def _make_workload(config: ClusterBenchConfig):
    if config.workload == "uniform":
        return uniform_workload(
            config.d, config.queries, k=config.k, rng=config.seed
        )
    if config.workload == "zipf_clustered":
        return zipf_clustered_workload(
            config.d,
            config.queries,
            k=config.k,
            clusters=config.clusters,
            zipf_s=config.zipf_s,
            spread=config.spread,
            rng=config.seed,
        )
    raise ValueError(
        f"unknown workload {config.workload!r}; "
        "expected 'uniform' or 'zipf_clustered'"
    )


def _mode_grid(config: ClusterBenchConfig) -> list[tuple[str, str, bool]]:
    """(mode label, backend, parallel) columns of the sweep."""
    modes = [("sequential", "inproc", False), ("thread", "inproc", True)]
    if config.backend == "process":
        modes.append(("process", "process", True))
    elif config.backend != "inproc":
        raise ValueError(
            f"unknown benchmark backend {config.backend!r}; "
            "expected 'inproc' or 'process'"
        )
    return modes


def _trace_section(
    config: ClusterBenchConfig,
    data,
    workload,
    ref_ids: list,
    out_path: "Path | None",
) -> dict:
    """The ``--trace`` sub-run: one two-shard cluster (the configured
    backend's parallel mode) with tracing armed.

    Worker spans are pulled router-side with
    :meth:`~repro.cluster.ShardedGIREngine.drain_worker_spans`; the
    cross-process stitch gate asserts that spans recorded in *other*
    pids parent under router span ids within router trace ids — the
    whole point of carrying trace context on the wire.
    """
    noop_ns = obs.disabled_span_overhead_ns()
    mode, backend, parallel = _mode_grid(config)[-1]
    obs.reset_collector()
    obs.enable()
    try:
        with ShardedGIREngine(
            data,
            shards=2,
            partitioner=config.partitioner,
            backend=backend,
            parallel=parallel,
            method=config.method,
            cache_capacity=config.cache_capacity,
            cluster_cache_capacity=config.cluster_cache_capacity,
            page_sleep_ms=config.page_sleep_ms,
        ) as engine:
            report = engine.run(workload)
            drained = engine.drain_worker_spans()
    finally:
        obs.disable()
    collector_stats = obs.collector().stats()
    spans = obs.drain()
    matches = all(
        r.ids == ids for r, ids in zip(report.responses, ref_ids)
    ) and len(report.responses) == len(ref_ids)

    pid = os.getpid()
    local_prefix = f"s{pid:x}-"
    router_span_ids = {
        s.span_id for s in spans if s.span_id.startswith(local_prefix)
    }
    router_trace_ids = {
        s.trace_id for s in spans if s.span_id.startswith(local_prefix)
    }
    worker_spans = [
        s for s in spans if not s.span_id.startswith(local_prefix)
    ]
    worker_span_ids = {s.span_id for s in worker_spans}
    cross_process_stitched = bool(worker_spans) and all(
        s.trace_id in router_trace_ids
        and (
            s.parent_id in router_span_ids or s.parent_id in worker_span_ids
        )
        for s in worker_spans
    )

    artifacts: dict[str, str] = {}
    if out_path is not None:
        chrome_path = out_path.with_name(out_path.stem + "_trace.json")
        chrome_path.write_text(
            json.dumps(obs.chrome_trace(spans), indent=2) + "\n"
        )
        artifacts = {"chrome_trace": chrome_path.name}

    mean_ms = max(report.wall_ms / max(len(ref_ids), 1), 0.01)
    spans_per_request = len(spans) / max(len(ref_ids), 1)
    overhead_pct = noop_ns * spans_per_request / (mean_ms * 1e6) * 100.0

    return {
        "mode": mode,
        "backend": backend,
        "matches_reference": matches,
        "spans": len(spans),
        "worker_spans": len(worker_spans),
        "worker_drain": drained,
        "cross_process_stitched": cross_process_stitched,
        "balanced": collector_stats["balanced"],
        "started": collector_stats["started"],
        "finished": collector_stats["finished"],
        "dropped": collector_stats["dropped"],
        "disabled_span_overhead_ns": noop_ns,
        "spans_per_request": spans_per_request,
        "disabled_overhead_pct": overhead_pct,
        "overhead_ok": overhead_pct <= 3.0,
        "artifacts": artifacts,
    }


def run_cluster_benchmark(
    config: ClusterBenchConfig = ClusterBenchConfig(),
    out_path: str | Path | None = None,
    trace: bool = False,
) -> dict:
    """Run the full shard-count × fan-out-mode grid; return (and save)
    the report payload."""
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
    data = make_synthetic(config.family, config.n, config.d, seed=config.seed)
    workload = _make_workload(config)

    reference = GIREngine(
        data,
        bulk_load_str(data),
        method=config.method,
        cache_capacity=config.cache_capacity,
    )
    t0 = time.perf_counter()
    ref_report = reference.run(workload)
    ref_wall_ms = (time.perf_counter() - t0) * 1e3
    ref_ids = [r.ids for r in ref_report.responses]

    runs: list[dict] = []
    all_match = True
    accounting_ok = True
    for shards in config.shard_counts:
        for mode, backend, parallel in _mode_grid(config):
            with ShardedGIREngine(
                data,
                shards=shards,
                partitioner=config.partitioner,
                backend=backend,
                parallel=parallel,
                method=config.method,
                cache_capacity=config.cache_capacity,
                cluster_cache_capacity=config.cluster_cache_capacity,
                page_sleep_ms=config.page_sleep_ms,
            ) as engine:
                report = engine.run(workload)
                matches = all(
                    r.ids == ids
                    for r, ids in zip(report.responses, ref_ids)
                ) and len(report.responses) == len(ref_ids)
                shard_pages = sum(
                    s["page_reads"] for s in report.shard_stats
                )
                sums_ok = shard_pages == report.pages_read_total
                all_match &= matches
                accounting_ok &= sums_ok
                runs.append(
                    {
                        # Distinct from to_dict()'s "shards" key (the
                        # per-shard breakdown list).
                        "shard_count": shards,
                        "mode": mode,
                        "backend": backend,
                        "matches_reference": matches,
                        "shard_accounting_sums": sums_ok,
                        **report.to_dict(),
                    }
                )

    def wall_of(shards: int, mode: str) -> float | None:
        for run in runs:
            if run["shard_count"] == shards and run["mode"] == mode:
                return run["wall_ms"]
        return None

    seq4, thr4 = wall_of(4, "sequential"), wall_of(4, "thread")
    proc4 = wall_of(4, "process")
    process_wins = [
        shards
        for shards in config.shard_counts
        if (seq := wall_of(shards, "sequential")) is not None
        and (proc := wall_of(shards, "process")) is not None
        and proc < seq
    ]
    payload = {
        "benchmark": "cluster_fanout",
        "config": asdict(config),
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "reference": {
            **ref_report.to_dict(),
            "wall_ms_unslept": ref_wall_ms,
        },
        "runs": runs,
        "equivalence": {
            "all_match": all_match,
            "accounting_ok": accounting_ok,
            "requests": len(ref_ids),
        },
        "parallel_speedup_at_4": (
            seq4 / thr4 if seq4 and thr4 else None
        ),
        "process_speedup_at_4": (
            seq4 / proc4 if seq4 and proc4 else None
        ),
        "process_beats_sequential_at": process_wins,
    }
    if trace:
        payload["trace"] = _trace_section(
            config, data, workload, ref_ids, out_path
        )
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
