"""Serving-front-door benchmark: coalescing under a flash crowd.

Three sub-runs against the same synthetic dataset, each through a fresh
:class:`~repro.serve.ServeFront` over a fresh
:class:`~repro.engine.GIREngine`:

* **flash_crowd** — the separating regime: duplicate-heavy bursts over a
  few hot vectors (:func:`~repro.engine.flash_crowd_workload`) fired
  from many concurrent clients. The payload records the full service
  stats and the headline **fan-in ratio** (reads served per engine
  request — CI gates on > 1), and replays the tier's serialization log
  sequentially through a fresh identical engine to assert byte-identical
  ``(rids, scores)`` (:func:`~repro.serve.replay_serial_check`).
* **mixed_fence** — the same tier with inserts/deletes blended in, so
  the committed JSON also witnesses the write fence: the replay crosses
  every fence position and must still match exactly.
* **overload** — the flash crowd against a deliberately tiny ingress
  queue, proving load is *shed* (structured ``Overloaded``, counted)
  rather than buffered without bound, with the admission identity
  ``arrivals == admitted + rejected + shed`` checked in the payload.

Run with ``python -m repro.bench --serve [--scale smoke]``; the JSON
lands next to the other reports and carries ``host.cpu_count`` (the
ROADMAP bench-honesty note: concurrency results are meaningless without
the host's parallelism on record).

With ``--trace`` a fourth sub-run repeats the flash crowd with
:mod:`repro.obs` tracing armed and emits the trace artifacts (Chrome
trace-event JSON next to the report, Prometheus text exposition of the
metrics registry), plus the three gates the CI trace-smoke job reads:
every trace balanced (span enters == exits), replay equivalence intact
under tracing, and the measured disabled-mode span overhead within
:data:`TRACE_OVERHEAD_BUDGET_PCT` of the mean service latency.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.data.synthetic import make_synthetic
from repro.engine import GIREngine, flash_crowd_workload, mixed_workload
from repro.index.bulkload import bulk_load_str
from repro.serve import (
    ServeConfig,
    ServeFront,
    replay_serial_check,
    run_serve_workload,
)

__all__ = [
    "ServeBenchConfig",
    "run_serve_benchmark",
    "TRACE_OVERHEAD_BUDGET_PCT",
]

#: Disabled-mode tracing must cost at most this fraction of the mean
#: per-read service latency (in percent) — the "zero when off" contract,
#: measured rather than assumed.
TRACE_OVERHEAD_BUDGET_PCT = 3.0


@dataclass(frozen=True)
class ServeBenchConfig:
    """Parameters of the front-door benchmark."""

    n: int = 4_000
    d: int = 3
    k: int = 10
    requests: int = 400
    family: str = "IND"
    seed: int = 9
    cache_capacity: int = 128
    # workload shape (see flash_crowd_workload)
    hot: int = 4
    burst_len: int = 24
    duplicate_fraction: float = 0.85
    background_fraction: float = 0.25
    # front-door knobs
    concurrency: int = 48
    batch_window_ms: float = 2.0
    batch_max: int = 32
    max_pending: int = 512
    coalesce_radius: float = 0.02
    # overload sub-run: same traffic against a tiny ingress queue
    overload_max_pending: int = 8
    overload_concurrency: int = 64
    # mixed sub-run: fence coverage
    mixed_requests: int = 120
    mixed_update_fraction: float = 0.2


def _fresh_engine(config: ServeBenchConfig, data) -> GIREngine:
    return GIREngine(
        data, bulk_load_str(data), cache_capacity=config.cache_capacity
    )


async def _drive(engine, workload, serve_config, concurrency):
    front = ServeFront(engine, serve_config)
    async with front:
        report = await run_serve_workload(front, workload, concurrency)
    return front, report


def _run_section(config, data, workload, serve_config, concurrency) -> dict:
    front, report = asyncio.run(
        _drive(_fresh_engine(config, data), workload, serve_config, concurrency)
    )
    equivalence = replay_serial_check(front.log, _fresh_engine(config, data))
    stats = front.stats
    registry = obs.MetricsRegistry()
    obs.bind_serve_stats(registry, stats)
    return {
        "report": report.to_dict(),
        "equivalence": equivalence,
        "fan_in_ratio": stats.fan_in_ratio,
        "engine_requests": stats.engine_requests,
        "reads_served": stats.reads_served,
        "shed": stats.shed,
        "rejected": stats.rejected,
        "arrivals": stats.arrivals,
        "accounting_ok": stats.accounting_ok(),
        # The PR 7 identities re-derived through the metrics registry:
        # if the gauge wiring lied, these break while accounting_ok holds.
        "identities": obs.crosscheck_serve_identities(registry),
    }


def _trace_section(
    config, data, workload, serve_config, out_path: "Path | None"
) -> dict:
    """The ``--trace`` sub-run: flash crowd with tracing armed.

    Measures the disabled-mode span overhead *before* enabling (that is
    the contract under test), runs the workload traced, replays for
    byte-identity, and writes the Chrome-trace and Prometheus artifacts
    next to ``out_path``.
    """
    noop_ns = obs.disabled_span_overhead_ns()
    obs.reset_collector()
    obs.enable()
    try:
        front, report = asyncio.run(
            _drive(
                _fresh_engine(config, data),
                workload,
                serve_config,
                config.concurrency,
            )
        )
    finally:
        obs.disable()
    collector_stats = obs.collector().stats()
    spans = obs.drain()
    # Replay runs untraced (tracing already off) so equivalence compares
    # the traced run's answers against plain sequential serving.
    equivalence = replay_serial_check(front.log, _fresh_engine(config, data))
    stats = front.stats

    registry = obs.MetricsRegistry()
    obs.bind_serve_stats(registry, stats)
    identities = obs.crosscheck_serve_identities(registry)

    by_trace = obs.spans_by_trace(spans)
    stitched = [
        tid
        for tid, recs in by_trace.items()
        if any(r.name == "serve.request" for r in recs)
        and any(r.name.startswith("engine.") for r in recs)
    ]
    reads = max(stats.reads_served, 1)
    spans_per_read = len(spans) / reads
    service_mean_ms = max(stats.service_ms.mean, 0.01)
    overhead_pct = noop_ns * spans_per_read / (service_mean_ms * 1e6) * 100.0

    artifacts: dict[str, str] = {}
    if out_path is not None:
        chrome_path = out_path.with_name(out_path.stem + "_trace.json")
        chrome_path.write_text(
            json.dumps(obs.chrome_trace(spans), indent=2) + "\n"
        )
        prom_path = out_path.with_name(out_path.stem + ".prom")
        prom_path.write_text(obs.prometheus_text(registry))
        artifacts = {
            "chrome_trace": chrome_path.name,
            "prometheus": prom_path.name,
        }

    return {
        "report": report.to_dict(),
        "equivalence": equivalence,
        "accounting_ok": stats.accounting_ok(),
        "identities": identities,
        "spans": len(spans),
        "traces": len(by_trace),
        "stitched_traces": len(stitched),
        "stitched_ok": len(stitched) > 0,
        "balanced": collector_stats["balanced"],
        "started": collector_stats["started"],
        "finished": collector_stats["finished"],
        "dropped": collector_stats["dropped"],
        "disabled_span_overhead_ns": noop_ns,
        "spans_per_read": spans_per_read,
        "disabled_overhead_pct": overhead_pct,
        "overhead_budget_pct": TRACE_OVERHEAD_BUDGET_PCT,
        "overhead_ok": overhead_pct <= TRACE_OVERHEAD_BUDGET_PCT,
        "artifacts": artifacts,
    }


def run_serve_benchmark(
    config: ServeBenchConfig,
    out_path: "Path | str | None" = None,
    trace: bool = False,
) -> dict:
    """Run all three sub-runs (four with ``trace``) and (optionally)
    write the JSON report."""
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
    data = make_synthetic(config.family, config.n, config.d, seed=config.seed)
    serve_config = ServeConfig(
        max_pending=config.max_pending,
        batch_window_ms=config.batch_window_ms,
        batch_max=config.batch_max,
        coalesce_radius=config.coalesce_radius,
    )

    flash = _run_section(
        config,
        data,
        flash_crowd_workload(
            config.d,
            config.requests,
            k=config.k,
            hot=config.hot,
            burst_len=config.burst_len,
            duplicate_fraction=config.duplicate_fraction,
            background_fraction=config.background_fraction,
            rng=config.seed,
        ),
        serve_config,
        config.concurrency,
    )

    mixed = _run_section(
        config,
        data,
        mixed_workload(
            config.d,
            config.mixed_requests,
            base_n=config.n,
            k=config.k,
            update_fraction=config.mixed_update_fraction,
            rng=config.seed + 1,
        ),
        serve_config,
        config.concurrency,
    )

    overload = _run_section(
        config,
        data,
        flash_crowd_workload(
            config.d,
            config.requests,
            k=config.k,
            hot=config.hot,
            burst_len=config.burst_len,
            duplicate_fraction=config.duplicate_fraction,
            background_fraction=config.background_fraction,
            rng=config.seed + 2,
        ),
        ServeConfig(
            max_pending=config.overload_max_pending,
            batch_window_ms=config.batch_window_ms,
            batch_max=config.batch_max,
            coalesce_radius=config.coalesce_radius,
        ),
        config.overload_concurrency,
    )

    payload = {
        "benchmark": "serve_front",
        "config": asdict(config),
        "host": {"cpu_count": os.cpu_count()},
        "flash_crowd": flash,
        "mixed_fence": mixed,
        "overload": overload,
        # headline flags, lifted to the top for the CI gates
        "fan_in_ratio": flash["fan_in_ratio"],
        "equivalence_all_match": (
            flash["equivalence"]["all_match"]
            and mixed["equivalence"]["all_match"]
            and overload["equivalence"]["all_match"]
        ),
        "accounting_ok": (
            flash["accounting_ok"]
            and mixed["accounting_ok"]
            and overload["accounting_ok"]
        ),
        "identities_ok": (
            flash["identities"]["ok"]
            and mixed["identities"]["ok"]
            and overload["identities"]["ok"]
        ),
    }
    if trace:
        payload["trace"] = _trace_section(
            config,
            data,
            flash_crowd_workload(
                config.d,
                config.requests,
                k=config.k,
                hot=config.hot,
                burst_len=config.burst_len,
                duplicate_fraction=config.duplicate_fraction,
                background_fraction=config.background_fraction,
                rng=config.seed,
            ),
            serve_config,
            out_path,
        )
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
