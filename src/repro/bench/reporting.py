"""Plain-text tables in the style of the paper's charts."""

from __future__ import annotations

import math
from typing import Any, Sequence

__all__ = ["format_table", "print_table", "fmt"]


def fmt(value: Any) -> str:
    """Compact numeric formatting (scientific for extremes)."""
    if isinstance(value, float):
        if value == 0.0:  # repro: allow[numeric-safety] -- formatting: print exact zero as "0"
            return "0"
        if math.isnan(value):
            return "nan"
        # repro: allow[numeric-safety] -- display threshold for scientific
        # notation, not a numeric tolerance anything depends on
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    text = format_table(title, headers, rows)
    print(text)
    print()
    return text
