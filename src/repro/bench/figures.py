"""One generator per evaluation figure of the paper (Section 8).

Every generator runs the figure's parameter sweep at the requested scale
and returns :class:`FigureResult` tables whose rows correspond to the
series in the paper's charts. EXPERIMENTS.md records how the measured
shapes compare to the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

import numpy as np

from repro.bench.config import ExperimentScale
from repro.bench.metering import measure_methods, prepare_tree, random_queries
from repro.core.gir import compute_gir
from repro.core.phase2_cp import hull_of_skyline
from repro.core.phase2_fp import build_fan, refine_fans
from repro.data.real import hotel_surrogate, house_surrogate
from repro.data.synthetic import make_synthetic
from repro.geometry.convexhull import qhull_facet_count
from repro.query.bbs import bbs_skyline
from repro.query.brs import brs_topk
from repro.scoring import LinearScoring, mixed_scoring, polynomial_scoring

__all__ = ["FigureResult", "FIGURES"]

FAMILIES = ("IND", "COR", "ANTI")
METHODS = ("sp", "cp", "fp")

#: Cardinality caps for full-hull facet counting (Figure 8(a)) — the full
#: hull of CH' is exactly the Ω(n^{d/2}) object the paper avoids building;
#: we count its facets on a subsample at high d and report the n used.
_HULL_N_CAP = {2: 60_000, 3: 60_000, 4: 30_000, 5: 15_000, 6: 6_000, 7: 2_500, 8: 1_200}


@dataclass
class FigureResult:
    """One printed table of a figure."""

    figure: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)


def _mean_or_nan(values: list[float]) -> float:
    return mean(values) if values else float("nan")


# ---------------------------------------------------------------- Figure 6


def figure_06(scale: ExperimentScale, seed: int = 1) -> list[FigureResult]:
    """Cardinality of SL (6a) and SL ∩ CH (6b) versus dimensionality."""
    rng = np.random.default_rng(seed)
    rows_sl, rows_ch = [], []
    for d in scale.d_sweep:
        row_sl: list = [d]
        row_ch: list = [d]
        for family in FAMILIES:
            data = make_synthetic(family, scale.n_default, d, seed=seed)
            tree = prepare_tree(data)
            sl_sizes, ch_sizes = [], []
            for q in random_queries(rng, d, scale.queries):
                run = brs_topk(tree, data.points, q, scale.k_default, metered=False)
                sl = bbs_skyline(tree, data.points, run=run, metered=False)
                sl_sizes.append(len(sl))
                if d <= scale.d_cap_cp:
                    ch_sizes.append(len(hull_of_skyline(data.points, sl)))
            row_sl.append(_mean_or_nan(sl_sizes))
            row_ch.append(_mean_or_nan([float(c) for c in ch_sizes]))
        rows_sl.append(row_sl)
        rows_ch.append(row_ch)
    headers = ["d", *FAMILIES]
    return [
        FigureResult("6a", f"Figure 6(a): |SL| vs d  (n={scale.n_default}, k={scale.k_default})", headers, rows_sl),
        FigureResult("6b", f"Figure 6(b): |SL ∩ CH| vs d  (n={scale.n_default}, k={scale.k_default}, CP capped at d={scale.d_cap_cp})", headers, rows_ch),
    ]


# ---------------------------------------------------------------- Figure 8


def figure_08(scale: ExperimentScale, seed: int = 2) -> list[FigureResult]:
    """Facets on CH' (8a) and facets incident to p_k (8b) versus d."""
    rng = np.random.default_rng(seed)
    rows_all, rows_inc = [], []
    for d in scale.d_sweep:
        n_hull = min(scale.n_default, _HULL_N_CAP.get(d, 1_000))
        row_all: list = [d, n_hull]
        row_inc: list = [d]
        for family in FAMILIES:
            data = make_synthetic(family, scale.n_default, d, seed=seed)
            tree = prepare_tree(data)
            total_facets, incident_facets, criticals = [], [], []
            for q in random_queries(rng, d, scale.queries):
                run = brs_topk(tree, data.points, q, scale.k_default, metered=False)
                pk = run.result.kth_id
                # 8(b): the FP fan gives the incident facets exactly.
                fan = build_fan(
                    pk, data.points, data.points, run.encountered, q, np.zeros(d)
                )
                refine_fans(
                    tree, data.points, data.points, run, {pk: fan},
                    LinearScoring(d), metered=False,
                )
                incident_facets.append(float(fan.facet_count()))
                criticals.append(
                    float(len([c for c in fan.critical_keys() if not isinstance(c, tuple)]))
                )
                # 8(a): full CH' facet count on a (possibly subsampled) set.
                non_result = np.setdiff1d(
                    np.arange(data.n), np.asarray(run.result.ids)
                )
                if len(non_result) > n_hull:
                    non_result = rng.choice(non_result, n_hull, replace=False)
                chp = np.vstack([data.points[pk][None, :], data.points[non_result]])
                try:
                    total_facets.append(float(qhull_facet_count(chp)))
                except Exception:
                    total_facets.append(float("nan"))
            row_all.append(_mean_or_nan(total_facets))
            row_inc.append(_mean_or_nan(incident_facets))
            row_inc.append(_mean_or_nan(criticals))
        rows_all.append(row_all)
        rows_inc.append(row_inc)
    return [
        FigureResult(
            "8a",
            f"Figure 8(a): facets on CH' vs d  (hull subsampled per caps; k={scale.k_default})",
            ["d", "n_hull", *FAMILIES],
            rows_all,
        ),
        FigureResult(
            "8b",
            f"Figure 8(b): facets incident to p_k (and critical records) vs d  (n={scale.n_default}, k={scale.k_default})",
            ["d"] + [f"{f} {c}" for f in FAMILIES for c in ("facets", "criticals")],
            rows_inc,
        ),
    ]


# ---------------------------------------------------------------- Figure 14


def figure_14(scale: ExperimentScale, seed: int = 3) -> list[FigureResult]:
    """GIR volume / query-space volume: vs d (14a) and vs k (14b)."""
    rng = np.random.default_rng(seed)
    rows_a = []
    for d in scale.d_sweep:
        row: list = [d]
        for family in FAMILIES:
            data = make_synthetic(family, scale.n_default, d, seed=seed)
            tree = prepare_tree(data)
            ratios = []
            for q in random_queries(rng, d, scale.queries):
                gir = compute_gir(tree, data, q, scale.k_default, method="fp", metered=False)
                try:
                    ratios.append(gir.volume_ratio())
                except Exception:
                    ratios.append(float("nan"))
            row.append(_mean_or_nan(ratios))
        rows_a.append(row)

    rows_b = []
    real_sets = {
        "HOUSE": house_surrogate(scale.house_n),
        "HOTEL": hotel_surrogate(scale.hotel_n),
    }
    trees = {name: prepare_tree(ds) for name, ds in real_sets.items()}
    for k in scale.k_sweep:
        row = [k]
        for name, ds in real_sets.items():
            ratios = []
            for q in random_queries(rng, ds.d, scale.queries):
                gir = compute_gir(trees[name], ds, q, k, method="fp", metered=False)
                try:
                    ratios.append(gir.volume_ratio())
                except Exception:
                    ratios.append(float("nan"))
            row.append(_mean_or_nan(ratios))
        rows_b.append(row)
    return [
        FigureResult(
            "14a",
            f"Figure 14(a): GIR volume ratio vs d  (n={scale.n_default}, k={scale.k_default})",
            ["d", *FAMILIES],
            rows_a,
        ),
        FigureResult(
            "14b",
            f"Figure 14(b): GIR volume ratio vs k  (HOUSE n={scale.house_n}, HOTEL n={scale.hotel_n})",
            ["k", "HOUSE", "HOTEL"],
            rows_b,
        ),
    ]


# ---------------------------------------------------------------- Figure 15


def figure_15(scale: ExperimentScale, seed: int = 4) -> list[FigureResult]:
    """CPU and I/O time of SP/CP/FP versus dimensionality, per family."""
    rng = np.random.default_rng(seed)
    out = []
    for family in FAMILIES:
        rows_cpu, rows_io = [], []
        for d in scale.d_sweep:
            data = make_synthetic(family, scale.n_default, d, seed=seed)
            tree = prepare_tree(data)
            methods = tuple(m for m in METHODS if m != "cp" or d <= scale.d_cap_cp)
            queries = random_queries(rng, d, scale.queries)
            agg = measure_methods(data, tree, scale.k_default, methods, queries)
            rows_cpu.append(
                [d] + [agg[m].cpu_ms if m in agg else float("nan") for m in METHODS]
            )
            rows_io.append(
                [d] + [agg[m].io_ms if m in agg else float("nan") for m in METHODS]
            )
        out.append(
            FigureResult(
                f"15-{family}-cpu",
                f"Figure 15: CPU time (ms) vs d — {family}  (n={scale.n_default}, k={scale.k_default})",
                ["d", "CP", "SP", "FP"],
                [[r[0], r[2], r[1], r[3]] for r in rows_cpu],
            )
        )
        out.append(
            FigureResult(
                f"15-{family}-io",
                f"Figure 15: I/O time (ms) vs d — {family}  (n={scale.n_default}, k={scale.k_default})",
                ["d", "CP", "SP", "FP"],
                [[r[0], r[2], r[1], r[3]] for r in rows_io],
            )
        )
    return out


# ---------------------------------------------------------------- Figure 16


def figure_16(scale: ExperimentScale, seed: int = 5, star: bool = False) -> list[FigureResult]:
    """Effect of cardinality n on CPU/I/O (IND, d=4). ``star=True`` gives
    Figure 18 (order-insensitive GIR*)."""
    rng = np.random.default_rng(seed)
    d = 4
    rows_cpu, rows_io = [], []
    for n in scale.n_sweep:
        data = make_synthetic("IND", n, d, seed=seed)
        tree = prepare_tree(data)
        queries = random_queries(rng, d, scale.queries)
        agg = measure_methods(
            data, tree, scale.k_default, METHODS, queries, star=star
        )
        rows_cpu.append([n] + [agg[m].cpu_ms for m in ("cp", "sp", "fp")])
        rows_io.append([n] + [agg[m].io_ms for m in ("cp", "sp", "fp")])
    fig = "18" if star else "16"
    label = "order-insensitive GIR*" if star else "GIR"
    return [
        FigureResult(
            f"{fig}-cpu",
            f"Figure {fig}(a): {label} CPU time (ms) vs n  (IND, d=4, k={scale.k_default})",
            ["n", "CP", "SP", "FP"],
            rows_cpu,
        ),
        FigureResult(
            f"{fig}-io",
            f"Figure {fig}(b): {label} I/O time (ms) vs n  (IND, d=4, k={scale.k_default})",
            ["n", "CP", "SP", "FP"],
            rows_io,
        ),
    ]


# ---------------------------------------------------------------- Figure 17


def figure_17(scale: ExperimentScale, seed: int = 6) -> list[FigureResult]:
    """Effect of k on CPU/I/O for the real datasets."""
    rng = np.random.default_rng(seed)
    out = []
    for name, data in (
        ("HOTEL", hotel_surrogate(scale.hotel_n)),
        ("HOUSE", house_surrogate(scale.house_n)),
    ):
        tree = prepare_tree(data)
        rows_cpu, rows_io = [], []
        for k in scale.k_sweep:
            queries = random_queries(rng, data.d, scale.queries)
            agg = measure_methods(data, tree, k, METHODS, queries)
            rows_cpu.append([k] + [agg[m].cpu_ms for m in ("cp", "sp", "fp")])
            rows_io.append([k] + [agg[m].io_ms for m in ("cp", "sp", "fp")])
        out.append(
            FigureResult(
                f"17-{name}-cpu",
                f"Figure 17: CPU time (ms) vs k — {name}*  (n={data.n})",
                ["k", "CP", "SP", "FP"],
                rows_cpu,
            )
        )
        out.append(
            FigureResult(
                f"17-{name}-io",
                f"Figure 17: I/O time (ms) vs k — {name}*  (n={data.n})",
                ["k", "CP", "SP", "FP"],
                rows_io,
            )
        )
    return out


# ---------------------------------------------------------------- Figure 18


def figure_18(scale: ExperimentScale, seed: int = 7) -> list[FigureResult]:
    """Order-insensitive GIR*: effect of n (IND, d=4)."""
    return figure_16(scale, seed=seed, star=True)


# ---------------------------------------------------------------- Figure 19


def figure_19(scale: ExperimentScale, seed: int = 8) -> list[FigureResult]:
    """Non-linear scoring functions: SP on HOTEL versus k."""
    rng = np.random.default_rng(seed)
    data = hotel_surrogate(scale.hotel_n)
    tree = prepare_tree(data)
    scorers = {
        "Polynomial": polynomial_scoring([4, 3, 2, 1]),
        "Mixed": mixed_scoring(),
        "Linear": LinearScoring(4),
    }
    rows_cpu, rows_io = [], []
    for k in scale.k_sweep:
        row_cpu: list = [k]
        row_io: list = [k]
        for label, scorer in scorers.items():
            queries = random_queries(rng, 4, scale.queries)
            agg = measure_methods(data, tree, k, ("sp",), queries, scorer=scorer)
            row_cpu.append(agg["sp"].cpu_ms)
            row_io.append(agg["sp"].io_ms)
        rows_cpu.append(row_cpu)
        rows_io.append(row_io)
    headers = ["k", *scorers.keys()]
    return [
        FigureResult(
            "19-cpu",
            f"Figure 19(a): SP CPU time (ms) vs k, scoring families  (HOTEL* n={data.n})",
            headers,
            rows_cpu,
        ),
        FigureResult(
            "19-io",
            f"Figure 19(b): SP I/O time (ms) vs k, scoring families  (HOTEL* n={data.n})",
            headers,
            rows_io,
        ),
    ]


# ---------------------------------------------------------------- Ablations


def figure_ablation(scale: ExperimentScale, seed: int = 9) -> list[FigureResult]:
    """Ablation of FP's design choices (not a paper figure; DESIGN.md §3).

    Compares FP variants on IND at the default n/k across d: virtual seeds
    off, dominance node-pruning off, and the footnote-7 Phase-1 tightening
    on. All variants are exact; only cost may change.
    """
    from repro.core.phase2_fp import FPOptions

    rng = np.random.default_rng(seed)
    variants = {
        "FP (default)": FPOptions(),
        "no seeds": FPOptions(use_virtual_seeds=False),
        "no dom-prune": FPOptions(prune_dominated_nodes=False),
        "+phase1 tighten": FPOptions(tighten_with_phase1=True),
    }
    rows_io, rows_cpu = [], []
    for d in scale.d_sweep:
        data = make_synthetic("IND", scale.n_default, d, seed=seed)
        tree = prepare_tree(data)
        queries = random_queries(rng, d, scale.queries)
        row_io: list = [d]
        row_cpu: list = [d]
        for label, opts in variants.items():
            ios, cpus = [], []
            for q in queries:
                run = brs_topk(tree, data.points, q, scale.k_default, metered=False)
                tree.store.reset_meter()
                gir = compute_gir(
                    tree, data, q, scale.k_default, method="fp", run=run,
                    fp_options=opts,
                )
                ios.append(float(gir.stats.io_pages_phase2))
                cpus.append(gir.stats.cpu_ms_total)
            row_io.append(mean(ios))
            row_cpu.append(mean(cpus))
        rows_io.append(row_io)
        rows_cpu.append(row_cpu)
    headers = ["d", *variants.keys()]
    return [
        FigureResult(
            "ablation-io",
            f"Ablation: FP phase-2 page reads vs d  (IND, n={scale.n_default}, k={scale.k_default})",
            headers,
            rows_io,
        ),
        FigureResult(
            "ablation-cpu",
            f"Ablation: FP CPU (ms) vs d  (IND, n={scale.n_default}, k={scale.k_default})",
            headers,
            rows_cpu,
        ),
    ]


FIGURES = {
    "6": figure_06,
    "8": figure_08,
    "14": figure_14,
    "15": figure_15,
    "16": figure_16,
    "17": figure_17,
    "18": figure_18,
    "19": figure_19,
    "ablation": figure_ablation,
}
