"""Measurement plumbing: timed, I/O-metered GIR computations.

The paper reports, per method, the total CPU time and the I/O time of GIR
computation (Phases 1+2), averaged over 100 random queries. We mirror that:
:func:`measure_methods` runs a batch of random queries against a prepared
tree and aggregates per-method CPU milliseconds, page reads and simulated
I/O milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

import numpy as np

from repro.core.gir import compute_gir
from repro.core.gir_star import compute_gir_star
from repro.data.dataset import Dataset
from repro.index.bulkload import bulk_load_str
from repro.index.rtree import RStarTree
from repro.query.brs import brs_topk
from repro.scoring import ScoringFunction

__all__ = ["MethodAggregate", "prepare_tree", "random_queries", "measure_methods"]


@dataclass
class MethodAggregate:
    """Per-method averages over a query batch."""

    method: str
    cpu_ms: float = 0.0
    io_pages: float = 0.0
    io_ms: float = 0.0
    candidates: float = 0.0
    samples: list[dict] = field(default_factory=list)

    @classmethod
    def from_samples(cls, method: str, samples: list[dict]) -> "MethodAggregate":
        return cls(
            method=method,
            cpu_ms=mean(s["cpu_ms"] for s in samples),
            io_pages=mean(s["io_pages"] for s in samples),
            io_ms=mean(s["io_ms"] for s in samples),
            candidates=mean(s["candidates"] for s in samples),
            samples=samples,
        )


def prepare_tree(data: Dataset) -> RStarTree:
    """Bulk-load the benchmark tree (dynamic occupancy fill factor)."""
    return bulk_load_str(data)


def random_queries(rng: np.random.Generator, d: int, count: int) -> list[np.ndarray]:
    """Random query vectors away from the query-space walls (as in the
    paper, weights are interior so every axis genuinely participates)."""
    return [rng.random(d) * 0.8 + 0.1 for _ in range(count)]


def measure_methods(
    data: Dataset,
    tree: RStarTree,
    k: int,
    methods: tuple[str, ...],
    queries: list[np.ndarray],
    scorer: ScoringFunction | None = None,
    star: bool = False,
) -> dict[str, MethodAggregate]:
    """Run every method on every query; return per-method aggregates.

    The BRS run is shared across methods per query (all methods resume from
    identical top-k state, exactly as the paper's common substrate), and
    its I/O is excluded from the per-method figures — the paper charges
    Phase 1+2 only.
    """
    out: dict[str, list[dict]] = {m: [] for m in methods}
    compute = compute_gir_star if star else compute_gir
    for q in queries:
        run = brs_topk(tree, data.points, q, k, scorer=scorer, metered=False)
        for method in methods:
            tree.store.reset_meter()
            result = compute(
                tree, data, q, k, method=method, scorer=scorer, run=run
            )
            out[method].append(
                {
                    "cpu_ms": result.stats.cpu_ms_total,
                    "io_pages": result.stats.io_pages_phase2,
                    "io_ms": result.stats.io_ms_phase2,
                    "candidates": result.stats.phase2_candidates,
                    "volume_ready": result,
                }
            )
    return {m: MethodAggregate.from_samples(m, rows) for m, rows in out.items()}
