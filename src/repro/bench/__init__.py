"""Benchmark harness reproducing every evaluation figure of the paper.

Entry point: ``python -m repro.bench --figure 15 --scale default``.

Each figure of Section 8 has a generator in :mod:`repro.bench.figures` that
runs the corresponding parameter sweep and prints the same series the paper
plots. Scales (:mod:`repro.bench.config`) trade fidelity for runtime:
pure-Python constants differ from the paper's C++ by a constant factor, so
the harness shrinks cardinalities while preserving the comparative shapes
(who wins, by what factor, where the trends bend) — see EXPERIMENTS.md.
"""

from repro.bench.config import SCALES, ExperimentScale
from repro.bench.engine_bench import EngineBenchConfig, run_engine_benchmark
from repro.bench.figures import FIGURES
from repro.bench.harness import run_figure

__all__ = [
    "SCALES",
    "ExperimentScale",
    "FIGURES",
    "run_figure",
    "EngineBenchConfig",
    "run_engine_benchmark",
]
