"""Engine-throughput benchmark: the serving layer under a query stream.

Unlike the figure generators (which reproduce the paper's per-computation
charts), this benchmark measures the *system* the paper motivates in
Section 1: a :class:`~repro.engine.GIREngine` absorbing a workload of
user queries, serving repeats from cached GIRs. It reports cache hit
rate, p50/p95 request latency and page reads per 1k queries, and writes
the numbers as a JSON report for tracking across commits.

Run it with ``python -m repro.bench --engine`` (add ``--out-dir`` to
choose where the JSON lands) or through
``benchmarks/test_engine_throughput.py``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.data.synthetic import independent
from repro.engine import GIREngine, uniform_workload, zipf_clustered_workload
from repro.index.bulkload import bulk_load_str

__all__ = ["EngineBenchConfig", "run_engine_benchmark"]


@dataclass(frozen=True)
class EngineBenchConfig:
    """Knobs of one engine-throughput run."""

    n: int = 15_000
    d: int = 4
    k: int = 10
    queries: int = 400
    workload: str = "zipf_clustered"  # or "uniform"
    clusters: int = 8
    zipf_s: float = 1.1
    spread: float = 0.01
    cache_capacity: int = 64
    method: str = "fp"
    seed: int = 9


def run_engine_benchmark(
    config: EngineBenchConfig = EngineBenchConfig(),
    out_path: str | Path | None = None,
) -> dict:
    """Build engine + workload, serve the stream, return (and save) the report.

    The JSON payload combines the :class:`~repro.engine.WorkloadReport`
    aggregates (hit rate, p50/p95 latency, pages per 1k queries,
    throughput) with the engine/cache counters and the run configuration.
    """
    rng = np.random.default_rng(config.seed)
    data = independent(n=config.n, d=config.d, seed=config.seed)
    tree = bulk_load_str(data)
    engine = GIREngine(
        data,
        tree,
        method=config.method,
        cache_capacity=config.cache_capacity,
    )
    if config.workload == "uniform":
        workload = uniform_workload(
            config.d, config.queries, k=config.k, rng=rng
        )
    elif config.workload == "zipf_clustered":
        workload = zipf_clustered_workload(
            config.d,
            config.queries,
            k=config.k,
            clusters=config.clusters,
            zipf_s=config.zipf_s,
            spread=config.spread,
            rng=rng,
        )
    else:
        raise ValueError(
            f"unknown workload {config.workload!r}; "
            "expected 'uniform' or 'zipf_clustered'"
        )

    report = engine.run(workload)
    payload = {
        "benchmark": "engine_throughput",
        "config": asdict(config),
        **report.to_dict(),
        "engine": engine.stats(),
    }
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
