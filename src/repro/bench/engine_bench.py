"""Engine benchmarks: the serving layer under query and update streams.

Unlike the figure generators (which reproduce the paper's per-computation
charts), these benchmarks measure the *system* the paper motivates in
Section 1: a :class:`~repro.engine.GIREngine` absorbing a workload of
user queries, serving repeats from cached GIRs.

* :func:`run_engine_benchmark` — read-only throughput: cache hit rate,
  p50/p95 request latency, page reads per 1k queries. Its payload also
  carries a **cache-scan microbenchmark** (:func:`run_cache_scan_bench`):
  at a fixed 128 cached entries, the per-entry Python scan
  (:meth:`~repro.core.caching.GIRCache.lookup_scan`) is raced against the
  vectorized region-index lookup and the one-matmul batched lookup over
  the same probe stream, asserting identical answers; CI fails the build
  if the batched path is not faster.
* :func:`run_update_benchmark` — mixed read/write throughput: the same
  Zipf-clustered stream with update bursts blended in, served once under
  the selective GIR-aware invalidation policy and once under the
  flush-on-write baseline. After every update batch the benchmark checks
  a sample of engine answers against exhaustive linear-scan ground truth
  over the live records, and the JSON report carries both policies'
  eviction counts (the selective policy must evict strictly fewer) plus
  the selective policy's insert-prescreen accounting (entries cleared
  without an invalidation LP vs LPs actually run).

Run with ``python -m repro.bench --engine [--updates]`` (add ``--out-dir``
to choose where the JSON lands) or through
``benchmarks/test_engine_throughput.py`` / ``benchmarks/test_engine_updates.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core import kernels
from repro.core.caching import GIRCache
from repro.core.gir import compute_gir
from repro.data.synthetic import independent, make_synthetic
from repro.engine import (
    DeleteOp,
    GIREngine,
    InsertOp,
    Request,
    drifting_zipf_workload,
    mixed_workload,
    uniform_workload,
    zipf_clustered_workload,
)
from repro.engine.engine import WorkloadReport
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk
from repro.core.tolerances import MEMBERSHIP_TOL

__all__ = [
    "EngineBenchConfig",
    "run_engine_benchmark",
    "CacheScanConfig",
    "run_cache_scan_bench",
    "CacheAdmissionConfig",
    "run_cache_admission_bench",
    "UpdateBenchConfig",
    "run_update_benchmark",
]


@dataclass(frozen=True)
class EngineBenchConfig:
    """Knobs of one engine-throughput run."""

    n: int = 15_000
    d: int = 4
    k: int = 10
    queries: int = 400
    workload: str = "zipf_clustered"  # or "uniform" / "drifting_zipf"
    #: Synthetic data family: ``"IND"``, ``"COR"`` or ``"ANTI"`` (see
    #: :mod:`repro.data.synthetic`; COR widens GIRs and lifts hit rates,
    #: ANTI narrows them and stresses the pipeline).
    family: str = "IND"
    clusters: int = 8
    zipf_s: float = 1.1
    spread: float = 0.01
    cache_capacity: int = 64
    method: str = "fp"
    seed: int = 9


def run_engine_benchmark(
    config: EngineBenchConfig = EngineBenchConfig(),
    out_path: str | Path | None = None,
) -> dict:
    """Build engine + workload, serve the stream, return (and save) the report.

    The JSON payload combines the :class:`~repro.engine.WorkloadReport`
    aggregates (hit rate, p50/p95 latency, pages per 1k queries,
    throughput) with the engine/cache counters and the run configuration.
    """
    rng = np.random.default_rng(config.seed)
    data = make_synthetic(config.family, config.n, config.d, seed=config.seed)
    tree = bulk_load_str(data)
    engine = GIREngine(
        data,
        tree,
        method=config.method,
        cache_capacity=config.cache_capacity,
    )
    if config.workload == "uniform":
        workload = uniform_workload(
            config.d, config.queries, k=config.k, rng=rng
        )
    elif config.workload == "zipf_clustered":
        workload = zipf_clustered_workload(
            config.d,
            config.queries,
            k=config.k,
            clusters=config.clusters,
            zipf_s=config.zipf_s,
            spread=config.spread,
            rng=rng,
        )
    elif config.workload == "drifting_zipf":
        workload = drifting_zipf_workload(
            config.d,
            config.queries,
            k=config.k,
            clusters=config.clusters,
            zipf_s=config.zipf_s,
            spread=config.spread,
            rng=rng,
        )
    else:
        raise ValueError(
            f"unknown workload {config.workload!r}; "
            "expected 'uniform', 'zipf_clustered' or 'drifting_zipf'"
        )

    report = engine.run(workload)
    payload = {
        "benchmark": "engine_throughput",
        "config": asdict(config),
        **report.to_dict(),
        "engine": engine.stats(),
        "cache_scan": run_cache_scan_bench(),
        "cache_admission": run_cache_admission_bench(),
    }
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@dataclass(frozen=True)
class CacheScanConfig:
    """Knobs of the cache-scan microbenchmark.

    ``entries`` stays at 128 by default — the fixed cache size the CI gate
    and acceptance numbers are quoted at.
    """

    entries: int = 128
    n: int = 2_000
    d: int = 3
    k: int = 10
    probes: int = 1_000
    #: Fraction of probes sampled near cached query vectors (the rest are
    #: uniform) so the stream exercises hits and misses alike.
    near_fraction: float = 0.5
    seed: int = 9


def run_cache_scan_bench(config: CacheScanConfig = CacheScanConfig()) -> dict:
    """Race the per-entry cache scan against the vectorized lookups.

    Three caches are filled with the *same* GIR entries in the same order
    (identical keys, identical recency), then the same probe stream is
    served through (a) the legacy entry-by-entry scan
    (:meth:`GIRCache.lookup_scan`, one ``Polytope.contains`` per entry),
    (b) the region-index single lookup (:meth:`GIRCache.lookup`, one
    matvec over all entries) and (c) the batched lookup
    (:meth:`GIRCache.lookup_batch`, one matmul for the whole stream).
    Answers must be identical across the three; the payload reports wall
    time per path and the scan/batched speedup.
    """
    rng = np.random.default_rng(config.seed)
    data = independent(n=config.n, d=config.d, seed=config.seed)
    tree = bulk_load_str(data)

    caches = [GIRCache(capacity=config.entries) for _ in range(3)]
    cached_queries: list[np.ndarray] = []
    attempts = 0
    while len(caches[0]) < config.entries and attempts < 50 * config.entries:
        attempts += 1
        q = rng.random(config.d) * 0.8 + 0.1
        gir = compute_gir(tree, data, q, config.k)
        before = len(caches[0])
        for cache in caches:
            cache.insert(gir, kth_g=data.points[gir.topk.kth_id])
        if len(caches[0]) > before:
            cached_queries.append(q)
    scan_cache, vec_cache, batch_cache = caches

    n_near = int(config.probes * config.near_fraction)
    near = [
        np.clip(
            cached_queries[int(rng.integers(len(cached_queries)))]
            + rng.normal(0.0, 0.01, config.d),
            0.01,
            1.0,
        )
        for _ in range(n_near)
    ]
    uniform = [rng.random(config.d) for _ in range(config.probes - n_near)]
    pool = near + uniform
    probes = [pool[i] for i in rng.permutation(len(pool))]
    W = np.stack(probes)

    # Warm both paths (normalized rows, index stacks) with one identical
    # probe per cache so first-touch setup stays out of the timings.
    warm = cached_queries[0]
    scan_cache.lookup_scan(warm, config.k)
    vec_cache.lookup(warm, config.k)
    batch_cache.lookup_batch(warm[None, :], config.k)

    t0 = time.perf_counter()
    scan_hits = [scan_cache.lookup_scan(p, config.k) for p in probes]
    scan_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    vec_hits = [vec_cache.lookup(p, config.k) for p in probes]
    vectorized_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    batch_hits = batch_cache.lookup_batch(W, config.k)
    batched_ms = (time.perf_counter() - t0) * 1e3

    def outcome(hit):
        return None if hit is None else (hit.ids, hit.partial)

    answers_match = (
        [outcome(h) for h in scan_hits]
        == [outcome(h) for h in vec_hits]
        == [outcome(h) for h in batch_hits]
    )
    hits = sum(h is not None for h in scan_hits)
    return {
        "config": asdict(config),
        "entries": len(scan_cache),
        "halfspace_rows": vec_cache.stats()["index_rows"],
        "probes": len(probes),
        "probe_hit_rate": hits / len(probes),
        "scan_ms": scan_ms,
        "vectorized_ms": vectorized_ms,
        "batched_ms": batched_ms,
        "scan_us_per_lookup": 1e3 * scan_ms / len(probes),
        "vectorized_us_per_lookup": 1e3 * vectorized_ms / len(probes),
        "batched_us_per_lookup": 1e3 * batched_ms / len(probes),
        "speedup_vectorized": scan_ms / vectorized_ms if vectorized_ms else 0.0,
        # The headline number the CI gate checks.
        "speedup": scan_ms / batched_ms if batched_ms else 0.0,
        "answers_match": answers_match,
    }


@dataclass(frozen=True)
class CacheAdmissionConfig:
    """Knobs of the cache-admission microbenchmark.

    ``entries`` stays at 128 — the fixed cache size the CI gate quotes.
    The eviction comparison runs with a deliberately small
    ``eviction_capacity`` so capacity pressure (not invalidation) decides
    what survives.
    """

    entries: int = 128
    n: int = 2_000
    d: int = 3
    k: int = 10
    #: Probes of the miss-path timing race (all certain misses).
    miss_probes: int = 1_000
    #: Probes of the mixed answer-equivalence stream (hits and misses).
    mixed_probes: int = 400
    seed: int = 9
    # -- eviction comparison --------------------------------------------------
    eviction_capacity: int = 24
    eviction_queries: int = 500
    eviction_clusters: int = 48
    eviction_zipf_s: float = 0.9
    eviction_spread: float = 0.02
    drift_phases: int = 5
    drift_carryover: float = 0.25


def _fill_caches(
    caches: list[GIRCache], tree, data, rng, entries: int, k: int, d: int
) -> list[np.ndarray]:
    """Insert the same GIR entries into every cache; returns the cached
    query vectors (used to craft near-miss probes)."""
    cached_queries: list[np.ndarray] = []
    attempts = 0
    while len(caches[0]) < entries and attempts < 50 * entries:
        attempts += 1
        q = rng.random(d) * 0.8 + 0.1
        gir = compute_gir(tree, data, q, k)
        before = len(caches[0])
        for cache in caches:
            cache.insert(gir, kth_g=data.points[gir.topk.kth_id])
        if len(caches[0]) > before:
            cached_queries.append(q)
    return cached_queries


def run_cache_admission_bench(
    config: CacheAdmissionConfig = CacheAdmissionConfig(),
) -> dict:
    """The two halves of the admission pipeline, measured.

    **Miss path** — three caches hold the *same* 128 entries; a stream of
    certain-miss probes (uniform vectors the grid proves to be in no
    cached region) is timed through (a) the per-entry Python scan, (b)
    the vectorized matvec with the grid disabled and (c) the
    grid-prescreened lookup. A mixed hit/miss stream then asserts all
    three paths return identical answers, and the active kernels are
    raced against the numpy fallbacks on the same stacked rows for the
    jit/no-jit equivalence bit of the CI gate. Headline:
    ``miss_speedup_vs_scan`` (prescreened vs scan; CI requires ≥ 5×).

    **Eviction** — the same engine configuration serves a stock
    Zipf-clustered stream and a drifting-hot-spot stream once per
    eviction policy (``lru`` / ``cost``) at a small cache capacity; the
    payload records both hit rates per workload. CI requires
    cost ≥ LRU on the stock stream and cost > LRU on the drifting one.
    """
    rng = np.random.default_rng(config.seed)
    data = independent(n=config.n, d=config.d, seed=config.seed)
    tree = bulk_load_str(data)

    caches = [
        GIRCache(capacity=config.entries, grid=False),  # scan baseline
        GIRCache(capacity=config.entries, grid=False),  # vectorized, no grid
        GIRCache(capacity=config.entries, grid=True),  # grid-prescreened
    ]
    cached_queries = _fill_caches(
        caches, tree, data, rng, config.entries, config.k, config.d
    )
    scan_cache, nogrid_cache, grid_cache = caches
    grid_index = grid_cache._indexes[config.d]

    # Certain-miss probe stream: uniform probes whose grid cell is empty.
    # Rejection-sampled off the grid itself, so by construction every probe
    # exercises exactly the miss path in all three caches.
    miss_probes: list[np.ndarray] = []
    attempts = 0
    while len(miss_probes) < config.miss_probes and attempts < 200 * config.miss_probes:
        attempts += 1
        q = rng.random(config.d)
        if grid_index.grid.is_certain_miss(q, MEMBERSHIP_TOL):
            miss_probes.append(q)
    grid_index.grid.probes = grid_index.grid.negatives = 0

    warm = cached_queries[0]
    scan_cache.lookup_scan(warm, config.k)
    nogrid_cache.lookup(warm, config.k)
    grid_cache.lookup(warm, config.k)

    t0 = time.perf_counter()
    scan_miss = [scan_cache.lookup_scan(p, config.k) for p in miss_probes]
    scan_miss_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    nogrid_miss = [nogrid_cache.lookup(p, config.k) for p in miss_probes]
    vectorized_miss_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    grid_miss = [grid_cache.lookup(p, config.k) for p in miss_probes]
    prescreened_miss_ms = (time.perf_counter() - t0) * 1e3

    miss_answers_match = (
        all(h is None for h in scan_miss)
        and all(h is None for h in nogrid_miss)
        and all(h is None for h in grid_miss)
    )
    grid_after_miss = grid_index.grid.stats()

    # Mixed stream (hits and misses): answers must be identical across the
    # scan / vectorized / prescreened paths.
    n_near = config.mixed_probes // 2
    near = [
        np.clip(
            cached_queries[int(rng.integers(len(cached_queries)))]
            + rng.normal(0.0, 0.01, config.d),
            0.01,
            1.0,
        )
        for _ in range(n_near)
    ]
    uniform = [rng.random(config.d) for _ in range(config.mixed_probes - n_near)]
    pool = near + uniform
    mixed = [pool[i] for i in rng.permutation(len(pool))]

    def outcome(hit):
        return None if hit is None else (hit.ids, hit.partial, hit.entry_key)

    answers_match = True
    for p in mixed:
        o = outcome(scan_cache.lookup_scan(p, config.k))
        if o != outcome(nogrid_cache.lookup(p, config.k)) or o != outcome(
            grid_cache.lookup(p, config.k)
        ):
            answers_match = False
            break

    # Active kernels vs numpy fallbacks on the same stacked rows: the
    # jit/no-jit equivalence half of the gate (trivially equal when the
    # numpy fallback *is* the active backend).
    A, b, offsets = grid_index._A, grid_index._b, grid_index._offsets
    X = np.stack(miss_probes[:64] + mixed[:64])
    kernels_match = bool(
        np.array_equal(
            kernels.segmented_membership_batch(A, b, offsets, X, MEMBERSHIP_TOL),
            kernels.segmented_membership_batch_numpy(A, b, offsets, X, MEMBERSHIP_TOL),
        )
        and all(
            np.array_equal(
                kernels.segmented_membership(A, b, offsets, x, MEMBERSHIP_TOL),
                kernels.segmented_membership_numpy(A, b, offsets, x, MEMBERSHIP_TOL),
            )
            for x in X[:16]
        )
    )

    # -- eviction policy comparison -------------------------------------------
    workloads = {
        "zipf": zipf_clustered_workload(
            config.d,
            config.eviction_queries,
            k=config.k,
            clusters=config.eviction_clusters,
            zipf_s=config.eviction_zipf_s,
            spread=config.eviction_spread,
            rng=np.random.default_rng(config.seed + 1),
        ),
        "drift": drifting_zipf_workload(
            config.d,
            config.eviction_queries,
            k=config.k,
            clusters=config.eviction_clusters,
            zipf_s=config.eviction_zipf_s,
            spread=config.eviction_spread,
            phases=config.drift_phases,
            carryover=config.drift_carryover,
            rng=np.random.default_rng(config.seed + 2),
        ),
    }
    eviction: dict[str, dict] = {}
    for wname, workload in workloads.items():
        eviction[wname] = {}
        for policy in ("lru", "cost"):
            engine = GIREngine(
                data,
                tree,
                cache_capacity=config.eviction_capacity,
                cache_policy=policy,
            )
            report = engine.run(workload)
            stats = engine.cache.stats()
            eviction[wname][policy] = {
                "hit_rate": report.hit_rate,
                "latency_p50_ms": report.latency_p50_ms,
                "lru_evictions": stats["lru_evictions"],
                "cost_evictions": stats["cost_evictions"],
                "entries": stats["entries"],
            }
        eviction[wname]["cost_minus_lru_hit_rate"] = (
            eviction[wname]["cost"]["hit_rate"]
            - eviction[wname]["lru"]["hit_rate"]
        )

    return {
        "config": asdict(config),
        "entries": len(scan_cache),
        "halfspace_rows": grid_cache.stats()["index_rows"],
        "kernels": kernels.backend_info(),
        "miss_probes": len(miss_probes),
        "scan_miss_ms": scan_miss_ms,
        "vectorized_miss_ms": vectorized_miss_ms,
        "prescreened_miss_ms": prescreened_miss_ms,
        "scan_miss_us_per_lookup": 1e3 * scan_miss_ms / len(miss_probes),
        "prescreened_miss_us_per_lookup": (
            1e3 * prescreened_miss_ms / len(miss_probes)
        ),
        # The headline numbers the CI gate checks.
        "miss_speedup_vs_scan": (
            scan_miss_ms / prescreened_miss_ms if prescreened_miss_ms else 0.0
        ),
        "miss_speedup_vs_vectorized": (
            vectorized_miss_ms / prescreened_miss_ms
            if prescreened_miss_ms
            else 0.0
        ),
        "grid": grid_after_miss,
        "grid_negative_rate": (
            grid_after_miss["negatives"] / grid_after_miss["probes"]
            if grid_after_miss["probes"]
            else 0.0
        ),
        "miss_answers_match": miss_answers_match,
        "answers_match": answers_match,
        "kernels_match_fallback": kernels_match,
        "eviction": eviction,
    }


@dataclass(frozen=True)
class UpdateBenchConfig:
    """Knobs of one mixed read/write (update-throughput) run."""

    n: int = 4_000
    d: int = 3
    k: int = 10
    #: Synthetic data family: ``"IND"``, ``"COR"`` or ``"ANTI"``.
    family: str = "IND"
    ops: int = 250
    update_fraction: float = 0.2
    insert_ratio: float = 0.5
    batch_size: int = 4
    clusters: int = 8
    zipf_s: float = 1.1
    spread: float = 0.01
    cache_capacity: int = 64
    method: str = "fp"
    seed: int = 9
    #: Workload reads verified against a linear scan after each update
    #: batch (0 disables all ground-truth checking).
    ground_truth_probes: int = 2


def _serve_with_ground_truth(
    engine: GIREngine,
    workload,
    final_probes: list[np.ndarray],
    k: int,
    checks_per_batch: int,
) -> tuple[WorkloadReport, int, int]:
    """Serve the mixed stream; after every update *batch* (a maximal run of
    consecutive updates) check engine answers against an exhaustive linear
    scan of the live records. Returns (report, checks, mismatches).

    The checks piggyback on the workload's own reads — the first
    ``checks_per_batch`` responses following each batch are verified — so
    the instrumentation issues no extra engine queries that would
    re-populate the cache between batches (which would inflate the flush
    baseline's eviction count and bias the policy comparison). Only when
    the stream *ends* mid-batch are the ``final_probes`` queried directly:
    at that point no further update can evict what they cache. Linear-scan
    time is kept out of ``wall_ms`` (only engine calls are timed).
    """
    responses, updates = [], []
    checks = mismatches = 0
    checks_pending = 0
    serve_ms = 0.0
    update_ms = 0.0

    def verify(resp, weights) -> None:
        nonlocal checks, mismatches
        truth = scan_topk(
            engine.points, weights, resp.k,
            scorer=engine.scorer, live=engine.table.live_mask,
        )
        checks += 1
        mismatches += resp.ids != truth.ids

    for op in workload:
        t0 = time.perf_counter()
        if isinstance(op, Request):
            resp = engine.topk(op.weights, op.k)
            serve_ms += (time.perf_counter() - t0) * 1e3
            responses.append(resp)
            if checks_pending > 0:
                checks_pending -= 1
                verify(resp, op.weights)
        elif isinstance(op, InsertOp):
            updates.append(engine.insert(op.point))
            dt = (time.perf_counter() - t0) * 1e3
            serve_ms += dt
            update_ms += dt
            checks_pending = checks_per_batch
        elif isinstance(op, DeleteOp):
            updates.append(engine.delete(op.rid))
            dt = (time.perf_counter() - t0) * 1e3
            serve_ms += dt
            update_ms += dt
            checks_pending = checks_per_batch
    if updates and checks_pending == checks_per_batch:
        # The stream ended inside an update batch: no later read verified
        # it, so probe directly (untimed, not part of the report).
        for q in final_probes:
            verify(engine.topk(q, k), q)
    report = WorkloadReport(
        responses=responses,
        wall_ms=serve_ms,
        workload_kind=workload.kind,
        updates=updates,
        update_wall_ms=update_ms,
    )
    return report, checks, mismatches


def run_update_benchmark(
    config: UpdateBenchConfig = UpdateBenchConfig(),
    out_path: str | Path | None = None,
) -> dict:
    """Serve one mixed read/write stream under both invalidation policies.

    The identical Zipf-clustered workload (reads + update bursts) is
    replayed against two engines over the same initial dataset: one with
    selective GIR-aware invalidation, one with the flush-on-write
    baseline. The payload reports, per policy, the full read/update
    accounting plus the ground-truth check outcome, and the headline
    comparison fields ``gir_evictions`` / ``flush_evictions`` /
    ``gir_evicts_fewer``.
    """
    rng = np.random.default_rng(config.seed)
    data = make_synthetic(config.family, config.n, config.d, seed=config.seed)
    workload = mixed_workload(
        config.d,
        config.ops,
        base_n=config.n,
        k=config.k,
        update_fraction=config.update_fraction,
        insert_ratio=config.insert_ratio,
        batch_size=config.batch_size,
        clusters=config.clusters,
        zipf_s=config.zipf_s,
        spread=config.spread,
        rng=rng,
    )
    final_probes = [
        rng.random(config.d) * 0.8 + 0.1
        for _ in range(config.ground_truth_probes)
    ]

    policies = {}
    for policy in ("gir", "flush"):
        engine = GIREngine(
            data,
            bulk_load_str(data),
            method=config.method,
            cache_capacity=config.cache_capacity,
            invalidation=policy,
        )
        report, checks, mismatches = _serve_with_ground_truth(
            engine,
            workload,
            final_probes,
            config.k,
            checks_per_batch=config.ground_truth_probes,
        )
        policies[policy] = {
            **report.to_dict(),
            "ground_truth_checks": checks,
            "ground_truth_mismatches": mismatches,
            "engine": engine.stats(),
        }

    payload = {
        "benchmark": "engine_updates",
        "config": asdict(config),
        "workload": {"reads": workload.reads, "updates": workload.updates},
        "policies": policies,
        "gir_evictions": policies["gir"].get("evictions", 0),
        "flush_evictions": policies["flush"].get("evictions", 0),
        "gir_evicts_fewer": (
            policies["gir"].get("evictions", 0)
            < policies["flush"].get("evictions", 0)
        ),
        # Insert-invalidation prescreen accounting of the selective policy:
        # cache entries cleared without an LP vs LPs actually run.
        "gir_prescreen_screened": policies["gir"].get("prescreen_screened", 0),
        "gir_prescreen_lps": policies["gir"].get("prescreen_lps", 0),
    }
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
