"""Harness driver: run figures, print tables, persist results."""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench.config import SCALES, ExperimentScale
from repro.bench.figures import FIGURES, FigureResult
from repro.bench.reporting import format_table

__all__ = ["run_figure", "run_all"]


def run_figure(
    figure: str,
    scale: ExperimentScale | str = "bench",
    out_dir: str | Path | None = None,
) -> list[FigureResult]:
    """Run one figure's sweep; print its tables; optionally save them."""
    if isinstance(scale, str):
        scale = SCALES[scale]
    if figure not in FIGURES:
        raise ValueError(f"unknown figure {figure!r}; expected one of {sorted(FIGURES)}")
    t0 = time.perf_counter()
    results = FIGURES[figure](scale)
    elapsed = time.perf_counter() - t0
    texts = []
    for res in results:
        text = format_table(res.title, res.headers, res.rows)
        print(text)
        print()
        texts.append(text)
    print(f"[figure {figure} done in {elapsed:.1f}s at scale '{scale.name}']\n")
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"figure_{figure}_{scale.name}.txt"
        path.write_text("\n\n".join(texts) + "\n")
    return results


def run_all(
    scale: ExperimentScale | str = "bench", out_dir: str | Path | None = None
) -> dict[str, list[FigureResult]]:
    """Run every figure in order."""
    return {fig: run_figure(fig, scale, out_dir) for fig in FIGURES}
