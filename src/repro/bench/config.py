"""Experiment scales: the paper's parameter grid, shrunk for pure Python.

Table 2 of the paper (defaults in bold there): d ∈ {2,…,8} (default 4),
n ∈ {0.5M,…,20M} (default 1M), k ∈ {5,…,100} (default 20). A pure-Python
reproduction cannot run 1M-record sweeps per cell in reasonable time, so
each scale preserves the *sweep structure* at reduced cardinality:

* ``smoke``   — seconds; used by the pytest-benchmark suite;
* ``bench``   — a couple of minutes per figure (default for benchmarks/);
* ``default`` — tens of minutes for the full harness run in EXPERIMENTS.md;
* ``paper``   — the paper's own parameters where feasible (hours).

CP's convex hull of the skyline explodes combinatorially with d (that is
the paper's own finding — Figure 15 shows CP's CPU above 10⁷ ms at d=8);
``d_cap_cp`` bounds the dimensions CP is asked to run at per scale so the
suite terminates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentScale", "SCALES"]


@dataclass(frozen=True)
class ExperimentScale:
    """One runtime/fidelity trade-off point."""

    name: str
    #: default cardinality (the paper's 1M)
    n_default: int
    #: cardinality sweep for Figures 16 & 18 (the paper's 0.5M…20M)
    n_sweep: tuple[int, ...]
    #: dimensionality sweep for Figures 6, 8, 14(a), 15 (paper: 2…8)
    d_sweep: tuple[int, ...]
    #: largest d at which CP (hull-of-skyline) is attempted
    d_cap_cp: int
    #: k sweep for Figures 14(b), 17, 19 (paper: 5…100)
    k_sweep: tuple[int, ...]
    #: default k (paper: 20)
    k_default: int
    #: cardinality of the real-data surrogates (paper: full datasets)
    house_n: int
    hotel_n: int
    #: random queries averaged per cell (paper: 100)
    queries: int
    #: workload length of the serving-engine throughput benchmark
    engine_queries: int = 400
    #: operation count (reads + updates) of the update-throughput benchmark
    engine_update_ops: int = 250
    #: workload length per configuration of the sharded-cluster benchmark
    cluster_queries: int = 240
    #: flash-crowd request count of the serving-front-door benchmark
    serve_requests: int = 400

    def __post_init__(self) -> None:
        if self.n_default <= 0 or self.queries <= 0:
            raise ValueError("scale parameters must be positive")


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        engine_queries=150,
        engine_update_ops=120,
        cluster_queries=120,
        serve_requests=160,
        n_default=4_000,
        n_sweep=(2_000, 4_000, 8_000),
        d_sweep=(2, 3, 4),
        d_cap_cp=4,
        k_sweep=(5, 10, 20),
        k_default=10,
        house_n=6_000,
        hotel_n=8_000,
        queries=2,
    ),
    "bench": ExperimentScale(
        name="bench",
        engine_queries=400,
        engine_update_ops=250,
        n_default=15_000,
        n_sweep=(5_000, 10_000, 20_000, 40_000),
        d_sweep=(2, 3, 4, 5),
        d_cap_cp=5,
        k_sweep=(5, 10, 20, 50),
        k_default=20,
        house_n=20_000,
        hotel_n=25_000,
        queries=3,
    ),
    "default": ExperimentScale(
        name="default",
        engine_queries=1_000,
        engine_update_ops=600,
        serve_requests=800,
        n_default=40_000,
        n_sweep=(15_000, 30_000, 60_000, 120_000, 240_000),
        d_sweep=(2, 3, 4, 5, 6),
        d_cap_cp=5,
        k_sweep=(5, 10, 20, 50, 100),
        k_default=20,
        house_n=60_000,
        hotel_n=80_000,
        queries=3,
    ),
    "paper": ExperimentScale(
        name="paper",
        engine_queries=5_000,
        engine_update_ops=2_500,
        serve_requests=4_000,
        n_default=1_000_000,
        n_sweep=(500_000, 1_000_000, 5_000_000, 10_000_000, 20_000_000),
        d_sweep=(2, 3, 4, 5, 6, 7, 8),
        d_cap_cp=6,
        k_sweep=(5, 10, 20, 50, 100),
        k_default=20,
        house_n=315_265,
        hotel_n=418_843,
        queries=100,
    ),
}
