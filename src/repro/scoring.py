"""Scoring functions for top-k queries.

The paper's default is the linear function ``S(p, q) = q · p`` (Section 3.1).
Section 7.2 extends SP to the broader family ``S(p, q) = Σ w_i g_i(p)`` with
per-dimension monotone component functions ``g_i`` — the evaluation uses a
"Polynomial" and a "Mixed" instance (Figure 19).

Every scoring function here exposes a :meth:`transform` that maps records
from data space into *g-space*, where the score is again a plain dot product
with the weight vector. All GIR machinery (half-spaces, hulls, fans) then
operates on transformed points unchanged, exactly as Section 7.2 derives:
``S(p, q') ≥ S(p', q') ⇔ (g(p) − g(p')) · q' ≥ 0``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from repro.core.tolerances import EXACT_TOL

__all__ = [
    "ScoringFunction",
    "LinearScoring",
    "MonotoneScoring",
    "polynomial_scoring",
    "mixed_scoring",
]


class ScoringFunction:
    """Base class: a monotone per-dimension scoring function.

    Subclasses define :meth:`transform`; all scores are
    ``transform(points) @ weights``. Monotonicity (each ``g_i``
    non-decreasing) is what makes MBB top corners valid maxscore points and
    keeps skyline pruning sound.
    """

    name = "abstract"

    def __init__(self, d: int) -> None:
        if d <= 0:
            raise ValueError("dimensionality must be positive")
        self.d = int(d)

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Map points from data space to g-space (same shape)."""
        raise NotImplementedError

    def transform_one(self, point: np.ndarray) -> np.ndarray:
        return self.transform(np.asarray(point, dtype=np.float64)[None, :])[0]

    def score(self, points: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Scores of ``points`` (``(m, d)`` or ``(d,)``) under ``weights``."""
        pts = np.asarray(points, dtype=np.float64)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        out = self.transform(pts) @ np.asarray(weights, dtype=np.float64)
        return float(out[0]) if single else out

    @property
    def is_linear(self) -> bool:
        return isinstance(self, LinearScoring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(d={self.d})"


class LinearScoring(ScoringFunction):
    """The paper's default: ``S(p, q) = q · p``."""

    name = "linear"

    def transform(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=np.float64)


class MonotoneScoring(ScoringFunction):
    """``S(p, q) = Σ w_i g_i(p_i)`` with monotone non-decreasing ``g_i``.

    Parameters
    ----------
    components:
        One callable per dimension mapping an array of attribute values to
        transformed values. Each must be non-decreasing on ``[0, 1]``.
    name:
        Label used in benchmark reports (e.g. ``"polynomial"``).
    validate:
        When true (default), monotonicity is spot-checked on a grid so a
        decreasing component fails fast instead of corrupting results.
    """

    def __init__(
        self,
        components: Sequence[Callable[[np.ndarray], np.ndarray]],
        name: str = "monotone",
        validate: bool = True,
    ) -> None:
        super().__init__(len(components))
        self.components = list(components)
        self.name = name
        if validate:
            grid = np.linspace(0.0, 1.0, 33)
            for i, g in enumerate(self.components):
                values = np.asarray(g(grid), dtype=np.float64)
                if values.shape != grid.shape:
                    raise ValueError(f"component {i} must map arrays elementwise")
                if not np.isfinite(values).all():
                    raise ValueError(f"component {i} is not finite on [0, 1]")
                if (np.diff(values) < -EXACT_TOL).any():
                    raise ValueError(f"component {i} is not monotone on [0, 1]")

    def transform(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        out = np.empty_like(pts)
        for i, g in enumerate(self.components):
            out[:, i] = g(pts[:, i])
        return out


def polynomial_scoring(exponents: Sequence[float]) -> MonotoneScoring:
    """The paper's "Polynomial" family, e.g. exponents ``(4, 3, 2, 1)`` give
    ``S(p, q) = w₁x₁⁴ + w₂x₂³ + w₃x₃² + w₄x₄`` (Figure 19)."""
    exps = [float(e) for e in exponents]
    if any(e <= 0 for e in exps):
        raise ValueError("exponents must be positive for monotonicity on [0, 1]")
    return MonotoneScoring(
        [(lambda x, e=e: np.power(x, e)) for e in exps],
        name="polynomial",
    )


def mixed_scoring() -> MonotoneScoring:
    """The paper's 4-d "Mixed" function ``w₁x² + w₂eˣ + w₃log x + w₄√x``.

    ``log x`` is −∞ at the domain boundary ``x = 0``; we substitute the
    bounded monotone ``log1p`` (documented in DESIGN.md §4).
    """
    return MonotoneScoring(
        [
            lambda x: np.power(x, 2.0),
            np.exp,
            np.log1p,
            np.sqrt,
        ],
        name="mixed",
    )
