"""Pluggable shard-execution backends for the sharded serving tier.

:class:`~repro.cluster.ShardedGIREngine` routes, fans out, merges and
caches; *where each shard executes* is this package's concern, behind the
:class:`~repro.cluster.backends.base.ShardBackend` contract:

* :class:`InProcBackend` (``"inproc"``, the default) — the shard engine
  lives in the router's process; fan-out threads overlap page-store
  waits but share the GIL for CPU work;
* :class:`ProcessBackend` (``"process"``) — one long-lived worker process
  per shard, speaking the versioned wire format of
  :mod:`repro.cluster.wire`; CPU-bound phase-2/merge-prep work runs
  genuinely in parallel across shards.

Both are byte-identical in their answers; the registry (``BACKENDS`` /
:func:`make_backend`) is where a future socket/multi-host backend plugs
in.
"""

from __future__ import annotations

from repro.cluster.backends.base import (
    ShardBackend,
    ShardReply,
    ShardSpec,
    ShardUpdate,
    ShardWriteError,
    build_shard_engine,
    engine_shard_stats,
    guarded_engine_write,
    reply_from_response,
    update_from_response,
)
from repro.cluster.backends.inproc import InProcBackend
from repro.cluster.backends.process import ProcessBackend

__all__ = [
    "ShardBackend",
    "ShardSpec",
    "ShardReply",
    "ShardUpdate",
    "InProcBackend",
    "ProcessBackend",
    "ShardWriteError",
    "BACKENDS",
    "make_backend",
    "build_shard_engine",
    "guarded_engine_write",
    "engine_shard_stats",
    "reply_from_response",
    "update_from_response",
]

# repro: allow[fork-safety] -- deliberate plug-in registry: mutated only at
# import time by backend modules registering themselves, read-only afterwards
BACKENDS: dict[str, type[ShardBackend]] = {
    InProcBackend.name: InProcBackend,
    ProcessBackend.name: ProcessBackend,
}


def make_backend(spec: "str | type[ShardBackend]", shard_spec: ShardSpec) -> ShardBackend:
    """Instantiate and build one shard backend.

    ``spec`` is a registry name (``"inproc"`` / ``"process"``) or a
    :class:`ShardBackend` subclass (a plug-in execution home); the
    returned backend has already been built from ``shard_spec``.
    """
    if isinstance(spec, type) and issubclass(spec, ShardBackend):
        backend = spec()
    elif isinstance(spec, str):
        if spec not in BACKENDS:
            raise ValueError(
                f"unknown shard backend {spec!r}; expected one of "
                f"{sorted(BACKENDS)} or a ShardBackend subclass"
            )
        backend = BACKENDS[spec]()
    else:
        raise TypeError(
            f"backend must be a registry name or ShardBackend subclass, "
            f"got {spec!r}"
        )
    backend.build(shard_spec)
    return backend
