"""The shard-execution contract: `ShardBackend` and its data shapes.

:class:`~repro.cluster.ShardedGIREngine` owns *global* concerns — routing,
fan-out, cross-shard merge, the cluster-level cache — and delegates every
per-shard operation to a :class:`ShardBackend`. A backend owns exactly one
shard: a full :class:`~repro.engine.GIREngine` (R*-tree over its own page
store, point table, GIR cache), wherever it happens to execute. The
contract is deliberately narrow and fully serializable:

* :meth:`ShardBackend.build` — construct the shard from a
  :class:`ShardSpec` (initial rows + engine config + scorer);
* :meth:`ShardBackend.topk` / :meth:`ShardBackend.topk_batch` — answer
  local reads, returning :class:`ShardReply` — the
  ``(ids, scores, tie_sums, points_g, region)`` tuple the merge layer
  consumes, in **local** rid terms (the router lifts rids to global);
* :meth:`ShardBackend.insert` / :meth:`ShardBackend.delete` — apply a
  routed write, returning :class:`ShardUpdate` (local rid + invalidation
  accounting);
* :meth:`ShardBackend.stats` — the shard's counter snapshot (the
  per-shard block of ``WorkloadReport.shard_stats``);
* :meth:`ShardBackend.close` — release the execution resources
  (idempotent).

Everything a reply carries is plain data — ints, float64 arrays, one
H-representation polytope — so the same contract serves an in-process
engine (:class:`~repro.cluster.backends.inproc.InProcBackend`), a worker
process speaking :mod:`repro.cluster.wire`
(:class:`~repro.cluster.backends.process.ProcessBackend`), and, later, a
socket to another host. Backends over any transport must stay
*byte-identical*: same ids, same float64 scores, same region rows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np
import numpy.typing as npt

from repro.data.dataset import Dataset
from repro.engine.engine import EngineResponse, GIREngine, UpdateResponse
from repro.index.bulkload import bulk_load_str
from repro.index.storage import PageStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.polytope import Polytope
    from repro.scoring import ScoringFunction

__all__ = [
    "ShardSpec",
    "ShardReply",
    "ShardUpdate",
    "ShardBackend",
    "ShardWriteError",
    "build_shard_engine",
    "guarded_engine_write",
    "reply_from_response",
    "update_from_response",
    "engine_shard_stats",
]


class ShardWriteError(RuntimeError):
    """A routed write failed *after* the shard engine began mutating.

    Raised by :func:`guarded_engine_write` only for the dangerous failure
    class: the row was already stored / tombstoned when the exception hit
    (e.g. an invalidation LP or a tree split raised mid-flight), so the
    shard's state can no longer be trusted to match the router's maps or
    its own cache. The only sound response is fail-stop — the worker
    refuses further work and the router marks the cluster broken rather
    than serve from diverged state. Failures where the engine never
    mutated (validation errors, dead rids) re-raise the original
    exception instead: those writes simply did not happen and are safe to
    roll back and retry. ``dirty`` is the transport-crossing marker the
    router dispatches on (also mirrored onto
    :class:`~repro.cluster.wire.WorkerFailure` for process shards).
    """

    def __init__(self, message: str, dirty: bool = True) -> None:
        super().__init__(message)
        self.dirty = bool(dirty)


def guarded_engine_write(
    engine: GIREngine,
    kind: str,
    arg: "npt.NDArray[np.float64] | int",
) -> UpdateResponse:
    """Apply one write to a shard engine, classifying any failure.

    ``kind`` is ``"insert"`` (``arg`` = point) or ``"delete"`` (``arg`` =
    local rid). A *clean* failure — the engine's structural state never
    mutated (validation errors, dead rids) — re-raises the original
    exception untouched: the write simply did not happen and callers keep
    their normal error semantics. A *dirty* failure is wrapped in
    :class:`ShardWriteError` with ``dirty=True`` (see its docstring).
    Dirtiness is detected from the table itself (allocation count for
    inserts, liveness flip for deletes), so the classification cannot
    drift from what the engine actually did.
    """
    if kind == "insert":
        n_before = engine.table.n_allocated
        try:
            return engine.insert(arg)
        except Exception as exc:
            if engine.table.n_allocated == n_before:
                raise
            raise ShardWriteError(
                f"shard insert failed after the row was stored: {exc}",
                dirty=True,
            ) from exc
    if kind == "delete":
        was_live = engine.table.is_live(arg)
        try:
            return engine.delete(arg)
        except Exception as exc:
            if not (was_live and not engine.table.is_live(arg)):
                raise
            raise ShardWriteError(
                f"shard delete of local rid {arg} failed after the row was "
                f"tombstoned: {exc}",
                dirty=True,
            ) from exc
    raise ValueError(f"unknown write kind {kind!r}")


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to build one shard, anywhere.

    The router computes the initial row assignment; the spec carries the
    shard's own rows (ordered by ascending global rid — the invariant the
    merge's tie-break identity rests on) plus the engine configuration.
    ``scorer`` must be shared across shards semantically (same g-space);
    backends that cross a process boundary pickle it.
    """

    shard: int
    name: str
    #: ``(n_s, d)`` float64 initial rows, ascending global-rid order.
    points: npt.NDArray[np.float64]
    method: str
    cache_capacity: int
    cache_policy: str
    retain_runs: bool
    invalidation: str
    page_sleep_ms: float
    scorer: "ScoringFunction"


@dataclass(frozen=True)
class ShardReply:
    """One shard's answer to a read, in **local** rid terms.

    This is the serializable merge contract: the router converts local
    rids to global and hands the rest to
    :func:`~repro.cluster.merge.merge_shard_answers` untouched.
    """

    #: Ranked local rids (the shard's whole live set when it holds fewer
    #: than the requested ``k`` records).
    ids: tuple[int, ...]
    #: Scores under the request's weights, descending.
    scores: tuple[float, ...]
    #: Coordinate sums of the ranked records (weight-independent tie-break).
    tie_sums: tuple[float, ...]
    #: ``(len(ids), d)`` g-space images of the ranked records.
    points_g: npt.NDArray[np.float64]
    #: The region the shard served this exact ordered list under.
    region: "Polytope"
    #: ``"cache"`` / ``"completed"`` / ``"computed"``.
    source: str
    #: Metered page reads charged for this answer.
    pages_read: int
    #: The shard engine's serving latency (compute only — transport time,
    #: if any, is visible in the router's wall clock instead).
    latency_ms: float
    #: Shard-cache entries *after* serving this request. The router
    #: tracks these snapshots so update accounting can report cluster-wide
    #: cache occupancy without a per-write stats round trip (nothing
    #: touches a shard's cache between the router's own calls to it, so
    #: the last snapshot is always exact).
    cache_entries: int


@dataclass(frozen=True)
class ShardUpdate:
    """One applied write, in local rid terms, with its accounting."""

    #: Local rid of the inserted/deleted record.
    rid: int
    #: Shard-cache entries the write invalidated.
    evicted: int
    #: Entries the insert prescreen cleared without an LP.
    screened: int
    #: Invalidation LPs actually run.
    lps: int
    #: Shard-side update latency.
    latency_ms: float
    #: Shard-cache entries remaining after the update (see
    #: :attr:`ShardReply.cache_entries`).
    cache_entries: int


class ShardBackend(ABC):
    """Execution home of one shard (see module docstring)."""

    name: str = "abstract"

    @abstractmethod
    def build(self, spec: ShardSpec) -> None:
        """Construct the shard from its spec. Called exactly once."""

    @abstractmethod
    def topk(self, weights: npt.NDArray[np.float64], k: int) -> ShardReply:
        """Answer one local read (``k`` already clamped by the router)."""

    @abstractmethod
    def topk_batch(
        self, requests: Sequence[tuple[npt.NDArray[np.float64], int]]
    ) -> list[ShardReply]:
        """Answer a batch of local reads in one round trip."""

    @abstractmethod
    def insert(self, point: npt.NDArray[np.float64]) -> ShardUpdate:
        """Apply a routed insert (point already validated and stored
        globally; the shard assigns the next local rid)."""

    @abstractmethod
    def delete(self, rid: int) -> ShardUpdate:
        """Apply a routed delete of a live local rid."""

    @abstractmethod
    def stats(self) -> dict[str, Any]:
        """Counter snapshot (see :func:`engine_shard_stats`)."""

    def drain_spans(self) -> dict[str, Any]:
        """Drain the shard's buffered trace spans (see
        :mod:`repro.obs`): a ``{"spans": [span dicts], "started",
        "finished", "dropped"}`` payload. The default covers every
        backend executing in the router's process — such spans already
        land in the router's own collector, so there is nothing separate
        to drain. Only backends that execute elsewhere (worker process,
        remote host) override this with a real round trip."""
        return {"spans": [], "started": 0, "finished": 0, "dropped": 0}

    @abstractmethod
    def close(self) -> None:
        """Release execution resources; safe to call more than once."""


# -- shared engine-side helpers ------------------------------------------------
#
# Both the in-process backend and the process worker wrap a real GIREngine;
# these helpers are the single place where an engine is built from a spec
# and its responses are flattened into the wire-shaped reply types, so the
# two execution homes cannot drift.


def build_shard_engine(spec: ShardSpec) -> GIREngine:
    """Construct the shard's engine exactly as the pre-backend cluster did:
    own page store (real-latency mode if configured), own bulk-loaded
    R*-tree, own cache."""
    data = Dataset(np.asarray(spec.points, dtype=np.float64), name=spec.name)
    store = PageStore(sleep_ms_per_page=spec.page_sleep_ms)
    return GIREngine(
        data,
        bulk_load_str(data, store=store),
        method=spec.method,
        scorer=spec.scorer,
        cache_capacity=spec.cache_capacity,
        cache_policy=spec.cache_policy,
        retain_runs=spec.retain_runs,
        invalidation=spec.invalidation,
    )


def reply_from_response(engine: GIREngine, resp: EngineResponse) -> ShardReply:
    """Flatten an engine response into the serializable merge contract."""
    local_ids = list(resp.ids)
    pts = engine.points[local_ids]
    return ShardReply(
        ids=tuple(int(i) for i in local_ids),
        scores=resp.scores,
        tie_sums=tuple(float(x) for x in pts.sum(axis=1)),
        points_g=np.array(
            engine.points_g[local_ids], dtype=np.float64, copy=True
        ),
        region=resp.region,
        source=resp.source,
        pages_read=resp.pages_read,
        latency_ms=resp.latency_ms,
        cache_entries=len(engine.cache),
    )


def update_from_response(sub: UpdateResponse) -> ShardUpdate:
    return ShardUpdate(
        rid=sub.rid,
        evicted=sub.evicted,
        screened=sub.prescreen_screened,
        lps=sub.prescreen_lps,
        latency_ms=sub.latency_ms,
        cache_entries=sub.cache_entries,
    )


def engine_shard_stats(engine: GIREngine) -> dict[str, Any]:
    """The per-shard stat block: live records, I/O, cache counters.

    ``page_reads`` is the shard store's lifetime meter; summed over shards
    it equals the cluster's total metered I/O (every metered read happens
    inside some shard's serving path).
    """
    cache = engine.cache
    return {
        "live_records": engine.n_live,
        "page_reads": engine.tree.store.stats.page_reads,
        "cache_entries": len(cache),
        "cache_full_hits": cache.full_hits,
        "cache_partial_hits": cache.partial_hits,
        "cache_misses": cache.misses,
        "updates_applied": engine.updates_applied,
        "update_evictions": engine.update_evictions,
    }
