"""`ProcessBackend` — one long-lived worker process per shard.

Python threads cannot overlap the CPU-bound parts of GIR serving (phase-2
half-space computation, merge preparation, LP-based invalidation all hold
the GIL); a worker *process* can. Each backend forks/spawns one worker
that owns the full shard engine — R*-tree, page store, point table,
GIRCache, retained BRS runs — for the cluster's lifetime, so every cached
region and warm structure survives across requests exactly as in-process
shards do. Router and worker speak the versioned frame format of
:mod:`repro.cluster.wire` over a ``multiprocessing`` pipe:

* one outstanding request per worker at a time (the router's fan-out
  parallelism comes from having N workers, not from pipelining one);
* float payloads are bit-exact on the wire, so answers are byte-identical
  to :class:`~repro.cluster.backends.inproc.InProcBackend`;
* a worker-side exception is caught, serialized (type, message,
  traceback) and re-raised router-side as
  :class:`~repro.cluster.wire.WorkerFailure` — the worker survives and
  keeps serving.

The start method prefers ``fork`` on Linux (no re-import of numpy/scipy
per worker; the parent creates workers before any fan-out threads exist)
and uses ``spawn`` everywhere else (macOS frameworks are not fork-safe);
``spawn`` requires the spec's scorer to be picklable, which the wire
format enforces for every start method so behaviour cannot differ by
platform. The usual ``spawn`` caveats apply: the entry script must be
importable (guard it with ``if __name__ == "__main__"``), and building a
spawn-backed cluster from a REPL/stdin ``__main__`` will fail.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import sys
from typing import Any, Sequence

import numpy as np

from repro import obs, sanitize
from repro.cluster import wire
from repro.cluster.backends.base import (
    ShardBackend,
    ShardReply,
    ShardSpec,
    ShardUpdate,
    build_shard_engine,
    engine_shard_stats,
    guarded_engine_write,
    reply_from_response,
    update_from_response,
)

__all__ = ["ProcessBackend", "default_start_method"]


def default_start_method() -> str:
    """``"fork"`` on Linux (cheap: no per-worker numpy/scipy re-import),
    ``"spawn"`` everywhere else.

    Fork is restricted to Linux deliberately: on macOS the system
    frameworks numpy links against (Accelerate, libdispatch) are not
    fork-safe — the same reason CPython moved the platform default to
    spawn — so a forked worker could crash or hang inside its very first
    ``scorer.transform``. The wire format keeps both paths equivalent
    (the build spec is fully serialized either way).
    """
    if (
        sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
    ):
        return "fork"
    return "spawn"


def _worker_main(conn: Any) -> None:
    """Worker loop: decode a frame, act on the shard engine, reply.

    Runs until an orderly ``MSG_SHUTDOWN`` (acknowledged, then exit) or
    the pipe closes (router died — exit silently). Per-request exceptions
    are reported as error frames, not crashes: a worker holding a warm
    shard must outlive a caller's bad request — with one exception. A
    *dirty* write failure (the engine mutated before raising, see
    :class:`~repro.cluster.backends.base.ShardWriteError`) leaves the
    shard's state untrustworthy, so the worker marks itself broken and
    refuses everything but stats and shutdown from then on; the router
    fail-stops on its side too.
    """
    engine: Any = None
    broken: str | None = None
    # A forked worker inherits the router's span buffer; start clean so
    # a drain returns only spans this worker actually recorded.
    obs.reset_collector()
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                msg, reader = wire.decode_frame(frame)
                if msg == wire.MSG_SHUTDOWN:
                    conn.send_bytes(wire.encode_frame(wire.MSG_READY))
                    break
                if broken is not None and msg not in (
                    wire.MSG_STATS,
                    wire.MSG_TRACE,
                ):
                    raise RuntimeError(
                        f"shard engine diverged during an earlier write "
                        f"({broken}); the worker refuses further operations"
                    )
                with contextlib.ExitStack() as stack:
                    if reader.trace is not None:
                        # The router traced this request: adopt its
                        # context so the worker's engine spans stitch
                        # under the router's span tree, arming tracing
                        # lazily on first traced frame.
                        if not obs.tracing_enabled():
                            obs.enable()
                        stack.enter_context(obs.use_trace(*reader.trace))
                        stack.enter_context(
                            obs.span(
                                "shard.worker", msg=wire.MSG_NAMES[msg]
                            )
                        )
                    reply, engine = _handle_frame(msg, reader, engine)
            except Exception as exc:  # noqa: BLE001 - reported to the router
                if getattr(exc, "dirty", False):
                    broken = str(exc)
                reply = wire.encode_frame(
                    wire.MSG_REPLY_ERROR, wire.encode_error(exc)
                )
            try:
                conn.send_bytes(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()


def _handle_frame(
    msg: int, reader: "wire.Reader", engine: Any
) -> tuple[bytes, Any]:
    """Act on one decoded worker frame; returns ``(reply, engine)`` (the
    engine is created by ``MSG_BUILD`` and threaded back to the loop)."""
    if msg == wire.MSG_BUILD:
        spec = wire.decode_build(reader)
        engine = build_shard_engine(spec)
        reply = wire.encode_frame(wire.MSG_READY)
    elif msg == wire.MSG_TRACE:
        # Drain this worker's span buffer for the router-side stitch;
        # served even before MSG_BUILD (nothing recorded yet → empty).
        reply = wire.encode_frame(
            wire.MSG_REPLY_TRACE,
            wire.encode_trace_payload(obs.drain_payload()),
        )
    elif engine is None:
        raise RuntimeError(
            f"message type {msg} before MSG_BUILD"
        )
    elif msg == wire.MSG_TOPK:
        weights, k = wire.decode_topk(reader)
        resp = engine.topk(weights, k)
        reply = wire.encode_frame(
            wire.MSG_REPLY_TOPK,
            wire.encode_reply(reply_from_response(engine, resp)),
        )
    elif msg == wire.MSG_TOPK_BATCH:
        requests = wire.decode_topk_batch(reader)
        from repro.engine.workload import Request

        responses = engine.topk_batch(
            [Request(weights=w, k=k) for w, k in requests]
        )
        reply = wire.encode_frame(
            wire.MSG_REPLY_BATCH,
            wire.encode_batch_reply(
                reply_from_response(engine, resp)
                for resp in responses
            ),
        )
    elif msg == wire.MSG_INSERT:
        sub = guarded_engine_write(
            engine, "insert", wire.decode_insert(reader)
        )
        reply = wire.encode_frame(
            wire.MSG_REPLY_UPDATE,
            wire.encode_update(update_from_response(sub)),
        )
    elif msg == wire.MSG_DELETE:
        sub = guarded_engine_write(
            engine, "delete", wire.decode_delete(reader)
        )
        reply = wire.encode_frame(
            wire.MSG_REPLY_UPDATE,
            wire.encode_update(update_from_response(sub)),
        )
    elif msg == wire.MSG_STATS:
        reply = wire.encode_frame(
            wire.MSG_REPLY_STATS,
            wire.encode_stats(engine_shard_stats(engine)),
        )
    else:
        raise RuntimeError(
            f"unexpected message type {msg} in a worker"
        )
    return reply, engine


class ProcessBackend(ShardBackend):
    """A shard served by a dedicated worker process (see module docstring).

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method; default
        :func:`default_start_method`.
    """

    name = "process"

    def __init__(self, start_method: str | None = None) -> None:
        self._start_method: str = start_method or default_start_method()
        self._proc: multiprocessing.process.BaseProcess | None = None
        self._conn: Any = None
        #: One outstanding request per worker: the lock serializes the
        #: send/recv pair so thread fan-out from the router stays safe.
        #: Every ``_proc``/``_conn`` touch after ``build`` happens under
        #: it, which is what lets the shared-state rule prove the pair.
        self._lock = sanitize.make_lock("ProcessBackend._lock")

    def build(self, spec: ShardSpec) -> None:
        if self._proc is not None:
            raise RuntimeError("backend already built")
        # Encode the spec *before* starting the worker so an unpicklable
        # scorer fails fast with no orphan process.
        payload = wire.encode_build(spec)
        ctx = multiprocessing.get_context(self._start_method)
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(child,),
            name=f"gir-shard-worker-{spec.shard}",
            daemon=True,
        )
        self._proc.start()
        child.close()
        self._request(wire.MSG_BUILD, payload, expect=wire.MSG_READY)

    def _request(
        self,
        msg: int,
        payload: bytes,
        expect: int,
        trace: tuple[str, str] | None = None,
    ) -> "wire.Reader":
        with self._lock:
            # The closed/unbuilt check lives *inside* the lock so it and
            # the use it guards are one atomic step — a concurrent
            # ``close`` cannot null the pipe between them.
            conn = self._conn
            if conn is None:
                raise RuntimeError(
                    "backend is not running (closed or unbuilt)"
                )
            try:
                conn.send_bytes(wire.encode_frame(msg, payload, trace=trace))
                frame = conn.recv_bytes()
            except (EOFError, OSError) as exc:
                proc = self._proc
                raise RuntimeError(
                    f"shard worker {proc.name if proc else '?'} "
                    f"died mid-request"
                ) from exc
        reply_msg, reader = wire.decode_frame(frame)
        if reply_msg == wire.MSG_REPLY_ERROR:
            raise wire.decode_error(reader)
        if reply_msg != expect:
            raise wire.WireError(
                f"expected reply type {expect}, got {reply_msg}"
            )
        return reader

    # -- the shard contract ----------------------------------------------------

    def topk(self, weights: np.ndarray, k: int) -> ShardReply:
        reader = self._request(
            wire.MSG_TOPK,
            wire.encode_topk(weights, k),
            wire.MSG_REPLY_TOPK,
            trace=obs.current(),
        )
        return wire.decode_reply(reader)

    def topk_batch(
        self, requests: Sequence[tuple[np.ndarray, int]]
    ) -> list[ShardReply]:
        reader = self._request(
            wire.MSG_TOPK_BATCH,
            wire.encode_topk_batch(list(requests)),
            wire.MSG_REPLY_BATCH,
            trace=obs.current(),
        )
        return wire.decode_batch_reply(reader)

    def insert(self, point: np.ndarray) -> ShardUpdate:
        reader = self._request(
            wire.MSG_INSERT,
            wire.encode_insert(point),
            wire.MSG_REPLY_UPDATE,
            trace=obs.current(),
        )
        return wire.decode_update(reader)

    def delete(self, rid: int) -> ShardUpdate:
        reader = self._request(
            wire.MSG_DELETE,
            wire.encode_delete(rid),
            wire.MSG_REPLY_UPDATE,
            trace=obs.current(),
        )
        return wire.decode_update(reader)

    def stats(self) -> dict[str, Any]:
        reader = self._request(wire.MSG_STATS, b"", wire.MSG_REPLY_STATS)
        stats = wire.decode_stats(reader)
        assert isinstance(stats, dict)
        return stats

    def drain_spans(self) -> dict[str, Any]:
        """Round-trip the worker's span buffer (skipped — empty payload —
        when tracing is off router-side: the worker only arms tracing on
        traced frames, so there is nothing to fetch)."""
        if not obs.tracing_enabled():
            return {"spans": [], "started": 0, "finished": 0, "dropped": 0}
        reader = self._request(wire.MSG_TRACE, b"", wire.MSG_REPLY_TRACE)
        payload = wire.decode_trace_payload(reader)
        assert isinstance(payload, dict)
        return payload

    def close(self) -> None:
        """Orderly worker shutdown; escalates to terminate on a hang.

        The attribute swap happens under ``_lock`` (waiting out any
        in-flight request, and making later ones fail the guard), but
        the shutdown handshake and the join run *outside* it: they can
        block for seconds, and — more subtly — doing pipe teardown while
        holding ``_lock`` would order it against the router's serve
        lock, inverting the serve-lock -> pipe-lock order every request
        establishes.
        """
        with self._lock:
            proc, conn = self._proc, self._conn
            self._proc, self._conn = None, None
        if conn is not None:
            try:
                conn.send_bytes(wire.encode_frame(wire.MSG_SHUTDOWN))
                conn.recv_bytes()  # MSG_READY ack (best effort)
            except (EOFError, OSError, ValueError):
                pass
            conn.close()
        if proc is not None:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hang safety net
                proc.terminate()
                proc.join(timeout=5.0)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
