"""`InProcBackend` — the shard engine lives in the router's process.

The default backend and the reference the others are measured against:
zero transport cost, zero serialization, direct object sharing (a reply's
``region`` is the very polytope the shard's cache holds). Thread fan-out
over in-process backends overlaps page-store waits but serializes
CPU-bound phase-2 work on the GIL — escaping that is what
:class:`~repro.cluster.backends.process.ProcessBackend` is for.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.cluster.backends.base import (
    ShardBackend,
    ShardReply,
    ShardSpec,
    ShardUpdate,
    build_shard_engine,
    engine_shard_stats,
    guarded_engine_write,
    reply_from_response,
    update_from_response,
)
from repro.engine.engine import GIREngine
from repro.engine.workload import Request

__all__ = ["InProcBackend"]


# The backend holds no lock of its own: the router's serve lock already
# serializes every request that reaches it, and the engine it wraps is
# built before any fan-out thread exists (happens-before publication).
# repro: thread-owned[InProcBackend] -- every call arrives under the router's serve lock; the backend itself adds no concurrency
class InProcBackend(ShardBackend):
    """Direct calls into a locally owned :class:`GIREngine`."""

    name = "inproc"

    def __init__(self) -> None:
        self._engine: GIREngine | None = None

    @property
    def engine(self) -> GIREngine:
        """The shard engine; raises until :meth:`build` has run."""
        engine = self._engine
        if engine is None:
            raise RuntimeError("backend is not built")
        return engine

    def build(self, spec: ShardSpec) -> None:
        if self._engine is not None:
            raise RuntimeError("backend already built")
        self._engine = build_shard_engine(spec)

    def topk(self, weights: np.ndarray, k: int) -> ShardReply:
        engine = self.engine
        return reply_from_response(engine, engine.topk(weights, k))

    def topk_batch(
        self, requests: Sequence[tuple[np.ndarray, int]]
    ) -> list[ShardReply]:
        engine = self.engine
        responses = engine.topk_batch(
            [Request(weights=w, k=k) for w, k in requests]
        )
        return [reply_from_response(engine, resp) for resp in responses]

    def insert(self, point: np.ndarray) -> ShardUpdate:
        return update_from_response(
            guarded_engine_write(self.engine, "insert", point)
        )

    def delete(self, rid: int) -> ShardUpdate:
        return update_from_response(
            guarded_engine_write(self.engine, "delete", rid)
        )

    def stats(self) -> dict[str, Any]:
        stats = engine_shard_stats(self.engine)
        assert isinstance(stats, dict)
        return stats

    def close(self) -> None:
        """Nothing to release: the engine is plain in-process state."""
