"""Data partitioners for the sharded serving tier.

A partitioner owns two decisions and nothing else:

* :meth:`Partitioner.assign_initial` — which shard owns each record of the
  initial dataset (one pass over the g-space image at cluster build time);
* :meth:`Partitioner.route` — which shard owns a *newly inserted* record
  (called once per write, forever after).

Correctness of the cluster never depends on the partitioning — any
assignment yields the identical merged top-k (the merge layer pools the
per-shard answers and re-ranks them under the global tie-break) — so
partitioners are purely a performance/balance knob:

* :class:`RoundRobinPartitioner` — records dealt to shards in rid order.
  Perfectly balanced, preserves nothing about locality; every shard sees
  a thinned-out copy of the whole distribution, so per-shard top-k work
  shrinks roughly uniformly.
* :class:`KDSplitPartitioner` — recursive median splits of *g-space*
  (the space scores are linear over, see :mod:`repro.scoring`), one shard
  per cell. Spatially coherent shards: each owns a contiguous block of
  score space, which keeps per-shard R*-trees tight and makes high-weight
  regions shard-local for strongly directional queries.

Both preserve the property the byte-identity of the merged answer relies
on: local rids are assigned in ascending *global* rid order within each
shard, so each shard's internal ``(score, coord-sum, rid)`` tie-break
agrees with the global one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "KDSplitPartitioner",
    "PARTITIONERS",
    "make_partitioner",
]


class Partitioner:
    """Shard-assignment policy (see module docstring)."""

    name = "abstract"

    def __init__(self, shards: int) -> None:
        if shards <= 0:
            raise ValueError("shard count must be positive")
        self.shards = int(shards)

    def assign_initial(self, points_g: np.ndarray) -> np.ndarray:
        """Shard id per row of the initial ``(n, d)`` g-space image.

        Every shard must receive at least one record (callers validate
        ``n >= shards`` first).
        """
        raise NotImplementedError

    def route(self, point_g: np.ndarray) -> int:
        """Owning shard of a newly inserted record (g-space image)."""
        raise NotImplementedError


class RoundRobinPartitioner(Partitioner):
    """Deal records to shards in arrival (rid) order: rid ``i`` goes to
    shard ``i mod shards``, initial records and later inserts alike."""

    name = "round_robin"

    def __init__(self, shards: int) -> None:
        super().__init__(shards)
        self._next = 0

    def assign_initial(self, points_g: np.ndarray) -> np.ndarray:
        n = points_g.shape[0]
        self._next = n % self.shards
        return np.arange(n, dtype=np.int64) % self.shards

    def route(self, point_g: np.ndarray) -> int:
        shard = self._next
        self._next = (self._next + 1) % self.shards
        return shard


@dataclass(frozen=True)
class _KDNode:
    """One internal node of the routing tree: records with
    ``g[axis] <= threshold`` descend left, the rest right."""

    axis: int
    threshold: float
    left: "_KDNode | int"
    right: "_KDNode | int"


class KDSplitPartitioner(Partitioner):
    """Recursive median splits of g-space, one shard per leaf cell.

    The split tree is built once from the initial dataset: each node picks
    the widest-spread axis of its record subset, splits at the position
    that divides the subset proportionally to the shard counts of its two
    subtrees (a median for a power-of-two shard count), and records the
    threshold. Initial records are assigned by the *split position* (so
    shard sizes are balanced even with duplicated coordinate values);
    later inserts are routed by walking the thresholds. Any shard count
    ``>= 1`` is supported — non-powers of two simply split unevenly.
    """

    name = "kd"

    def __init__(self, shards: int) -> None:
        super().__init__(shards)
        self._root: _KDNode | int | None = None

    def assign_initial(self, points_g: np.ndarray) -> np.ndarray:
        points_g = np.asarray(points_g, dtype=np.float64)
        if points_g.ndim != 2:
            raise ValueError("points_g must be an (n, d) array")
        if points_g.shape[0] < self.shards:
            raise ValueError(
                f"need at least {self.shards} records to build {self.shards} shards"
            )
        assignment = np.empty(points_g.shape[0], dtype=np.int64)
        self._root = self._build(
            points_g, np.arange(points_g.shape[0]), 0, self.shards, assignment
        )
        return assignment

    def _build(
        self,
        g: np.ndarray,
        subset: np.ndarray,
        lo: int,
        hi: int,
        assignment: np.ndarray,
    ) -> _KDNode | int:
        """Split ``subset`` across shards ``lo .. hi-1``; fills
        ``assignment`` for the initial records and returns the routing
        (sub)tree."""
        if hi - lo == 1:
            assignment[subset] = lo
            return lo
        mid = (lo + hi) // 2
        spreads = g[subset].max(axis=0) - g[subset].min(axis=0)
        axis = int(np.argmax(spreads))
        order = subset[np.argsort(g[subset, axis], kind="stable")]
        # Proportional cut: left subtree serves (mid - lo) of (hi - lo)
        # shards, so it gets that fraction of the records.
        cut = max(1, min(len(order) - 1, round(len(order) * (mid - lo) / (hi - lo))))
        left_set, right_set = order[:cut], order[cut:]
        threshold = float(
            0.5 * (g[order[cut - 1], axis] + g[order[cut], axis])
        )
        return _KDNode(
            axis=axis,
            threshold=threshold,
            left=self._build(g, left_set, lo, mid, assignment),
            right=self._build(g, right_set, mid, hi, assignment),
        )

    def route(self, point_g: np.ndarray) -> int:
        if self._root is None:
            raise RuntimeError("assign_initial must run before route")
        point_g = np.asarray(point_g, dtype=np.float64)
        node = self._root
        while isinstance(node, _KDNode):
            node = (
                node.left
                if float(point_g[node.axis]) <= node.threshold
                else node.right
            )
        return int(node)


# repro: allow[fork-safety] -- deliberate plug-in registry: populated once at
# import time, read-only afterwards (make_partitioner only looks up)
PARTITIONERS: dict[str, type[Partitioner]] = {
    RoundRobinPartitioner.name: RoundRobinPartitioner,
    KDSplitPartitioner.name: KDSplitPartitioner,
}


def make_partitioner(spec: "str | Partitioner", shards: int) -> Partitioner:
    """Resolve a partitioner spec: a registry name or a ready instance
    (whose shard count must match)."""
    if isinstance(spec, Partitioner):
        if spec.shards != shards:
            raise ValueError(
                f"partitioner is configured for {spec.shards} shards, "
                f"engine has {shards}"
            )
        return spec
    if spec not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {spec!r}; expected one of "
            f"{sorted(PARTITIONERS)} or a Partitioner instance"
        )
    return PARTITIONERS[spec](shards)
