"""The shard wire format: versioned frames between router and workers.

The sharded serving tier's merge layer needs only a narrow, serializable
contract per shard — ``(ids, scores, tie_sums, points_g, region)`` plus
provenance/accounting — which is exactly the boundary this module encodes.
A :class:`~repro.cluster.backends.ProcessBackend` speaks these frames over
a ``multiprocessing`` pipe today; the same format is the intended payload
of the ROADMAP's socket/multi-host backend (nothing here assumes a pipe).

Framing follows the conventions of :mod:`repro.index.serde` (the byte-exact
page layout): a magic tag, an explicit little-endian format version that is
checked — not assumed — on every decode, and fixed ``struct`` headers in
front of raw ``<f8``/``<q`` array payloads. Every frame is::

    frame := magic b"GIRW" | version u16 | msg_type u16 | flags u16
             | [trace block if FLAG_TRACE] | payload

``flags`` (version 2) carries optional per-frame context; unknown flag
bits are rejected, so older peers can never silently misparse a frame
that carries context they don't understand. The only flag today is
``FLAG_TRACE``: a request-tracing context — two length-prefixed UTF-8
strings ``(trace_id, parent_span_id)`` — inserted *before* the payload
so that worker-side spans stitch under the router's trace
(:mod:`repro.obs`). Tracing is observability, not semantics: a frame
with and without the trace block decodes to byte-identical payloads.

Float payloads round-trip bit-exactly (``<f8`` both ways), which is what
keeps a process-backed cluster's merged answers *byte-identical* to the
in-process backend: scores, tie-break sums, g-images and region rows cross
the process boundary unperturbed.

Message catalogue (requests flow router → worker, replies worker → router):

===================  =======================================================
``MSG_BUILD``        shard spec: config JSON + initial rows + pickled scorer
``MSG_READY``        worker acknowledgement (build / shutdown)
``MSG_TOPK``         one read: weights vector + k
``MSG_TOPK_BATCH``   a batch of reads (one frame, one reply frame)
``MSG_INSERT``       routed write: the record row
``MSG_DELETE``       routed write: the local rid
``MSG_STATS``        request the shard's counter snapshot
``MSG_SHUTDOWN``     orderly worker exit (acknowledged with ``MSG_READY``)
``MSG_TRACE``        drain the worker's span collector (empty payload)
``MSG_REPLY_TOPK``   one :class:`~repro.cluster.backends.ShardReply`
``MSG_REPLY_BATCH``  a list of shard replies
``MSG_REPLY_UPDATE`` one :class:`~repro.cluster.backends.ShardUpdate`
``MSG_REPLY_STATS``  stat-counter dict (JSON payload)
``MSG_REPLY_ERROR``  exception surrogate, re-raised router-side
``MSG_REPLY_TRACE``  span records + balance counters (JSON payload)
===================  =======================================================

Stats and build-config payloads are JSON (they are small, heterogeneous
dicts and self-describing beats a hand-rolled layout there); every array —
the hot path — is raw little-endian binary. Region polytopes cross as
:meth:`~repro.geometry.polytope.Polytope.to_bytes` payloads, which makes
that layout part of this format: changing it requires a
``WIRE_VERSION`` bump. The scorer crosses the wire
pickled: scoring functions are code, not data, and the build frame is sent
once per worker lifetime (a non-picklable scorer fails the build with a
clear error instead of corrupting anything downstream).
"""

from __future__ import annotations

import json
import pickle
import struct
import traceback
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np
import numpy.typing as npt

from repro.geometry.polytope import Polytope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.backends.base import ShardReply, ShardSpec, ShardUpdate

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "FLAG_TRACE",
    "WireError",
    "WorkerFailure",
    "encode_frame",
    "decode_frame",
    "Reader",
    "MSG_BUILD",
    "MSG_READY",
    "MSG_TOPK",
    "MSG_TOPK_BATCH",
    "MSG_INSERT",
    "MSG_DELETE",
    "MSG_STATS",
    "MSG_SHUTDOWN",
    "MSG_TRACE",
    "MSG_REPLY_TOPK",
    "MSG_REPLY_BATCH",
    "MSG_REPLY_UPDATE",
    "MSG_REPLY_STATS",
    "MSG_REPLY_ERROR",
    "MSG_REPLY_TRACE",
    "MSG_NAMES",
    "encode_trace_payload",
    "decode_trace_payload",
    "encode_build",
    "decode_build",
    "encode_topk",
    "decode_topk",
    "encode_topk_batch",
    "decode_topk_batch",
    "encode_insert",
    "decode_insert",
    "encode_delete",
    "decode_delete",
    "encode_reply",
    "decode_reply",
    "encode_batch_reply",
    "decode_batch_reply",
    "encode_update",
    "decode_update",
    "encode_stats",
    "decode_stats",
    "encode_error",
    "decode_error",
]

MAGIC = b"GIRW"
WIRE_VERSION = 2
_FRAME = struct.Struct("<4sHHH")  # magic, version, msg_type, flags

#: Frame flag: a trace-context block precedes the payload.
FLAG_TRACE = 1

_KNOWN_FLAGS = FLAG_TRACE

MSG_BUILD = 1
MSG_READY = 2
MSG_TOPK = 3
MSG_TOPK_BATCH = 4
MSG_INSERT = 5
MSG_DELETE = 6
MSG_STATS = 7
MSG_SHUTDOWN = 8
MSG_REPLY_TOPK = 9
MSG_REPLY_BATCH = 10
MSG_REPLY_UPDATE = 11
MSG_REPLY_STATS = 12
MSG_REPLY_ERROR = 13
MSG_TRACE = 14
MSG_REPLY_TRACE = 15

_KNOWN_MESSAGES = frozenset(range(MSG_BUILD, MSG_REPLY_TRACE + 1))

#: Human-readable message-type names (for decode-error context and
#: worker span attributes).
MSG_NAMES = MappingProxyType(
    {
        MSG_BUILD: "BUILD",
        MSG_READY: "READY",
        MSG_TOPK: "TOPK",
        MSG_TOPK_BATCH: "TOPK_BATCH",
        MSG_INSERT: "INSERT",
        MSG_DELETE: "DELETE",
        MSG_STATS: "STATS",
        MSG_SHUTDOWN: "SHUTDOWN",
        MSG_REPLY_TOPK: "REPLY_TOPK",
        MSG_REPLY_BATCH: "REPLY_BATCH",
        MSG_REPLY_UPDATE: "REPLY_UPDATE",
        MSG_REPLY_STATS: "REPLY_STATS",
        MSG_REPLY_ERROR: "REPLY_ERROR",
        MSG_TRACE: "TRACE",
        MSG_REPLY_TRACE: "REPLY_TRACE",
    }
)

#: Array dtype tags on the wire.
_DTYPE_F8 = 0
_DTYPE_I8 = 1
_DTYPES = MappingProxyType({_DTYPE_F8: "<f8", _DTYPE_I8: "<q"})


class WireError(ValueError):
    """A frame failed to decode (bad magic, version, type or payload)."""


class WorkerFailure(RuntimeError):
    """An exception raised inside a shard worker, re-raised router-side.

    Carries the worker-side exception type name and traceback text so the
    failure is debuggable without attaching to the worker process, plus
    the ``dirty`` write-state flag of
    :class:`~repro.cluster.backends.base.ShardWriteError` (``True`` when
    a failed write mutated the shard before raising — the router must
    fail-stop instead of rolling back).
    """

    def __init__(
        self, exc_type: str, message: str, tb: str, dirty: bool = False
    ) -> None:
        super().__init__(f"shard worker raised {exc_type}: {message}")
        self.exc_type = exc_type
        self.worker_message = message
        self.worker_traceback = tb
        self.dirty = bool(dirty)


# -- framing ------------------------------------------------------------------


def encode_frame(
    msg_type: int, payload: bytes = b"", trace: tuple[str, str] | None = None
) -> bytes:
    """Wrap a payload in the versioned frame header. ``trace`` is an
    optional ``(trace_id, parent_span_id)`` context; when given, the
    frame carries ``FLAG_TRACE`` and a trace block ahead of the
    payload."""
    flags = 0 if trace is None else FLAG_TRACE
    out = bytearray(_FRAME.pack(MAGIC, WIRE_VERSION, msg_type, flags))
    if trace is not None:
        _put_trace(out, trace)
    out += payload
    return bytes(out)


def decode_frame(frame: bytes) -> tuple[int, "Reader"]:
    """Validate the header; returns ``(msg_type, payload reader)``. The
    reader's ``trace`` attribute holds the frame's trace context (or
    ``None``), already consumed from the byte stream."""
    if len(frame) < _FRAME.size:
        raise WireError(
            f"truncated frame of {len(frame)} bytes "
            f"(header alone is {_FRAME.size})"
        )
    magic, version, msg_type, flags = _FRAME.unpack_from(frame, 0)
    if magic != MAGIC:
        raise WireError(f"not a GIR wire frame (magic {magic!r})")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (speaking {WIRE_VERSION})"
        )
    if msg_type not in _KNOWN_MESSAGES:
        raise WireError(f"unknown message type {msg_type}")
    if flags & ~_KNOWN_FLAGS:
        raise WireError(
            f"unknown frame flags 0x{flags & ~_KNOWN_FLAGS:x} on "
            f"{MSG_NAMES[msg_type]} frame"
        )
    reader = Reader(frame, _FRAME.size, label=MSG_NAMES[msg_type])
    if flags & FLAG_TRACE:
        reader.trace = _get_trace(reader)
    return msg_type, reader


class Reader:
    """Cursor over a frame payload (validates it is fully consumed).

    ``label`` names the message type for error context; ``trace`` is
    the frame's trace block, populated by :func:`decode_frame`.
    """

    def __init__(self, buf: bytes, offset: int = 0, label: str = "") -> None:
        self.buf = buf
        self.off = offset
        self.label = label
        self.trace: tuple[str, str] | None = None

    def _where(self) -> str:
        return f"{self.label or 'frame'} payload"

    def unpack(self, fmt: str) -> tuple[Any, ...]:
        st = struct.Struct(fmt)
        have = len(self.buf) - self.off
        if st.size > have:
            raise WireError(
                f"{self._where()} truncated at offset {self.off}: "
                f"field {fmt!r} needs {st.size} bytes, {have} remain"
            )
        values = st.unpack_from(self.buf, self.off)
        self.off += st.size
        return values

    def take(self, n: int) -> bytes:
        have = len(self.buf) - self.off
        if n > have:
            raise WireError(
                f"{self._where()} truncated at offset {self.off}: "
                f"need {n} bytes, {have} remain"
            )
        chunk = self.buf[self.off : self.off + n]
        self.off += n
        return chunk

    def done(self) -> None:
        if self.off != len(self.buf):
            raise WireError(
                f"{len(self.buf) - self.off} trailing bytes after "
                f"{self._where()} (consumed {self.off} of {len(self.buf)})"
            )


# -- primitive payload pieces -------------------------------------------------


def _put_array(
    out: bytearray, arr: npt.NDArray[Any], dtype_tag: int = _DTYPE_F8
) -> None:
    arr = np.ascontiguousarray(arr, dtype=_DTYPES[dtype_tag])
    out += struct.pack("<BB", dtype_tag, arr.ndim)
    out += struct.pack(f"<{arr.ndim}q", *arr.shape)
    out += arr.tobytes()


def _get_array(reader: Reader) -> npt.NDArray[Any]:
    dtype_tag, ndim = reader.unpack("<BB")
    if dtype_tag not in _DTYPES:
        raise WireError(f"unknown array dtype tag {dtype_tag}")
    shape = reader.unpack(f"<{ndim}q")
    if any(n < 0 for n in shape):
        raise WireError(f"negative array dimension in {shape}")
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    raw = reader.take(8 * count)
    return (
        np.frombuffer(raw, dtype=_DTYPES[dtype_tag], count=count)
        .reshape(shape)
        .copy()
    )


def _put_bytes(out: bytearray, payload: bytes) -> None:
    out += struct.pack("<I", len(payload))
    out += payload


def _get_bytes(reader: Reader) -> bytes:
    (n,) = reader.unpack("<I")
    return reader.take(n)


def _put_json(out: bytearray, obj: object) -> None:
    _put_bytes(out, json.dumps(obj).encode("utf-8"))


def _get_json(reader: Reader) -> Any:
    return json.loads(_get_bytes(reader).decode("utf-8"))


def _put_trace(out: bytearray, trace: tuple[str, str]) -> None:
    trace_id, span_id = trace
    _put_bytes(out, trace_id.encode("utf-8"))
    _put_bytes(out, span_id.encode("utf-8"))


def _get_trace(reader: Reader) -> tuple[str, str]:
    trace_id = _get_bytes(reader).decode("utf-8")
    span_id = _get_bytes(reader).decode("utf-8")
    return trace_id, span_id


# -- build --------------------------------------------------------------------


def encode_build(spec: "ShardSpec") -> bytes:
    """Serialise a shard build spec (config JSON + rows + pickled scorer)."""
    out = bytearray()
    _put_json(
        out,
        {
            "shard": spec.shard,
            "name": spec.name,
            "method": spec.method,
            "cache_capacity": spec.cache_capacity,
            "cache_policy": spec.cache_policy,
            "retain_runs": spec.retain_runs,
            "invalidation": spec.invalidation,
            "page_sleep_ms": spec.page_sleep_ms,
        },
    )
    _put_array(out, spec.points)
    try:
        scorer_bytes = pickle.dumps(spec.scorer)
    except Exception as exc:
        raise ValueError(
            f"scorer {spec.scorer!r} is not picklable and cannot cross the "
            f"shard wire; use the in-process backend for closure-based "
            f"scorers ({exc})"
        ) from exc
    _put_bytes(out, scorer_bytes)
    return bytes(out)


def decode_build(reader: Reader) -> "ShardSpec":
    from repro.cluster.backends.base import ShardSpec

    config: dict[str, Any] = _get_json(reader)
    points = _get_array(reader)
    scorer = pickle.loads(_get_bytes(reader))
    reader.done()
    return ShardSpec(
        shard=int(config["shard"]),
        name=str(config["name"]),
        points=points,
        method=str(config["method"]),
        cache_capacity=int(config["cache_capacity"]),
        cache_policy=str(config.get("cache_policy", "lru")),
        retain_runs=bool(config["retain_runs"]),
        invalidation=str(config["invalidation"]),
        page_sleep_ms=float(config["page_sleep_ms"]),
        scorer=scorer,
    )


# -- reads --------------------------------------------------------------------


def encode_topk(weights: npt.NDArray[np.float64], k: int) -> bytes:
    out = bytearray()
    _put_array(out, np.asarray(weights, dtype=np.float64))
    out += struct.pack("<q", k)
    return bytes(out)


def decode_topk(reader: Reader) -> tuple[npt.NDArray[np.float64], int]:
    weights = _get_array(reader)
    (k,) = reader.unpack("<q")
    reader.done()
    return weights, int(k)


def encode_topk_batch(
    requests: Sequence[tuple[npt.NDArray[np.float64], int]]
) -> bytes:
    out = bytearray(struct.pack("<q", len(requests)))
    for weights, k in requests:
        _put_array(out, np.asarray(weights, dtype=np.float64))
        out += struct.pack("<q", k)
    return bytes(out)


def decode_topk_batch(
    reader: Reader,
) -> list[tuple[npt.NDArray[np.float64], int]]:
    (count,) = reader.unpack("<q")
    requests: list[tuple[npt.NDArray[np.float64], int]] = []
    for _ in range(count):
        weights = _get_array(reader)
        (k,) = reader.unpack("<q")
        requests.append((weights, int(k)))
    reader.done()
    return requests


# -- writes -------------------------------------------------------------------


def encode_insert(point: npt.NDArray[np.float64]) -> bytes:
    out = bytearray()
    _put_array(out, np.asarray(point, dtype=np.float64))
    return bytes(out)


def decode_insert(reader: Reader) -> npt.NDArray[np.float64]:
    point = _get_array(reader)
    reader.done()
    return point


def encode_delete(rid: int) -> bytes:
    return struct.pack("<q", rid)


def decode_delete(reader: Reader) -> int:
    (rid,) = reader.unpack("<q")
    reader.done()
    return int(rid)


# -- replies ------------------------------------------------------------------


def _put_reply(out: bytearray, reply: "ShardReply") -> None:
    _put_array(out, np.asarray(reply.ids, dtype=np.int64), _DTYPE_I8)
    _put_array(out, np.asarray(reply.scores, dtype=np.float64))
    _put_array(out, np.asarray(reply.tie_sums, dtype=np.float64))
    _put_array(out, reply.points_g)
    _put_bytes(out, reply.region.to_bytes())
    _put_bytes(out, reply.source.encode("utf-8"))
    out += struct.pack(
        "<qqd", reply.pages_read, reply.cache_entries, reply.latency_ms
    )


def _get_reply(reader: Reader) -> "ShardReply":
    from repro.cluster.backends.base import ShardReply

    ids = _get_array(reader)
    scores = _get_array(reader)
    tie_sums = _get_array(reader)
    points_g = _get_array(reader)
    region = Polytope.from_bytes(_get_bytes(reader))
    source = _get_bytes(reader).decode("utf-8")
    pages_read, cache_entries, latency_ms = reader.unpack("<qqd")
    return ShardReply(
        ids=tuple(int(i) for i in ids),
        scores=tuple(float(s) for s in scores),
        tie_sums=tuple(float(s) for s in tie_sums),
        points_g=points_g,
        region=region,
        source=source,
        pages_read=int(pages_read),
        latency_ms=float(latency_ms),
        cache_entries=int(cache_entries),
    )


def encode_reply(reply: "ShardReply") -> bytes:
    out = bytearray()
    _put_reply(out, reply)
    return bytes(out)


def decode_reply(reader: Reader) -> "ShardReply":
    reply = _get_reply(reader)
    reader.done()
    return reply


def encode_batch_reply(replies: Iterable["ShardReply"]) -> bytes:
    replies = list(replies)
    out = bytearray(struct.pack("<q", len(replies)))
    for reply in replies:
        _put_reply(out, reply)
    return bytes(out)


def decode_batch_reply(reader: Reader) -> list["ShardReply"]:
    (count,) = reader.unpack("<q")
    replies = [_get_reply(reader) for _ in range(count)]
    reader.done()
    return replies


def encode_update(update: "ShardUpdate") -> bytes:
    return struct.pack(
        "<qqqqqd",
        update.rid,
        update.evicted,
        update.screened,
        update.lps,
        update.cache_entries,
        update.latency_ms,
    )


def decode_update(reader: Reader) -> "ShardUpdate":
    from repro.cluster.backends.base import ShardUpdate

    rid, evicted, screened, lps, cache_entries, latency_ms = reader.unpack(
        "<qqqqqd"
    )
    reader.done()
    return ShardUpdate(
        rid=int(rid),
        evicted=int(evicted),
        screened=int(screened),
        lps=int(lps),
        latency_ms=float(latency_ms),
        cache_entries=int(cache_entries),
    )


# -- stats / errors -----------------------------------------------------------


def encode_stats(stats: dict[str, Any]) -> bytes:
    out = bytearray()
    _put_json(out, stats)
    return bytes(out)


def decode_stats(reader: Reader) -> dict[str, Any]:
    stats: dict[str, Any] = _get_json(reader)
    reader.done()
    return stats


def encode_trace_payload(payload: dict[str, Any]) -> bytes:
    """Serialise a worker span drain (``MSG_REPLY_TRACE`` body): the
    JSON payload of :func:`repro.obs.drain_payload` — span dicts plus
    the worker collector's balance counters."""
    out = bytearray()
    _put_json(out, payload)
    return bytes(out)


def decode_trace_payload(reader: Reader) -> dict[str, Any]:
    payload: dict[str, Any] = _get_json(reader)
    reader.done()
    return payload


def encode_error(exc: BaseException) -> bytes:
    out = bytearray()
    _put_json(
        out,
        {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(traceback.format_exception(exc)),
            # ShardWriteError's write-state classification; False for
            # every other exception (reads never mutate shard structure).
            "dirty": bool(getattr(exc, "dirty", False)),
        },
    )
    return bytes(out)


def decode_error(reader: Reader) -> WorkerFailure:
    info: dict[str, Any] = _get_json(reader)
    reader.done()
    return WorkerFailure(
        exc_type=str(info.get("type", "Exception")),
        message=str(info.get("message", "")),
        tb=str(info.get("traceback", "")),
        dirty=bool(info.get("dirty", False)),
    )
