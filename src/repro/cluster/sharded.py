"""`ShardedGIREngine` — the sharded serving tier over N shard backends.

One :class:`~repro.engine.GIREngine` serves from one R*-tree and one GIR
cache; both its data size and its query throughput stop scaling with the
machine. This tier partitions the record table across ``N`` shards — each
a full, independent ``GIREngine`` (own R*-tree over its own simulated page
store, own point table, own :class:`~repro.core.caching.GIRCache`) — and
serves the *global* top-k on top:

* **shards execute behind a pluggable backend**
  (:mod:`repro.cluster.backends`): the router speaks only the narrow
  :class:`~repro.cluster.backends.ShardBackend` contract —
  ``build / topk / topk_batch / insert / delete / stats / close`` over
  plain serializable data — so the same cluster runs its shards in-process
  (``backend="inproc"``, the default) or in one long-lived worker process
  per shard (``backend="process"``, speaking the versioned wire format of
  :mod:`repro.cluster.wire`), with byte-identical answers either way;
* **reads fan out**: every non-empty shard answers its local top-k
  (cache-first, exactly as a standalone engine would), sequentially or
  concurrently on a thread pool (``parallel=True``). With in-process
  shards the threads overlap real page-store waits; with process shards
  they merely wait on the pipes while the workers run CPU-bound phase-2
  work genuinely in parallel, outside the router's GIL;
* **the merge layer** (:mod:`repro.cluster.merge`) pools the per-shard
  candidates into the global ordered top-k — byte-identical to a single
  engine over the unpartitioned data — and assembles its stability region
  as the intersection of the per-shard serving regions with the
  cross-shard merge-order half-spaces;
* **a cluster-level GIR cache** holds those merged regions, so repeat
  traffic in a hot region is served with *zero* fan-out and zero page
  reads. The cluster tier cannot resume a merged answer to a deeper
  ``k`` (there is no retained search state to continue), so its lookups
  are full-only: deeper requests simply fan out;
* **writes route** to the single owning shard (the partitioner decides),
  reuse the shard's selective ``invalidated_by_insert`` /
  ``invalidated_by_delete`` machinery unchanged, and apply the same
  selective test to the cluster-level cache under the global rids.

Global rids are the cluster's public record identity: the ``i``-th insert
lands at rid ``base_n + i`` exactly as in the single engine, so workload
generators (and their delete streams) work against either unchanged.
Each shard assigns its local rids in ascending global-rid order, which
keeps every local ``(score, coord-sum, rid)`` tie-break consistent with
the global one — the invariant the merge's byte-identity rests on.

**Thread safety.** The router itself is safe for concurrent external
callers: every serving and update entry point runs under one reentrant
*serve lock* (``_serve_lock``), so a ``topk`` observes either all or
none of a concurrent ``insert``/``delete`` — reads and the maps/caches
they consult can never interleave with a half-applied write. Fan-out
parallelism is unaffected: the pool threads run *backend* calls, which
never take the serve lock (the router's own fan-out holds it while it
waits on them). Under ``REPRO_SANITIZE=1`` the lock is a
:class:`repro.sanitize.SanitizedRLock`, so acquisition-order inversions
against the backend pipe locks fail fast.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

import numpy as np

from repro import obs, sanitize
from repro.cluster.backends import (
    InProcBackend,
    ShardBackend,
    ShardReply,
    ShardSpec,
    make_backend,
)
from repro.cluster.merge import MergedAnswer, ShardAnswer, merge_shard_answers
from repro.cluster.partition import Partitioner, make_partitioner
from repro.core.caching import (
    GIRCache,
    apply_delete_invalidation,
    apply_insert_invalidation,
)
from repro.data.dataset import Dataset, PointTable, grow_rows
from repro.engine.engine import (
    EngineResponse,
    GIREngine,
    INVALIDATION_POLICIES,
    SOURCE_CACHE,
    UpdateResponse,
    WorkloadReport,
    validate_point,
    validate_weights,
)
from repro.engine.workload import (
    DeleteOp,
    InsertOp,
    Request,
    Workload,
    op_batches,
)
from repro.scoring import LinearScoring, ScoringFunction

__all__ = ["ShardedGIREngine"]


def _traced_shard_topk(
    backend: ShardBackend, shard: int, weights: np.ndarray, k: int
) -> ShardReply:
    """One per-shard read under a ``shard.call`` span. Module-level (not a
    method) so the fan-out can submit it through :func:`obs.pool_submit`,
    which carries the router's ambient trace context into pool threads."""
    with obs.span("shard.call", shard=shard, method="topk"):
        return backend.topk(weights, k)


def _traced_shard_topk_batch(
    backend: ShardBackend,
    shard: int,
    requests: "list[tuple[np.ndarray, int]]",
) -> list[ShardReply]:
    """Batched sibling of :func:`_traced_shard_topk`."""
    with obs.span("shard.call", shard=shard, method="topk_batch"):
        return backend.topk_batch(requests)


class ShardedGIREngine:
    """A sharded, fan-out top-k serving engine (see module docstring).

    Parameters
    ----------
    data:
        The :class:`Dataset` (or raw ``(n, d)`` array) to serve; must hold
        at least ``shards`` records.
    shards:
        Number of shards; each becomes an independent :class:`GIREngine`
        living behind a shard backend.
    partitioner:
        ``"round_robin"`` (default), ``"kd"`` (median splits of g-space),
        or a ready :class:`~repro.cluster.partition.Partitioner`.
    backend:
        Shard execution home: ``"inproc"`` (default — shard engines live
        in this process), ``"process"`` (one worker process per shard,
        requests crossing the :mod:`repro.cluster.wire` format), or a
        :class:`~repro.cluster.backends.ShardBackend` subclass. Answers
        and accounting are byte-identical across backends.
    parallel:
        Fan reads out on a thread pool (one worker per shard) instead of
        sequentially. Answers and all accounting are identical either
        way; only wall-clock changes. With ``backend="process"`` the
        threads only block on pipes, so per-shard CPU work overlaps for
        real.
    cache_capacity:
        Capacity of each *shard's* GIR cache.
    cache_policy:
        Capacity-eviction policy (``"lru"`` or ``"cost"``) applied to
        every shard cache *and* the cluster-level cache through the
        shared :class:`~repro.core.caching.GIRCache`.
    cluster_cache_capacity:
        Capacity of the cluster-level merged-region cache; ``0``
        disables the cluster cache (every read fans out).
    page_sleep_ms:
        Real per-page read latency of each shard's simulated store
        (see :class:`~repro.index.storage.PageStore`); ``0`` keeps page
        reads accounting-only.
    method / scorer / retain_runs / invalidation:
        Forwarded to every shard engine (one shared scorer instance keeps
        g-space identical across shards; the process backend pickles it
        into each worker).
    """

    def __init__(
        self,
        data: Dataset | np.ndarray,
        *,
        shards: int = 4,
        partitioner: "str | Partitioner" = "round_robin",
        backend: "str | type[ShardBackend]" = "inproc",
        parallel: bool = False,
        method: str = "fp",
        scorer: ScoringFunction | None = None,
        cache_capacity: int = 128,
        cache_policy: str = "lru",
        cluster_cache_capacity: int = 256,
        retain_runs: bool = True,
        invalidation: str = "gir",
        page_sleep_ms: float = 0.0,
    ) -> None:
        if not isinstance(data, Dataset):
            data = Dataset(np.asarray(data, float))
        if shards <= 0:
            raise ValueError("shards must be positive")
        if data.n < shards:
            raise ValueError(
                f"need at least one record per shard: n={data.n} < shards={shards}"
            )
        if invalidation not in INVALIDATION_POLICIES:
            raise ValueError(
                f"unknown invalidation policy {invalidation!r}; "
                f"expected one of {INVALIDATION_POLICIES}"
            )
        self.n_shards = int(shards)
        self.scorer = scorer or LinearScoring(data.d)
        self.method = method
        self.invalidation = invalidation
        self.parallel = bool(parallel)
        self.partitioner = make_partitioner(partitioner, self.n_shards)
        self.backend_name: str = (
            backend if isinstance(backend, str) else getattr(backend, "name", "custom")
        )
        #: Serializes every serving/update entry point against concurrent
        #: external callers (reentrant: the fan-out helpers re-enter it).
        #: Pool threads never take it, so fan-out parallelism is intact.
        self._serve_lock = sanitize.make_lock("ShardedGIREngine._serve_lock")

        #: Global mirror of the record table: the cluster's public rids.
        #: Keeps the full point rows addressable for cluster-cache
        #: rescoring and for ground-truth oracles, at one extra copy of
        #: the data (the shards own theirs).
        self.table = PointTable.from_dataset(data)
        #: g-space image of the global table, maintained in lockstep
        #: (the cluster-cache invalidation LPs need the g-image of any
        #: global rid without asking the owning shard — which may live in
        #: another process).
        self._g_buf = self.scorer.transform(self.table.rows).copy()
        self._g_n: int = int(self.table.n_allocated)

        assignment = self.partitioner.assign_initial(self._g_buf[: data.n])
        #: Per shard: local rid → global rid (append-only, ascending).
        self._local_to_global: list[list[int]] = []
        #: Global rid → (shard, local rid).
        self._rid_map: list[tuple[int, int]] = [(-1, -1)] * data.n
        #: Per-shard live record counts, tracked router-side so fan-out
        #: targeting never needs a backend round trip.
        self._shard_live: list[int] = []
        #: Per-shard cache-entry snapshots (exact: every reply/update
        #: reports the post-op count, and nothing touches a shard's cache
        #: between the router's own calls) — update accounting sums these
        #: instead of fanning a stats request out on every write.
        self._shard_cache_entries: list[int] = []
        self.backends: list[ShardBackend] = []
        try:
            for s in range(self.n_shards):
                gids = np.flatnonzero(assignment == s)
                if gids.size == 0:  # pragma: no cover - partitioners guarantee
                    raise ValueError(f"partitioner left shard {s} empty")
                spec = ShardSpec(
                    shard=s,
                    name=f"{data.name}[shard{s}]",
                    points=data.points[gids],
                    method=method,
                    cache_capacity=cache_capacity,
                    cache_policy=cache_policy,
                    retain_runs=retain_runs,
                    invalidation=invalidation,
                    page_sleep_ms=page_sleep_ms,
                    scorer=self.scorer,
                )
                self.backends.append(make_backend(backend, spec))
                self._shard_live.append(int(gids.size))
                self._shard_cache_entries.append(0)
                self._local_to_global.append([int(g) for g in gids])
                for local, g in enumerate(gids):
                    self._rid_map[int(g)] = (s, local)
        except BaseException:
            # A later shard failed to build: release the execution homes
            # already started (process backends hold live workers and open
            # pipes that close() on this half-built object would never
            # reach).
            for built in self.backends:
                try:
                    built.close()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
            raise

        #: Cluster-level cache of merged answers (``None`` = disabled).
        self.cache: GIRCache | None = (
            GIRCache(capacity=cluster_cache_capacity, policy=cache_policy)
            if cluster_cache_capacity > 0
            else None
        )
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="gir-shard"
            )
            if self.parallel
            else None
        )
        self.requests_served = 0
        self.fanouts = 0
        self.updates_applied = 0
        self.update_evictions = 0
        self._shard_requests: list[int] = [0] * self.n_shards
        self._shard_latency_ms: list[float] = [0.0] * self.n_shards
        #: Set when a shard diverged mid-write (dirty failure): the
        #: router's maps no longer describe the shard's state, so every
        #: further serving call fail-stops instead of returning answers
        #: merged from untrusted shards.
        self._broken: str | None = None

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut the fan-out pool and every shard backend down (idempotent;
        process-backed shards get an orderly worker shutdown). Taking the
        serve lock first lets any in-flight request finish before the
        backends under it disappear."""
        with self._serve_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            for backend in self.backends:
                backend.close()

    def __enter__(self) -> "ShardedGIREngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- views ----------------------------------------------------------------

    @property
    def shards(self) -> list[GIREngine]:
        """The per-shard engines — only addressable with the in-process
        backend (a process-backed shard's engine lives in its worker)."""
        engines = [
            b.engine for b in self.backends if isinstance(b, InProcBackend)
        ]
        if len(engines) != len(self.backends):
            raise RuntimeError(
                f"shard engines are not in-process under the "
                f"{self.backend_name!r} backend; use backend.stats() or the "
                f"cluster API instead"
            )
        return engines

    @property
    def d(self) -> int:
        return int(self.table.d)

    @property
    def n_live(self) -> int:
        return int(self.table.n_live)

    @property
    def points(self) -> np.ndarray:
        """Read-only global row array, indexable by global rid."""
        return self.table.rows

    @property
    def points_g(self) -> np.ndarray:
        """G-space image of :attr:`points` (same shape, read-only)."""
        view = self._g_buf[: self._g_n]
        view.setflags(write=False)
        return view

    @property
    def live_mask(self) -> np.ndarray:
        return self.table.live_mask

    def locate(self, rid: int) -> tuple[int, int]:
        """``(shard, local rid)`` of a global rid (live or tombstoned)."""
        if not 0 <= rid < len(self._rid_map):
            raise KeyError(f"rid {rid} was never allocated")
        return self._rid_map[rid]

    def result_rows(self, ids: Sequence[int]) -> np.ndarray:
        """Snapshot copy of the global rows behind an answer, in answer
        order — the cluster half of the serving front door's snapshot
        contract (see :meth:`repro.engine.GIREngine.result_rows`); taken
        under the serve lock so it never interleaves with an update."""
        with self._serve_lock:
            return np.array(self.table.rows[list(ids)], dtype=np.float64)

    # -- serving --------------------------------------------------------------

    def topk(self, weights: np.ndarray, k: int) -> EngineResponse:
        """Answer one global top-k request.

        Cluster-cache first (full-only; zero fan-out and zero page reads
        on a hit), then fan-out + merge. The response's rid sequence and
        scores are identical to a single :class:`GIREngine` over the
        unpartitioned data; ``region`` carries the merged stability
        region the answer is valid in.
        """
        with obs.span("cluster.topk", k=k), self._serve_lock:
            self._ensure_serving()
            weights = validate_weights(weights, self.d)
            self._validate_k(k)
            t0 = time.perf_counter()
            hit = (
                self.cache.lookup(weights, k, full_only=True)
                if self.cache is not None
                else None
            )
            if hit is not None:
                return self._serve_cluster_hit(weights, k, hit, t0)
            merged = self._fan_out(weights, k)
            self._cache_merged(merged)
            self.requests_served += 1
            return EngineResponse(
                ids=merged.gir.topk.ids,
                scores=merged.gir.topk.scores,
                weights=weights,
                k=k,
                source=merged.source,
                latency_ms=(time.perf_counter() - t0) * 1e3,
                pages_read=merged.pages_read,
                gir_stats=None,
                region=merged.gir.polytope,
            )

    def topk_batch(self, requests: "list[Request] | list[Any]") -> list[EngineResponse]:
        """Serve a batch of read requests.

        The cluster cache is probed in one batched membership pass; the
        remaining requests fan out with **one** batched
        backend ``topk_batch`` call per shard, then merge per request.
        Answers are identical to issuing the requests through
        :meth:`topk` one-by-one; cluster-cache *hit accounting* may
        differ (a request in this batch does not see merged entries
        cached by an earlier request of the same batch — it fans out
        instead and caches its own merged entry; the LRU bounds the
        duplicates).
        """
        with obs.span("cluster.topk_batch", n=len(requests)), self._serve_lock:
            self._ensure_serving()
            reqs = list(requests)
            if not reqs:
                return []
            W = np.stack([validate_weights(r.weights, self.d) for r in reqs])
            ks = [r.k for r in reqs]
            for k in ks:
                self._validate_k(k)
            t_lookup = time.perf_counter()
            hits = (
                self.cache.lookup_batch(W, ks, full_only=True)
                if self.cache is not None
                else [None] * len(reqs)
            )
            lookup_share_ms = (time.perf_counter() - t_lookup) * 1e3 / len(reqs)

            responses: list[EngineResponse | None] = [None] * len(reqs)
            pending = []
            for i, hit in enumerate(hits):
                if hit is not None:
                    t0 = time.perf_counter()
                    responses[i] = self._serve_cluster_hit(
                        W[i], ks[i], hit, t0, extra_latency_ms=lookup_share_ms
                    )
                else:
                    pending.append(i)
            if pending:
                t_fan = time.perf_counter()
                per_shard = self._fan_out_batch(
                    [W[i] for i in pending], [ks[i] for i in pending]
                )
                fan_share_ms = (time.perf_counter() - t_fan) * 1e3 / len(pending)
                for offset, i in enumerate(pending):
                    t0 = time.perf_counter()
                    answers = [
                        self._lift(s, shard_replies[offset])
                        for s, shard_replies in per_shard
                    ]
                    merged = merge_shard_answers(answers, W[i], ks[i])
                    self._cache_merged(merged)
                    self.requests_served += 1
                    responses[i] = EngineResponse(
                        ids=merged.gir.topk.ids,
                        scores=merged.gir.topk.scores,
                        weights=W[i],
                        k=ks[i],
                        source=merged.source,
                        latency_ms=(time.perf_counter() - t0) * 1e3
                        + fan_share_ms
                        + lookup_share_ms,
                        pages_read=merged.pages_read,
                        gir_stats=None,
                        region=merged.gir.polytope,
                    )
            # Every slot is filled by now; the comprehension (rather than a
            # cast) keeps the narrowing visible to the type checker.
            out = [r for r in responses if r is not None]
            assert len(out) == len(reqs)
            return out

    def _validate_k(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if k > self.n_live:
            raise ValueError(
                f"k={k} exceeds live record count {self.n_live}"
            )

    def _ensure_serving(self) -> None:
        if self._broken is not None:
            raise RuntimeError(
                f"cluster is broken — {self._broken}; rebuild the "
                f"ShardedGIREngine (a shard's state diverged mid-write and "
                f"cannot be trusted)"
            )

    def _mark_broken(self, shard: int, kind: str, exc: Exception) -> None:
        self._broken = (
            f"shard {shard} diverged while applying a routed {kind} ({exc})"
        )

    def _serve_cluster_hit(
        self,
        weights: np.ndarray,
        k: int,
        hit: Any,
        t0: float,
        extra_latency_ms: float = 0.0,
    ) -> EngineResponse:
        """Serve from a cluster-cache entry: zero fan-out, zero pages;
        scores recomputed for the request's own weights."""
        assert self.cache is not None  # hits only come from the cache
        ids = hit.ids
        scores = tuple(
            float(s)
            for s in self.scorer.score(self.points[list(ids)], weights)
        )
        self.requests_served += 1
        return EngineResponse(
            ids=ids,
            scores=scores,
            weights=weights,
            k=k,
            source=SOURCE_CACHE,
            latency_ms=(time.perf_counter() - t0) * 1e3 + extra_latency_ms,
            pages_read=0,
            gir_stats=None,
            region=self.cache.entry(hit.entry_key).polytope,
        )

    # -- fan-out --------------------------------------------------------------

    def _fan_targets(self, k: int) -> list[tuple[int, int]]:
        """(shard, local k) pairs of the non-empty shards; the local k is
        clamped to the shard's live count (a shard holding fewer than
        ``k`` records contributes its whole live set — the pool still
        dominates every unseen record)."""
        return [
            (s, min(k, live))
            for s, live in enumerate(self._shard_live)
            if live > 0
        ]

    def _fan_out(self, weights: np.ndarray, k: int) -> MergedAnswer:
        """One read fan-out: every non-empty shard answers locally
        (cache-first), concurrently in parallel mode; answers are merged
        under the global tie-break. Re-enters the serve lock so the
        targeting maps and lift counters cannot move under it even when
        a subclass (or test harness) calls it directly."""
        with obs.span("cluster.fanout", k=k) as fsp, self._serve_lock:
            targets = self._fan_targets(k)
            if obs.tracing_enabled():
                fsp.set("shards", len(targets))
            if self._pool is not None and len(targets) > 1:
                futures = [
                    obs.pool_submit(
                        self._pool,
                        _traced_shard_topk,
                        self.backends[s],
                        s,
                        weights,
                        ks,
                    )
                    for s, ks in targets
                ]
                replies = [f.result() for f in futures]
            else:
                replies = [
                    _traced_shard_topk(self.backends[s], s, weights, ks)
                    for s, ks in targets
                ]
            self.fanouts += 1
            with obs.span("cluster.merge", shards=len(replies)):
                answers = [
                    self._lift(s, reply)
                    for (s, _), reply in zip(targets, replies)
                ]
                return merge_shard_answers(answers, weights, k)

    def _fan_out_batch(
        self, weights_list: list[np.ndarray], ks: list[int]
    ) -> list[tuple[int, list[ShardReply]]]:
        """Batched fan-out: one backend ``topk_batch`` per shard over the
        whole pending request list. Returns ``(shard, replies)`` pairs,
        replies aligned with the request list."""
        with obs.span("cluster.fanout", n=len(weights_list)), self._serve_lock:
            targets = [
                (
                    s,
                    [
                        (w, min(k, self._shard_live[s]))
                        for w, k in zip(weights_list, ks)
                    ],
                )
                for s, _ in self._fan_targets(max(ks))
            ]
            if self._pool is not None and len(targets) > 1:
                futures = [
                    obs.pool_submit(
                        self._pool,
                        _traced_shard_topk_batch,
                        self.backends[s],
                        s,
                        shard_reqs,
                    )
                    for s, shard_reqs in targets
                ]
                reply_lists = [f.result() for f in futures]
            else:
                reply_lists = [
                    _traced_shard_topk_batch(self.backends[s], s, shard_reqs)
                    for s, shard_reqs in targets
                ]
            self.fanouts += len(weights_list)
            return [
                (s, replies) for (s, _), replies in zip(targets, reply_lists)
            ]

    def _lift(self, shard: int, reply: ShardReply) -> ShardAnswer:
        """Lift a local-rid shard reply into global-rid terms for the
        merge, accounting the fan-out traffic."""
        self._shard_requests[shard] += 1
        self._shard_latency_ms[shard] += reply.latency_ms
        self._shard_cache_entries[shard] = reply.cache_entries
        l2g = self._local_to_global[shard]
        return ShardAnswer(
            shard=shard,
            ids=tuple(l2g[lid] for lid in reply.ids),
            scores=reply.scores,
            tie_sums=reply.tie_sums,
            points_g=reply.points_g,
            region=reply.region,
            source=reply.source,
            pages_read=reply.pages_read,
            latency_ms=reply.latency_ms,
        )

    def _cache_merged(self, merged: MergedAnswer) -> None:
        # subsume=False: merged regions are under-approximations, so two
        # entries for the same ordered result can cover different,
        # non-nested areas — GIRCache's subsumption rules (which assume
        # maximal regions) would evict or skip coverage we want to keep.
        if self.cache is not None:
            self.cache.insert(merged.gir, kth_g=merged.kth_g, subsume=False)

    # -- updates --------------------------------------------------------------

    def insert(self, point: np.ndarray) -> UpdateResponse:
        """Insert a record: route to the owning shard only, then apply the
        selective (or flush) invalidation to that shard's cache *and* to
        the cluster-level cache under the global rids."""
        with obs.span("cluster.insert"), self._serve_lock:
            self._ensure_serving()
            t0 = time.perf_counter()
            point = validate_point(point, self.d)
            gid = self.table.insert(point)
            # Work from the *stored* (unit-cube-clipped) row from here on,
            # so the cluster tier's g-image — and hence its exact-tie
            # prescreen classification — is byte-identical to what the
            # owning shard computes from its own stored copy.
            stored = self.table.point(gid)
            point_g = self._append_g(stored)
            shard = self.partitioner.route(point_g)
            try:
                sub = self.backends[shard].insert(stored)
            except Exception as exc:
                if getattr(exc, "dirty", False):
                    # The shard mutated before failing: its state no
                    # longer matches the router's maps (or possibly its
                    # own cache). Rolling back here would serve wrong
                    # answers later — fail-stop instead.
                    self._mark_broken(shard, "insert", exc)
                    raise
                # Clean failure: the shard never stored the row. Tombstone
                # the global allocation and keep the rid map aligned with
                # the table — otherwise every later insert's routing entry
                # would land one rid off.
                self.table.delete(gid)
                self._rid_map.append((-1, -1))
                raise
            local = sub.rid
            assert local == len(self._local_to_global[shard])
            self._local_to_global[shard].append(gid)
            self._rid_map.append((shard, local))
            self._shard_live[shard] += 1
            self._shard_cache_entries[shard] = sub.cache_entries
            evicted, screened, lps = self._cluster_invalidate_insert(
                point_g, gid
            )
            return self._finish_update(
                "insert",
                gid,
                t0,
                evicted=sub.evicted + evicted,
                screened=sub.screened + screened,
                lps=sub.lps + lps,
            )

    def delete(self, rid: int) -> UpdateResponse:
        """Delete a live record by global rid: routed to its owning shard;
        cluster-cache entries are evicted only if they served the rid."""
        with obs.span("cluster.delete"), self._serve_lock:
            self._ensure_serving()
            t0 = time.perf_counter()
            # Validate first, mutate the global table only after the owning
            # shard applied the delete — a clean backend failure must not
            # strand a live shard record that the router counts as dead (a
            # *dirty* failure, where the shard tombstoned the row before
            # raising, fail-stops the cluster instead: see _mark_broken).
            if not self.table.is_live(rid):
                raise KeyError(f"rid {rid} is not a live record")
            shard, local = self.locate(rid)
            try:
                sub = self.backends[shard].delete(local)
            except Exception as exc:
                if getattr(exc, "dirty", False):
                    self._mark_broken(shard, "delete", exc)
                raise
            self.table.delete(rid)
            self._shard_live[shard] -= 1
            self._shard_cache_entries[shard] = sub.cache_entries
            if self.cache is None:
                evicted = 0
            elif self.invalidation == "flush":
                evicted = self.cache.flush()
            else:
                # No tset_of: merged entries retain no search runs.
                evicted = apply_delete_invalidation(self.cache, rid)
            return self._finish_update(
                "delete",
                rid,
                t0,
                evicted=sub.evicted + evicted,
                screened=sub.screened,
                lps=sub.lps,
            )

    def _append_g(self, stored: np.ndarray) -> np.ndarray:
        """Maintain the global g-space image for a freshly inserted row
        (same growth policy as the table it mirrors)."""
        self._g_buf = grow_rows(self._g_buf, self._g_n)
        g_row = self.scorer.transform_one(stored)
        self._g_buf[self._g_n] = g_row
        self._g_n += 1
        return g_row

    def _cluster_invalidate_insert(
        self, point_g: np.ndarray, gid: int
    ) -> tuple[int, int, int]:
        """Apply the insert-invalidation policy to the cluster cache;
        returns (evicted, prescreen_screened, lps_run). The same
        prescreen → tie-break → LP sequence as :meth:`GIREngine.insert`
        (:func:`~repro.core.caching.apply_insert_invalidation`), keyed by
        global rids."""
        if self.cache is None:
            return 0, 0, 0
        if self.invalidation == "flush":
            return int(self.cache.flush()), 0, 0
        rows = self.points
        evicted, screened, lps = apply_insert_invalidation(
            self.cache,
            point_g,
            new_sum=float(rows[gid].sum()),
            new_rid=gid,
            kth_point=lambda rid: rows[rid],
            kth_g=self._g_of,
        )
        return int(evicted), int(screened), int(lps)

    def _g_of(self, rid: int) -> np.ndarray:
        """g-space image of a global rid (router-maintained buffer — the
        owning shard may live in another process)."""
        return self._g_buf[rid]

    def _finish_update(
        self,
        kind: str,
        rid: int,
        t0: float,
        evicted: int,
        screened: int,
        lps: int,
    ) -> UpdateResponse:
        self.updates_applied += 1
        self.update_evictions += evicted
        entries = sum(self._shard_cache_entries)
        if self.cache is not None:
            entries += len(self.cache)
        return UpdateResponse(
            kind=kind,
            rid=rid,
            latency_ms=(time.perf_counter() - t0) * 1e3,
            evicted=evicted,
            cache_entries=entries,
            policy=self.invalidation,
            prescreen_screened=screened,
            prescreen_lps=lps,
        )

    # -- workload runner -------------------------------------------------------

    #: shard_stats() keys that are monotone counters (reported as per-run
    #: deltas by :meth:`run`); the rest are end-of-run state.
    _SHARD_COUNTER_KEYS = (
        "requests",
        "latency_ms_total",
        "page_reads",
        "cache_full_hits",
        "cache_partial_hits",
        "cache_misses",
        "updates_applied",
        "update_evictions",
    )
    _CLUSTER_COUNTER_KEYS = (
        "requests_served",
        "fanouts",
        "updates_applied",
        "update_evictions",
        "cluster_full_hits",
        "cluster_misses",
    )

    def run(
        self, workload: "Workload | list[Any]", batch: bool = False
    ) -> WorkloadReport:
        """Serve a whole workload (reads and updates) through the cluster.

        Identical in shape to :meth:`GIREngine.run`; the returned report
        additionally carries the per-shard breakdown
        (:attr:`WorkloadReport.shard_stats`) and the cluster-tier counters
        (:attr:`WorkloadReport.cluster_stats`). Counter fields in both are
        *per-run deltas* (snapshotted against the engine's lifetime meters
        at entry), so per-shard page reads sum to the run's
        ``pages_read_total`` even when the same cluster serves several
        workloads; state fields (cache entries, live records) are the
        end-of-run snapshot. With ``batch=True``, maximal runs of
        consecutive reads go through :meth:`topk_batch` (one cluster-cache
        membership pass, one batched per-shard call).
        """
        shard_base = self.shard_stats()
        cluster_base = self.cluster_stats()
        ops = list(workload)
        kind = workload.kind if isinstance(workload, Workload) else "custom"
        responses: list[EngineResponse] = []
        updates: list[UpdateResponse] = []
        update_ms = 0.0
        t0 = time.perf_counter()
        for op in op_batches(ops) if batch else ops:
            if isinstance(op, list):
                responses.extend(self.topk_batch(op))
            elif isinstance(op, Request):
                responses.append(self.topk(op.weights, op.k))
            elif isinstance(op, InsertOp):
                tu = time.perf_counter()
                updates.append(self.insert(op.point))
                update_ms += (time.perf_counter() - tu) * 1e3
            elif isinstance(op, DeleteOp):
                tu = time.perf_counter()
                updates.append(self.delete(op.rid))
                update_ms += (time.perf_counter() - tu) * 1e3
            else:
                raise TypeError(f"unknown workload operation {op!r}")
        wall_ms = (time.perf_counter() - t0) * 1e3

        def deltas(
            now: dict[str, Any], before: dict[str, Any], keys: tuple[str, ...]
        ) -> dict[str, Any]:
            return {
                **now,
                **{key: now[key] - before[key] for key in keys},
            }

        return WorkloadReport(
            responses=responses,
            wall_ms=wall_ms,
            workload_kind=kind,
            updates=updates,
            update_wall_ms=update_ms,
            shard_stats=[
                deltas(now, before, self._SHARD_COUNTER_KEYS)
                for now, before in zip(self.shard_stats(), shard_base)
            ],
            cluster_stats=deltas(
                self.cluster_stats(), cluster_base, self._CLUSTER_COUNTER_KEYS
            ),
        )

    # -- introspection --------------------------------------------------------

    def drain_worker_spans(self) -> dict[str, int]:
        """Pull every backend's buffered spans into the router-local trace
        collector (:meth:`~repro.cluster.backends.ShardBackend.drain_spans`
        → :func:`obs.absorb`), so cross-process worker spans stitch into
        the router's timeline. Returns aggregate drain accounting. No-op
        (all zeros) for in-process backends, whose spans already land in
        the router's collector, and when tracing is disabled."""
        totals = {"spans": 0, "started": 0, "finished": 0, "dropped": 0}
        if not obs.tracing_enabled():
            return totals
        with self._serve_lock:
            for backend in self.backends:
                payload = backend.drain_spans()
                spans = payload.get("spans", [])
                obs.absorb(spans)
                totals["spans"] += len(spans)
                for key in ("started", "finished", "dropped"):
                    totals[key] += int(payload.get(key, 0))
        return totals

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard breakdown: fan-out traffic, page reads, cache state.

        Router-side counters (requests fanned out, accumulated latency)
        merged with each backend's own stat snapshot
        (:func:`~repro.cluster.backends.engine_shard_stats`) — one stats
        round trip per shard for process-backed clusters.
        """
        return [
            {
                "shard": s,
                "requests": self._shard_requests[s],
                "latency_ms_total": self._shard_latency_ms[s],
                **backend.stats(),
            }
            for s, backend in enumerate(self.backends)
        ]

    @property
    def fanout_mode(self) -> str:
        """The fan-out mode label: ``"sequential"`` (no pool),
        ``"thread"`` (pool over in-process shards) or the backend name
        (``"process"``: pool threads just wait on worker pipes)."""
        if not self.parallel:
            return "sequential"
        return "thread" if self.backend_name == "inproc" else self.backend_name

    def cluster_stats(self) -> dict[str, Any]:
        """Cluster-tier counters (cache, fan-outs, backend, mode)."""
        stats: dict[str, Any] = {
            "shards": self.n_shards,
            "backend": self.backend_name,
            "mode": self.fanout_mode,
            "partitioner": self.partitioner.name,
            "requests_served": self.requests_served,
            "fanouts": self.fanouts,
            "updates_applied": self.updates_applied,
            "update_evictions": self.update_evictions,
            "live_records": self.n_live,
            "cluster_cache_enabled": self.cache is not None,
        }
        # `if self.cache` would test emptiness (GIRCache defines __len__),
        # zeroing the counters whenever the cache happens to be empty.
        if self.cache is not None:
            stats["cluster_full_hits"] = self.cache.full_hits
            stats["cluster_misses"] = self.cache.misses
            stats["cluster_entries"] = len(self.cache)
        else:
            stats["cluster_full_hits"] = 0
            stats["cluster_misses"] = 0
            stats["cluster_entries"] = 0
        return stats

    def stats(self) -> dict[str, Any]:
        """Cluster counters plus the per-shard breakdown."""
        return {**self.cluster_stats(), "shard_stats": self.shard_stats()}
