"""The sharded serving tier: partition → fan-out → merge.

* :class:`repro.cluster.ShardedGIREngine` — partitions the record table
  across N independent :class:`~repro.engine.GIREngine` shards, fans
  reads out (sequentially or on a thread pool), merges the per-shard
  answers into the byte-identical global top-k with a cross-shard merged
  stability region, caches merged regions at the cluster level, and
  routes writes to the single owning shard;
* :mod:`repro.cluster.partition` — round-robin and kd-split-on-g-space
  partitioners (pluggable via the ``PARTITIONERS`` registry);
* :mod:`repro.cluster.merge` — the pool-and-rank merge plus the merged
  region assembly (per-shard region intersection + merge-order
  half-spaces).
"""

from repro.cluster.merge import MergedAnswer, ShardAnswer, merge_shard_answers
from repro.cluster.partition import (
    KDSplitPartitioner,
    PARTITIONERS,
    Partitioner,
    RoundRobinPartitioner,
    make_partitioner,
)
from repro.cluster.sharded import ShardedGIREngine

__all__ = [
    "ShardedGIREngine",
    "Partitioner",
    "RoundRobinPartitioner",
    "KDSplitPartitioner",
    "PARTITIONERS",
    "make_partitioner",
    "ShardAnswer",
    "MergedAnswer",
    "merge_shard_answers",
]
