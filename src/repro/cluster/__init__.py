"""The sharded serving tier: partition → fan-out → merge, over pluggable
shard-execution backends.

* :class:`repro.cluster.ShardedGIREngine` — partitions the record table
  across N independent :class:`~repro.engine.GIREngine` shards, fans
  reads out (sequentially or on a thread pool), merges the per-shard
  answers into the byte-identical global top-k with a cross-shard merged
  stability region, caches merged regions at the cluster level, and
  routes writes to the single owning shard;
* :mod:`repro.cluster.backends` — *where* each shard executes, behind
  the narrow ``ShardBackend`` contract: in-process (``"inproc"``,
  default) or one long-lived worker process per shard (``"process"``),
  byte-identical either way (pluggable via the ``BACKENDS`` registry);
* :mod:`repro.cluster.wire` — the versioned frame format requests,
  shard replies (ids/scores/tie-sums/g-images/regions) and stat deltas
  cross process boundaries in;
* :mod:`repro.cluster.partition` — round-robin and kd-split-on-g-space
  partitioners (pluggable via the ``PARTITIONERS`` registry);
* :mod:`repro.cluster.merge` — the pool-and-rank merge plus the merged
  region assembly (per-shard region intersection + merge-order
  half-spaces).
"""

from repro.cluster.backends import (
    BACKENDS,
    InProcBackend,
    ProcessBackend,
    ShardBackend,
    ShardReply,
    ShardSpec,
    ShardUpdate,
    ShardWriteError,
    make_backend,
)
from repro.cluster.merge import MergedAnswer, ShardAnswer, merge_shard_answers
from repro.cluster.partition import (
    KDSplitPartitioner,
    PARTITIONERS,
    Partitioner,
    RoundRobinPartitioner,
    make_partitioner,
)
from repro.cluster.sharded import ShardedGIREngine

__all__ = [
    "ShardedGIREngine",
    "Partitioner",
    "RoundRobinPartitioner",
    "KDSplitPartitioner",
    "PARTITIONERS",
    "make_partitioner",
    "ShardAnswer",
    "MergedAnswer",
    "merge_shard_answers",
    "ShardBackend",
    "ShardSpec",
    "ShardReply",
    "ShardUpdate",
    "InProcBackend",
    "ProcessBackend",
    "ShardWriteError",
    "BACKENDS",
    "make_backend",
]
