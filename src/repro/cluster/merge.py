"""Cross-shard top-k merging and the merged stability region.

The fan-out serving path of :class:`~repro.cluster.ShardedGIREngine` asks
every shard for its local top-k; this module turns the per-shard answers
into (a) the global ordered top-k and (b) a region of query space in which
that exact ordered answer is provably stable.

Result merging (classical distributed top-k)
--------------------------------------------

The global top-k of a disjointly partitioned dataset is the top-k of the
pooled per-shard top-k candidates: any record *not* pooled ranks below its
own shard's ``k`` pooled candidates, so at least ``k`` pooled records beat
it and it cannot be in the global answer. Pool ranking uses the serving
stack's global tie-break ``(score, coord-sum, rid)`` descending with
*global* rids; because shards assign local rids in ascending global-rid
order, each shard's internal ranking agrees with the pool's, and the
merged sequence is byte-identical to a single engine's.

Merged stability region (the cross-shard GIR intersection)
----------------------------------------------------------

Let ``R_s`` be the region each shard's answer was served under (its local
GIR, or the cached entry's region on a shard-cache hit). Inside
``∩_s R_s`` every shard's local ordered list — and the domination of each
shard's unseen records by its last pooled candidate — is fixed. Two
families of *merge-order half-spaces* then pin down the global sequence:

* **order**: ``S(m_i, q) ≥ S(m_{i+1}, q)`` for consecutive merged results
  ``m_i`` — the pooled candidates keep their merged ranks (exact score
  ties resolve by the weight-independent ``(coord-sum, rid)`` key, which
  the merge already ordered by);
* **separation**: ``S(m_k, q) ≥ S(c_s, q)`` for each shard's *frontier*
  ``c_s`` — its highest-ranked pooled candidate left out of the global
  top-k. Selected candidates form a prefix of every shard's list (the
  pool order restricted to one shard is the shard's own order), so the
  frontier dominates all of that shard's non-selected candidates, and the
  shard's local region extends the bound to its unseen records. Shards
  whose pooled candidates were all selected need no half-space: their
  last candidate *is* some ``m_j`` with ``j ≤ k``, and the order chain
  already puts it at or above ``m_k``.

The intersection of ``∩_s R_s`` with both families is therefore a sound
under-approximation of the true global immutable region — every query
vector inside it reproduces the identical ordered global top-k. It is
generally *not* maximal (each ``R_s`` may itself be a deeper-``k`` cached
region), which is exactly the cache-serving trade-off the single engine
already makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gir import GIRResult, GIRStats
from repro.geometry.halfspace import Halfspace, order_halfspace, separation_halfspace
from repro.geometry.polytope import Polytope
from repro.query.topk import TopKResult

__all__ = ["ShardAnswer", "MergedAnswer", "merge_shard_answers"]


@dataclass(frozen=True)
class ShardAnswer:
    """One shard's contribution to a fan-out, in *global* rid terms."""

    #: Shard index within the cluster.
    shard: int
    #: Ranked global rids of the shard's local top-k (its whole live set
    #: when the shard holds fewer than ``k`` records).
    ids: tuple[int, ...]
    #: Matching scores under the request's weights, descending.
    scores: tuple[float, ...]
    #: Matching coordinate sums (the weight-independent tie-break key).
    tie_sums: tuple[float, ...]
    #: ``(len(ids), d)`` g-space images of the ranked records.
    points_g: np.ndarray
    #: The region the shard served this exact list under.
    region: Polytope
    #: Provenance of the shard response (``cache``/``completed``/``computed``).
    source: str
    #: Metered page reads the shard charged for this answer.
    pages_read: int
    #: The shard's serving latency for this answer.
    latency_ms: float


@dataclass(frozen=True)
class MergedAnswer:
    """The assembled global answer of one fan-out."""

    #: Global ordered top-k with the merged stability region as its
    #: polytope and the merge-order half-spaces as its halfspace list
    #: (``_hs_row_offset`` marks where they start among the rows).
    gir: GIRResult
    #: Cluster-level provenance: ``"cache"`` when every shard answered
    #: from its cache (no pipeline ran anywhere), ``"computed"`` when any
    #: shard ran a fresh pipeline, else ``"completed"``.
    source: str
    #: Total metered page reads across the shards.
    pages_read: int
    #: g-space image of the global k-th record (for cluster-cache
    #: insert-invalidation prescreens).
    kth_g: np.ndarray
    #: Per-answer count of candidates selected into the global top-k
    #: (aligned with the input answers).
    selected_per_shard: tuple[int, ...]


def _stack_regions(regions: list[Polytope]) -> Polytope:
    """Intersection of the shard serving regions, without duplicate
    unit-box rows.

    Every GIR polytope starts with the same ``2d`` unit-box rows
    (:func:`~repro.core.pipeline.assemble_polytope`), so a verbatim
    stacking of S shard regions would carry S identical box copies —
    dead weight on the cluster cache's stacked-matvec lookup path and on
    vertex enumeration at every cache insert. Regions after the first
    whose leading rows *are* the box (verified, not assumed) contribute
    only their remaining rows; anything else is stacked verbatim via
    :meth:`Polytope.intersection`.
    """
    first = regions[0]
    d = first.d
    box = Polytope.from_unit_box(d)
    trimmed = [first]
    for region in regions[1:]:
        if (
            region.m >= box.m
            and np.array_equal(region.A[: box.m], box.A)
            and np.array_equal(region.b[: box.m], box.b)
        ):
            trimmed.append(Polytope(region.A[box.m :], region.b[box.m :]))
        else:
            trimmed.append(region)
    return Polytope.intersection(trimmed)


def _merged_source(answers: list[ShardAnswer]) -> str:
    sources = {a.source for a in answers}
    if sources == {"cache"}:
        return "cache"
    if "computed" in sources:
        return "computed"
    return "completed"


def merge_shard_answers(
    answers: list[ShardAnswer], weights: np.ndarray, k: int
) -> MergedAnswer:
    """Assemble the global top-k and its merged stability region.

    ``answers`` must cover every non-empty shard and pool at least ``k``
    candidates in total (the cluster validates its live count first).
    """
    if not answers:
        raise ValueError("cannot merge an empty answer set")
    weights = np.asarray(weights, dtype=np.float64)

    # Pool every candidate under the global ranking key. (score, sum, rid)
    # is unique (rids are), so the trailing (answer index, position) pair
    # never participates in comparisons — it is pure bookkeeping.
    pool: list[tuple[float, float, int, int, int]] = []
    for ai, a in enumerate(answers):
        for pos, rid in enumerate(a.ids):
            pool.append((a.scores[pos], a.tie_sums[pos], rid, ai, pos))
    if len(pool) < k:
        raise ValueError(
            f"pooled only {len(pool)} candidates for a top-{k} request"
        )
    pool.sort(reverse=True)
    selected = pool[:k]

    # Selected candidates form a prefix of each shard's list: the pool
    # order restricted to one shard is the shard's own ranking.
    selected_counts = [0] * len(answers)
    for _, _, _, ai, pos in selected:
        selected_counts[ai] += 1
    for _, _, _, ai, pos in selected:
        assert pos < selected_counts[ai], "selected candidates must be a prefix"

    # Merge-order half-spaces (normals in g-space; `normal · q >= 0`).
    halfspaces: list[Halfspace] = []
    g_of = lambda entry: answers[entry[3]].points_g[entry[4]]  # noqa: E731
    for above, below in zip(selected, selected[1:]):
        halfspaces.append(
            order_halfspace(g_of(above), g_of(below), above[2], below[2])
        )
    m_k = selected[-1]
    for ai, a in enumerate(answers):
        cut = selected_counts[ai]
        if cut < len(a.ids):  # the shard's frontier candidate
            halfspaces.append(
                separation_halfspace(
                    g_of(m_k), a.points_g[cut], m_k[2], a.ids[cut]
                )
            )
    normals = np.asarray([hs.normal for hs in halfspaces], dtype=np.float64)
    if len(normals):
        # Zero normals (byte-identical g-images) constrain nothing: the
        # pair ties at every query vector and the weight-independent
        # tie-break fixes their order.
        keep = np.linalg.norm(normals, axis=1) > 0.0
        halfspaces = [hs for hs, flag in zip(halfspaces, keep) if flag]
        normals = normals[keep]

    base = _stack_regions([a.region for a in answers])
    polytope = (
        base.with_constraints(normals) if len(normals) else base
    )

    topk = TopKResult(
        ids=tuple(entry[2] for entry in selected),
        scores=tuple(entry[0] for entry in selected),
        weights=weights,
    )
    gir = GIRResult(
        weights=weights,
        topk=topk,
        halfspaces=halfspaces,
        polytope=polytope,
        method="cluster",
        stats=GIRStats(),
        _hs_row_offset=base.m,
    )
    return MergedAnswer(
        gir=gir,
        source=_merged_source(answers),
        pages_read=sum(a.pages_read for a in answers),
        kth_g=np.array(g_of(m_k), dtype=np.float64, copy=True),
        selected_per_shard=tuple(selected_counts),
    )
