"""LIR — local immutable regions of Mouratidis & Pang [24].

A LIR is the validity interval of one isolated query weight while every
other weight is held constant. The paper observes (Section 7.3) that the
LIRs are exactly the GIR's interactive projections through the original
query vector — a relationship the test-suite verifies. Here the intervals
are computed *directly* by scanning the conditions, independent of any GIR
machinery, so the two implementations cross-check each other.

For each condition ``(p − p') · q' ≥ 0`` and axis ``i``, fixing the other
weights turns the condition into a one-sided bound on ``w_i``: with
``a = g(p) − g(p')`` and ``r = a · q − a_i q_i`` the condition reads
``a_i w_i ≥ −r``.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.query.linear_scan import scan_topk
from repro.scoring import LinearScoring, ScoringFunction
from repro.core.tolerances import COEFFICIENT_EPS, MEMBERSHIP_TOL

__all__ = ["lir_intervals_scan"]


def lir_intervals_scan(
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    scorer: ScoringFunction | None = None,
) -> list[tuple[float, float]]:
    """Per-axis immutable intervals ``[lo_i, hi_i]`` around ``weights``.

    Within ``[lo_i, hi_i]`` (all other weights fixed) the ordered top-k
    result is preserved; the interval is clipped to the query space
    ``[0, 1]``.
    """
    points = data.points if isinstance(data, Dataset) else np.asarray(data, float)
    q = np.asarray(weights, dtype=np.float64)
    n, d = points.shape
    scorer = scorer or LinearScoring(d)
    points_g = scorer.transform(points)

    result = scan_topk(points, q, k, scorer=scorer)
    ids = list(result.ids)

    # Collect all condition normals: k-1 ordering rows + (n-k) separation rows.
    normals = []
    for i in range(len(ids) - 1):
        normals.append(points_g[ids[i]] - points_g[ids[i + 1]])
    mask = np.ones(n, dtype=bool)
    mask[ids] = False
    pk_g = points_g[ids[-1]]
    normals.append(pk_g[None, :] - points_g[mask])
    A = np.vstack([np.atleast_2d(row) for row in normals])

    intervals: list[tuple[float, float]] = []
    dots = A @ q
    for axis in range(d):
        a_i = A[:, axis]
        rest = dots - a_i * q[axis]  # a·q with the axis term removed
        lo, hi = 0.0, 1.0
        # a_i * w_i >= -rest
        pos = a_i > COEFFICIENT_EPS
        neg = a_i < -COEFFICIENT_EPS
        zero = ~(pos | neg)
        if pos.any():
            lo = max(lo, float(np.max(-rest[pos] / a_i[pos])))
        if neg.any():
            hi = min(hi, float(np.min(-rest[neg] / a_i[neg])))
        if zero.any() and (rest[zero] < -MEMBERSHIP_TOL).any():
            intervals.append((float("nan"), float("nan")))
            continue
        intervals.append((lo, hi))
    return intervals
