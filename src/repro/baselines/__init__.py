"""Baselines and comparators.

* :mod:`repro.baselines.exhaustive` — the straightforward full-scan
  half-space intersection of Section 3.3: the correctness oracle every
  Phase-2 method is tested against.
* :mod:`repro.baselines.stb` — the STB sensitivity ball of [30]: the
  largest ball around the query preserving the result (a subset of the
  GIR, computed by a full scan).
* :mod:`repro.baselines.lir` — the local immutable regions of [24]:
  per-dimension validity intervals, computed by direct scan; the paper
  notes they coincide with the GIR's interactive projection (Section 7.3).
"""

from repro.baselines.exhaustive import exhaustive_gir
from repro.baselines.lir import lir_intervals_scan
from repro.baselines.stb import stb_radius

__all__ = ["exhaustive_gir", "stb_radius", "lir_intervals_scan"]
