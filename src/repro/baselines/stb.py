"""STB — the sensitivity ball of Soliman et al. [30].

STB is the largest ball centred at the query vector within which the top-k
result is unchanged. Because the GIR is the *maximal* result-preserving
locus, the STB ball is exactly the largest ball around ``q`` inscribed in
the GIR: its radius is the minimum distance from ``q`` to any of the
``n − 1`` bounding hyperplanes of Definition 1. As in [30], the radius is
computed by a full scan of the dataset — the inefficiency the paper
contrasts its methods against.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.query.linear_scan import scan_topk
from repro.scoring import LinearScoring, ScoringFunction

__all__ = ["stb_radius"]


def stb_radius(
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    scorer: ScoringFunction | None = None,
) -> float:
    """Radius of the STB ball around ``weights`` (0 when on a boundary).

    Distance from ``q`` to hyperplane ``a · x = 0`` is ``(a · q)/‖a‖``;
    the radius is the minimum over all ordering and separation conditions.
    The query-space walls ``[0,1]^d`` also clip the ball, mirroring the
    GIR's clipping.
    """
    points = data.points if isinstance(data, Dataset) else np.asarray(data, float)
    q = np.asarray(weights, dtype=np.float64)
    n, d = points.shape
    scorer = scorer or LinearScoring(d)
    points_g = scorer.transform(points)

    result = scan_topk(points, q, k, scorer=scorer)
    ids = list(result.ids)
    radius = np.inf

    # Ordering conditions between consecutive result records.
    for i in range(len(ids) - 1):
        a = points_g[ids[i]] - points_g[ids[i + 1]]
        norm = np.linalg.norm(a)
        if norm > 0:
            radius = min(radius, float(a @ q) / norm)

    # Separation conditions: p_k versus every non-result record (full scan).
    pk_g = points_g[ids[-1]]
    mask = np.ones(n, dtype=bool)
    mask[ids] = False
    normals = pk_g[None, :] - points_g[mask]
    norms = np.linalg.norm(normals, axis=1)
    ok = norms > 0
    if ok.any():
        radius = min(radius, float(np.min((normals[ok] @ q) / norms[ok])))

    # Query-space walls.
    radius = min(radius, float(q.min()), float((1.0 - q).min()))
    return max(float(radius), 0.0)
