"""The straightforward GIR computation of Section 3.3.

Derives all ``n − 1`` half-spaces of Definition 1 by scanning the entire
dataset and intersects them directly. With complexity ``Ω(n^{d/2})`` for the
intersection (and O(n) data access), the paper dismisses it as "hugely
impractical" for sizable databases — here it serves as the exact-correctness
oracle for SP/CP/FP on test-sized inputs, and as the measurable baseline the
pruning methods are compared against.
"""

from __future__ import annotations

import numpy as np

from repro.core.phase1 import phase1_halfspaces
from repro.data.dataset import Dataset
from repro.geometry.halfspace import Halfspace, separation_halfspace
from repro.geometry.polytope import Polytope
from repro.query.linear_scan import scan_topk
from repro.query.topk import TopKResult
from repro.scoring import LinearScoring, ScoringFunction
from repro.core.tolerances import MEMBERSHIP_TOL

__all__ = ["ExhaustiveGIR", "exhaustive_gir"]


class ExhaustiveGIR:
    """Result container mirroring :class:`repro.core.gir.GIRResult`."""

    def __init__(
        self,
        weights: np.ndarray,
        topk: TopKResult,
        halfspaces: list[Halfspace],
        polytope: Polytope,
    ) -> None:
        self.weights = weights
        self.topk = topk
        self.halfspaces = halfspaces
        self.polytope = polytope
        self.method = "exhaustive"

    def contains(self, q: np.ndarray, tol: float = MEMBERSHIP_TOL) -> bool:
        return self.polytope.contains(q, tol=tol)

    def volume(self) -> float:
        return self.polytope.volume()


def exhaustive_gir(
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    scorer: ScoringFunction | None = None,
    order_sensitive: bool = True,
) -> ExhaustiveGIR:
    """GIR (or GIR* with ``order_sensitive=False``) by full scan.

    All ``k − 1`` ordering conditions plus, for every non-result record,
    one separation condition per defending result record (only ``p_k`` in
    the order-sensitive case; all of ``R`` for GIR*).
    """
    points = data.points if isinstance(data, Dataset) else np.asarray(data, float)
    weights = np.asarray(weights, dtype=np.float64)
    n, d = points.shape
    scorer = scorer or LinearScoring(d)
    points_g = scorer.transform(points)

    result = scan_topk(points, weights, k, scorer=scorer)
    result_set = set(result.ids)

    halfspaces: list[Halfspace] = []
    if order_sensitive:
        halfspaces.extend(phase1_halfspaces(result, points_g))
        defenders = [result.kth_id]
    else:
        defenders = list(result.ids)

    for defender in defenders:
        def_g = points_g[defender]
        for rid in range(n):
            if rid in result_set:
                continue
            halfspaces.append(
                separation_halfspace(def_g, points_g[rid], defender, rid)
            )

    box = Polytope.from_unit_box(d)
    polytope = box.with_constraints(
        np.asarray([hs.normal for hs in halfspaces])
        if halfspaces
        else np.empty((0, d))
    )
    return ExhaustiveGIR(weights, result, halfspaces, polytope)
