"""BBS — Branch-and-Bound Skyline (Papadias et al., TODS 2005), adapted.

SP and CP need the skyline ``SL`` of the non-result records ``D \\ R``
(Section 5.1). The paper adapts BBS in two ways, both reproduced here:

1. the search resumes from the state BRS left behind — ``SL`` is initialised
   with the in-memory skyline of the encountered records ``T`` and the
   retained search heap is then drained, so records already fetched are
   never read again;
2. entries are popped in decreasing *maxscore* order instead of distance to
   the top corner (correct for any monotone preference order), and a record
   is inserted into ``SL`` only if undominated, evicting members it
   dominates.

Node pruning is the classic BBS rule: an entry whose MBB top corner is
dominated by a current skyline member cannot contain skyline records.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun, HeapEntry, make_heap_entry
from repro.scoring import LinearScoring, ScoringFunction

__all__ = ["skyline_of_points", "bbs_skyline"]


def skyline_of_points(points: np.ndarray, ids: list[int]) -> list[int]:
    """In-memory skyline of the given records (ids into ``points``).

    Sort-filter-scan: records are visited in decreasing coordinate-sum order
    (a monotone order, so no later record can dominate an earlier skyline
    member) and kept if undominated by the current skyline.
    """
    if not ids:
        return []
    pts = points[np.asarray(ids, dtype=np.intp)]
    order = np.argsort(-pts.sum(axis=1), kind="stable")
    sky_ids: list[int] = []
    sky_pts: list[np.ndarray] = []
    for pos in order:
        p = pts[pos]
        if sky_pts:
            sl = np.asarray(sky_pts)
            dominated = ((sl >= p).all(axis=1) & (sl > p).any(axis=1)).any()
            if dominated:
                continue
        sky_ids.append(ids[int(pos)])
        sky_pts.append(p)
    return sky_ids


class _SkylineSet:
    """Growing skyline with vectorised, tiered dominance checks.

    Two performance devices keep BBS usable on the paper's wide
    anti-correlated skylines (tens of thousands of members):

    * storage grows by capacity doubling instead of re-allocating on every
      insert (the naive ``vstack`` makes insertion quadratic);
    * an *elite* cache of the members that most recently dominated
      something is checked first — most incoming records die there in
      O(elite) instead of O(|SL|).
    """

    _ELITE = 192

    def __init__(self, d: int) -> None:
        self.d = d
        self._buf = np.empty((256, d))
        self._size = 0
        self._ids: list[int] = []
        self._elite = np.empty((self._ELITE, d))
        self._elite_size = 0
        self._elite_next = 0

    def __len__(self) -> int:
        return self._size

    @property
    def ids(self) -> list[int]:
        return list(self._ids)

    @property
    def points(self) -> np.ndarray:
        return self._buf[: self._size]

    def _remember_dominator(self, m: np.ndarray) -> None:
        """Add a member that just dominated something to the elite ring."""
        self._elite[self._elite_next] = m
        self._elite_next = (self._elite_next + 1) % self._ELITE
        self._elite_size = min(self._elite_size + 1, self._ELITE)

    def dominates_point(self, p: np.ndarray) -> bool:
        """True if some member dominates ``p``."""
        if self._elite_size:
            el = self._elite[: self._elite_size]
            hit = (el >= p).all(axis=1) & (el > p).any(axis=1)
            if hit.any():
                return True
        if not self._size:
            return False
        sl = self._buf[: self._size]
        mask = (sl >= p).all(axis=1) & (sl > p).any(axis=1)
        if mask.any():
            self._remember_dominator(sl[int(np.argmax(mask))].copy())
            return True
        return False

    def insert(self, rid: int, p: np.ndarray) -> bool:
        """Insert ``p`` if undominated; evict members it dominates."""
        if self.dominates_point(p):
            return False
        if self._size:
            sl = self._buf[: self._size]
            doomed = (sl <= p).all(axis=1) & (sl < p).any(axis=1)
            if doomed.any():
                keep = np.flatnonzero(~doomed)
                self._buf[: keep.size] = sl[keep]
                self._ids = [self._ids[i] for i in keep]
                self._size = keep.size
        if self._size == self._buf.shape[0]:
            grown = np.empty((2 * self._buf.shape[0], self.d))
            grown[: self._size] = self._buf[: self._size]
            self._buf = grown
        self._buf[self._size] = p
        self._size += 1
        self._ids.append(rid)
        return True


def bbs_skyline(
    tree: RStarTree,
    points: np.ndarray,
    run: BRSRun | None = None,
    weights: np.ndarray | None = None,
    scorer: ScoringFunction | None = None,
    exclude: set[int] | None = None,
    metered: bool = True,
) -> list[int]:
    """Skyline of ``D \\ exclude`` via BBS, optionally resuming a BRS run.

    Parameters
    ----------
    run:
        A :class:`BRSRun` to resume from. When given, the skyline starts
        from the encountered set ``T`` and drains a *copy* of the retained
        heap (the caller may reuse the original run for other phases), and
        ``weights`` defaults to the run's query vector. When omitted, a
        fresh search over the whole tree is performed.
    exclude:
        Record ids to ignore (the top-k result ``R``). Defaults to the
        run's result records.
    metered:
        Whether node accesses are charged to the tree's I/O meter.

    Returns the skyline record ids (insertion order).
    """
    scorer = scorer or LinearScoring(tree.d)
    read = tree.fetch if metered else tree._node

    if run is not None:
        if weights is None:
            weights = run.result.weights
        if exclude is None:
            exclude = set(run.result.ids)
        heap = list(run.heap)
        heapq.heapify(heap)
        sky = _SkylineSet(tree.d)
        for rid in skyline_of_points(points, run.encountered_ids):
            sky.insert(rid, points[rid])
    else:
        if weights is None:
            raise ValueError("weights are required when no BRS run is given")
        weights = np.asarray(weights, dtype=np.float64)
        exclude = exclude or set()
        sky = _SkylineSet(tree.d)
        heap = []
        root = read(tree.root_id)
        if root.is_leaf:
            for e in root.entries:
                if e.child_id not in exclude:
                    sky.insert(e.child_id, points[e.child_id])
        else:
            for e in root.entries:
                heapq.heappush(
                    heap,
                    make_heap_entry(e.mbb, e.child_id, root.level - 1, weights, scorer),
                )

    while heap:
        entry: HeapEntry = heapq.heappop(heap)
        # Prune: a node whose top corner is dominated cannot hold skyline
        # records (dominance of the top corner dominates the whole box).
        if sky.dominates_point(entry.mbb.upper_corner()):
            continue
        node = read(entry.node_id)
        if node.is_leaf:
            for e in node.entries:
                if e.child_id in exclude:
                    continue
                sky.insert(e.child_id, points[e.child_id])
        else:
            for e in node.entries:
                if sky.dominates_point(e.mbb.upper_corner()):
                    continue
                heapq.heappush(
                    heap,
                    make_heap_entry(e.mbb, e.child_id, node.level - 1, weights, scorer),
                )
    return sky.ids
