"""Query processing substrate: BRS top-k and BBS skyline over the R*-tree.

* :mod:`repro.query.brs` — Branch-and-bound Ranked Search [Tao et al.], the
  I/O-optimal top-k algorithm the paper uses. Retains its search heap and
  the set ``T`` of encountered non-result records for the GIR phases.
* :mod:`repro.query.bbs` — Branch-and-Bound Skyline [Papadias et al.],
  modified per the paper to pop entries in decreasing maxscore order and to
  resume from BRS leftovers.
* :mod:`repro.query.linear_scan` — brute-force oracles used in tests.
"""

from repro.query.bbs import bbs_skyline, skyline_of_points
from repro.query.brs import BRSRun, StaleRunError, brs_topk, resume_brs_topk
from repro.query.linear_scan import scan_skyline, scan_topk
from repro.query.topk import TopKResult

__all__ = [
    "TopKResult",
    "BRSRun",
    "StaleRunError",
    "brs_topk",
    "resume_brs_topk",
    "bbs_skyline",
    "skyline_of_points",
    "scan_topk",
    "scan_skyline",
]
