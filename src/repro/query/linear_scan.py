"""Brute-force query oracles used in tests and small baselines.

These scan the full point array with numpy and define the *reference
semantics* the index-based algorithms must match, including the
deterministic tie-break: records are ranked by
``(score, coordinate sum, record id)`` descending, the same key BRS uses.
"""

from __future__ import annotations

import numpy as np

from repro.query.topk import TopKResult
from repro.scoring import LinearScoring, ScoringFunction

__all__ = ["scan_topk", "scan_skyline"]


def scan_topk(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    scorer: ScoringFunction | None = None,
    live: np.ndarray | None = None,
) -> TopKResult:
    """Exact top-k by full scan.

    ``live`` (optional boolean mask over rows) restricts the scan to live
    records while keeping *global* rids in the answer — the ground-truth
    oracle for the dynamic engine's tombstoned
    :class:`~repro.data.dataset.PointTable`.
    """
    points = np.asarray(points, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    n, d = points.shape
    if live is not None:
        live = np.asarray(live, dtype=bool)
        if live.shape != (n,):
            raise ValueError(f"live mask must have shape ({n},)")
        n_live = int(live.sum())
    else:
        n_live = n
    if not 0 < k <= n_live:
        raise ValueError(f"k must be in [1, {n_live}]")
    scorer = scorer or LinearScoring(d)
    scores = scorer.score(points, weights)
    sums = points.sum(axis=1)
    if live is not None:
        scores = np.where(live, scores, -np.inf)
    rids = np.arange(n)
    # Ranked by (score, coord-sum, rid) descending — identical to BRS.
    order = np.lexsort((-rids, -sums, -scores))[:k]
    return TopKResult(
        ids=tuple(int(i) for i in order),
        scores=tuple(float(scores[i]) for i in order),
        weights=weights,
    )


def scan_skyline(points: np.ndarray, exclude: set[int] | None = None) -> set[int]:
    """Exact skyline by pairwise dominance (vectorised per record)."""
    points = np.asarray(points, dtype=np.float64)
    exclude = exclude or set()
    candidates = [i for i in range(points.shape[0]) if i not in exclude]
    if not candidates:
        return set()
    pts = points[candidates]
    result: set[int] = set()
    for local, rid in enumerate(candidates):
        p = pts[local]
        dominated = ((pts >= p).all(axis=1) & (pts > p).any(axis=1)).any()
        if not dominated:
            result.add(rid)
    return result
