"""Top-k result containers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.core.tolerances import EXACT_TOL

__all__ = ["TopKResult"]


@dataclass(frozen=True)
class TopKResult:
    """An ordered top-k answer.

    Attributes
    ----------
    ids:
        Record ids sorted by decreasing score (``ids[0]`` is the top-1).
    scores:
        Matching scores, decreasing.
    weights:
        The query vector the result was computed for.
    """

    ids: tuple[int, ...]
    scores: tuple[float, ...]
    weights: np.ndarray

    def __post_init__(self) -> None:
        if len(self.ids) != len(self.scores):
            raise ValueError("ids and scores must have equal length")
        if any(
            self.scores[i] < self.scores[i + 1] - EXACT_TOL
            for i in range(len(self.scores) - 1)
        ):
            raise ValueError("scores must be non-increasing")

    @property
    def k(self) -> int:
        return len(self.ids)

    @property
    def kth_id(self) -> int:
        """Id of the k-th (lowest ranked) result record — the paper's p_k."""
        return self.ids[-1]

    @property
    def kth_score(self) -> float:
        return self.scores[-1]

    def __contains__(self, rid: int) -> bool:
        return rid in self.ids

    def same_composition(self, other: "TopKResult") -> bool:
        """True if the two results contain the same records (any order)."""
        return set(self.ids) == set(other.ids)

    def same_ordered(self, other: "TopKResult") -> bool:
        """True if the two results agree in composition *and* score order."""
        return self.ids == other.ids
