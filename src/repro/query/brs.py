"""BRS — Branch-and-bound Ranked Search (Tao et al., Inf. Syst. 2007).

The I/O-optimal top-k algorithm the paper employs (Section 3.3). Entries of
visited R-tree nodes are organised in a max-heap keyed by *maxscore* — the
highest score any point under the entry can reach, which for a monotone
scoring function is the score of the entry MBB's top corner. The search
terminates when the interim k-th score is no smaller than the maxscore of
the entry at the top of the heap.

To prepare for GIR computation, :func:`brs_topk` retains

* the **search heap** exactly as BRS leaves it (unexpanded entries), and
* the set **T** of non-result records already fetched from leaves,

which Phase 2 (SP/CP via BBS continuation, FP via facet refinement) resumes
from, as Section 3.3 prescribes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.index.mbb import MBB
from repro.index.rtree import RStarTree
from repro.query.topk import TopKResult
from repro.scoring import LinearScoring, ScoringFunction

__all__ = ["HeapEntry", "BRSRun", "StaleRunError", "brs_topk", "resume_brs_topk"]


class StaleRunError(ValueError):
    """Raised when resuming a :class:`BRSRun` against a tree that has been
    structurally mutated since the run was captured.

    A retained heap references node ids and MBBs of the tree *as it was*;
    after an insert or delete those pages may have been split, merged or
    freed, so continuing the search could silently return wrong records.
    The dynamic serving engine catches staleness up front (it version-stamps
    runs against :attr:`~repro.index.rtree.RStarTree.mutations`) and falls
    back to a from-scratch search.
    """


@dataclass(order=True)
class HeapEntry:
    """Max-heap entry (stored negated in Python's min-heap).

    ``sort_key`` is ``(-maxscore, -corner_sum, seq)``: the secondary
    coordinate-sum component makes the order strictly compatible with
    dominance even when some query weights are zero, which the BBS
    continuation relies on.
    """

    sort_key: tuple[float, float, int]
    node_id: int = field(compare=False)
    level: int = field(compare=False)
    mbb: MBB = field(compare=False)

    @property
    def maxscore(self) -> float:
        return -self.sort_key[0]


_seq = itertools.count()


def make_heap_entry(
    mbb: MBB, node_id: int, level: int, weights: np.ndarray, scorer: ScoringFunction
) -> HeapEntry:
    """Build a heap entry keyed by the MBB's maxscore under ``scorer``."""
    top = mbb.upper_corner()
    maxscore = float(scorer.score(top, weights))
    return HeapEntry(
        sort_key=(-maxscore, -float(top.sum()), next(_seq)),
        node_id=node_id,
        level=level,
        mbb=mbb,
    )


@dataclass
class BRSRun:
    """Everything BRS leaves behind, for the GIR phases to resume from."""

    result: TopKResult
    heap: list[HeapEntry]
    encountered: dict[int, np.ndarray]  # the paper's set T: rid -> point
    leaf_accesses: int
    node_accesses: int
    #: Value of ``tree.mutations`` when the run was captured; ``None`` for
    #: hand-built runs (staleness then cannot be checked).
    tree_mutations: int | None = None

    @property
    def encountered_ids(self) -> list[int]:
        return list(self.encountered.keys())


def brs_topk(
    tree: RStarTree,
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    scorer: ScoringFunction | None = None,
    metered: bool = True,
) -> BRSRun:
    """Run BRS and return the top-k result plus retained search state.

    Parameters
    ----------
    tree:
        R*-tree over the dataset.
    points:
        The dataset's ``(n, d)`` point array (used to score leaf records; a
        real system would read them from the leaf pages it just fetched).
    weights:
        Query vector ``q`` with non-negative components.
    k:
        Result size; must not exceed the dataset cardinality.
    scorer:
        Scoring function; linear by default.
    metered:
        Whether node accesses are charged to the tree's I/O meter.
    """
    weights = _validate_query(tree, weights, k)
    scorer = scorer or LinearScoring(tree.d)
    read = tree.fetch if metered else tree._node

    # Scores of fetched records; maintained as (score, tie-break sum, rid).
    interim: list[tuple[float, float, int]] = []  # min-heap of current top-k
    encountered: dict[int, np.ndarray] = {}
    heap: list[HeapEntry] = []
    node_accesses = 0
    leaf_accesses = 0

    root = read(tree.root_id)
    node_accesses += 1
    leaf_accesses += int(root.is_leaf)
    for e in root.entries:
        if root.is_leaf:
            _consider_record(interim, encountered, e.child_id, points, weights, scorer, k)
        else:
            heapq.heappush(
                heap, make_heap_entry(e.mbb, e.child_id, root.level - 1, weights, scorer)
            )

    drained_nodes, drained_leaves = _drain_heap(
        read, heap, interim, encountered, points, weights, scorer, k
    )
    return _package_run(
        heap,
        interim,
        encountered,
        weights,
        node_accesses=node_accesses + drained_nodes,
        leaf_accesses=leaf_accesses + drained_leaves,
        tree_mutations=tree.mutations,
    )


def resume_brs_topk(
    tree: RStarTree,
    points: np.ndarray,
    run: BRSRun,
    weights: np.ndarray,
    k: int,
    scorer: ScoringFunction | None = None,
    metered: bool = True,
) -> BRSRun:
    """Continue a finished BRS run to a deeper ``k`` — the serving layer's
    partial-hit completion path.

    The caller holds a :class:`BRSRun` for some ``k' < k`` (e.g. attached
    to a cached GIR) and now needs the top-``k`` under a query vector
    *inside* that GIR — typically not bit-identical to the original one.
    Everything already fetched is reused: the retained heap's unexpanded
    entries are re-keyed under ``weights`` (maxscores are MBB corner
    scores — pure CPU, no I/O), the interim top-k is rebuilt from every
    record already read (result ∪ T), and the standard BRS drain continues
    from there, reading only genuinely new pages. The input run is left
    untouched, so the same cached run can be resumed repeatedly.

    Equivalent to ``brs_topk(tree, points, weights, k)`` — any record not
    fetched by the original run still lies under some retained heap entry,
    so the continued search considers it; the priority order and the
    termination test are those of a from-scratch search. The equivalence
    holds only while the tree is exactly as the run left it: resuming after
    an insert or delete raises :class:`StaleRunError`.
    """
    if run.tree_mutations is not None and run.tree_mutations != tree.mutations:
        raise StaleRunError(
            f"run was captured at tree mutation {run.tree_mutations}, the "
            f"tree is now at {tree.mutations}; re-run brs_topk instead"
        )
    weights = _validate_query(tree, weights, k)
    scorer = scorer or LinearScoring(tree.d)
    read = tree.fetch if metered else tree._node

    interim: list[tuple[float, float, int]] = []
    encountered: dict[int, np.ndarray] = {}
    for rid in (*run.result.ids, *run.encountered):
        _consider_record(interim, encountered, rid, points, weights, scorer, k)
    heap = [
        make_heap_entry(e.mbb, e.node_id, e.level, weights, scorer)
        for e in run.heap
    ]
    heapq.heapify(heap)

    node_accesses, leaf_accesses = _drain_heap(
        read, heap, interim, encountered, points, weights, scorer, k
    )
    return _package_run(
        heap,
        interim,
        encountered,
        weights,
        node_accesses=run.node_accesses + node_accesses,
        leaf_accesses=run.leaf_accesses + leaf_accesses,
        tree_mutations=tree.mutations,
    )


def _validate_query(tree: RStarTree, weights: np.ndarray, k: int) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (tree.d,):
        raise ValueError(f"expected weights of shape ({tree.d},)")
    if (weights < 0).any():
        raise ValueError("query weights must be non-negative")
    if k <= 0:
        raise ValueError("k must be positive")
    if k > tree.size:
        raise ValueError(f"k={k} exceeds dataset cardinality {tree.size}")
    return weights


def _drain_heap(
    read,
    heap: list[HeapEntry],
    interim: list[tuple[float, float, int]],
    encountered: dict[int, np.ndarray],
    points: np.ndarray,
    weights: np.ndarray,
    scorer: ScoringFunction,
    k: int,
) -> tuple[int, int]:
    """The BRS main loop; returns (node, leaf) access counts."""
    node_accesses = 0
    leaf_accesses = 0
    while heap:
        if len(interim) == k and interim[0][0] >= heap[0].maxscore:
            break  # k-th interim score dominates everything unexplored
        entry = heapq.heappop(heap)
        node = read(entry.node_id)
        node_accesses += 1
        if node.is_leaf:
            leaf_accesses += 1
            for e in node.entries:
                _consider_record(
                    interim, encountered, e.child_id, points, weights, scorer, k
                )
        else:
            for e in node.entries:
                heapq.heappush(
                    heap,
                    make_heap_entry(e.mbb, e.child_id, node.level - 1, weights, scorer),
                )
    return node_accesses, leaf_accesses


def _package_run(
    heap: list[HeapEntry],
    interim: list[tuple[float, float, int]],
    encountered: dict[int, np.ndarray],
    weights: np.ndarray,
    node_accesses: int,
    leaf_accesses: int,
    tree_mutations: int | None = None,
) -> BRSRun:
    """Rank the interim records and bundle the retained search state."""
    ranked = sorted(interim, reverse=True)
    ids = tuple(rid for _, _, rid in ranked)
    scores = tuple(score for score, _, rid in ranked)
    for rid in ids:
        encountered.pop(rid, None)  # T excludes the result records
    result = TopKResult(ids=ids, scores=scores, weights=weights)
    return BRSRun(
        result=result,
        heap=heap,
        encountered=encountered,
        leaf_accesses=leaf_accesses,
        node_accesses=node_accesses,
        tree_mutations=tree_mutations,
    )


def _consider_record(
    interim: list[tuple[float, float, int]],
    encountered: dict[int, np.ndarray],
    rid: int,
    points: np.ndarray,
    weights: np.ndarray,
    scorer: ScoringFunction,
    k: int,
) -> None:
    """Update the interim top-k with a record fetched from a leaf."""
    point = points[rid]
    encountered[rid] = point
    score = float(scorer.score(point, weights))
    item = (score, float(point.sum()), rid)
    if len(interim) < k:
        heapq.heappush(interim, item)
    elif item > interim[0]:
        heapq.heapreplace(interim, item)
