"""repro — reproduction of *Global Immutable Region Computation*
(Zhang, Mouratidis, Pang; SIGMOD 2014).

Given a top-k query over a multi-attribute dataset, the **global immutable
region (GIR)** is the maximal locus of query-weight vectors that produce
exactly the same top-k result. This package implements the paper's full
stack: an R*-tree over a simulated page store, the BRS top-k and BBS
skyline algorithms, and the three GIR Phase-2 methods — Skyline Pruning
(SP), Convex-hull Pruning (CP) and Facet Pruning (FP) — plus the
order-insensitive GIR*, non-linear monotone scoring, visualisation aids,
result caching, and the baselines the paper compares against.

Quickstart::

    import repro

    data = repro.independent(n=20_000, d=4, seed=1)
    tree = repro.bulk_load_str(data)
    gir = repro.compute_gir(tree, data, weights=[0.6, 0.5, 0.6, 0.7], k=10)
    print(gir.volume_ratio(), gir.lir_intervals())
"""

from repro.baselines import exhaustive_gir, lir_intervals_scan, stb_radius
from repro.core import (
    FPOptions,
    GeneralMonotoneScoring,
    GIRCache,
    GIRResult,
    GIRStats,
    RegionIndex,
    boundary_perturbations,
    compute_gir,
    compute_gir_star,
    immutability_probability,
    immutable_ball_radius,
    interactive_projection,
    maximal_axis_rectangle,
)
from repro.cluster import (
    KDSplitPartitioner,
    PARTITIONERS,
    RoundRobinPartitioner,
    ShardedGIREngine,
)
from repro.engine import (
    GIREngine,
    Workload,
    WorkloadReport,
    drifting_zipf_workload,
    mixed_workload,
    uniform_workload,
    zipf_clustered_workload,
)
from repro.data import (
    Dataset,
    PointTable,
    anticorrelated,
    correlated,
    hotel_surrogate,
    house_surrogate,
    independent,
    make_synthetic,
)
from repro.geometry import FacetFan, Halfspace, IncrementalHull, Polytope
from repro.index import MBB, PageStore, RStarTree, bulk_load_str
from repro.query import BRSRun, TopKResult, bbs_skyline, brs_topk, scan_skyline, scan_topk
from repro.scoring import (
    LinearScoring,
    MonotoneScoring,
    ScoringFunction,
    mixed_scoring,
    polynomial_scoring,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "compute_gir",
    "compute_gir_star",
    "GIRResult",
    "GIRStats",
    "GIRCache",
    "RegionIndex",
    "FPOptions",
    "GeneralMonotoneScoring",
    "immutability_probability",
    "immutable_ball_radius",
    "boundary_perturbations",
    "maximal_axis_rectangle",
    "interactive_projection",
    # cluster
    "ShardedGIREngine",
    "RoundRobinPartitioner",
    "KDSplitPartitioner",
    "PARTITIONERS",
    # engine
    "GIREngine",
    "Workload",
    "WorkloadReport",
    "uniform_workload",
    "zipf_clustered_workload",
    "drifting_zipf_workload",
    "mixed_workload",
    # data
    "Dataset",
    "PointTable",
    "independent",
    "correlated",
    "anticorrelated",
    "make_synthetic",
    "house_surrogate",
    "hotel_surrogate",
    # index
    "RStarTree",
    "bulk_load_str",
    "PageStore",
    "MBB",
    # query
    "brs_topk",
    "bbs_skyline",
    "scan_topk",
    "scan_skyline",
    "TopKResult",
    "BRSRun",
    # geometry
    "Polytope",
    "Halfspace",
    "FacetFan",
    "IncrementalHull",
    # scoring
    "ScoringFunction",
    "LinearScoring",
    "MonotoneScoring",
    "polynomial_scoring",
    "mixed_scoring",
    # baselines
    "exhaustive_gir",
    "stb_radius",
    "lir_intervals_scan",
    "__version__",
]
