"""The serving layer: a cache-first top-k engine over the GIR pipeline.

* :class:`repro.engine.GIREngine` — owns tree + mutable point table +
  scorer + :class:`~repro.core.caching.GIRCache`; answers
  ``engine.topk(q, k)`` cache-first, applies ``engine.insert(point)`` /
  ``engine.delete(rid)`` updates with GIR-aware selective cache
  invalidation (or the flush-on-write baseline), and runs batched
  read/write workloads with per-request latency/IO and per-update
  eviction accounting;
* :mod:`repro.engine.workload` — uniform / Zipf-clustered / mixed
  read-write query-stream generators for scenario diversity.
"""

from repro.engine.engine import (
    EngineResponse,
    GIREngine,
    INVALIDATION_POLICIES,
    UpdateResponse,
    WorkloadReport,
    percentile,
    validate_point,
    validate_weights,
)
from repro.engine.workload import (
    DeleteOp,
    InsertOp,
    Request,
    Workload,
    as_generator,
    drifting_zipf_workload,
    flash_crowd_workload,
    mixed_workload,
    op_batches,
    uniform_workload,
    zipf_clustered_workload,
)

__all__ = [
    "GIREngine",
    "EngineResponse",
    "UpdateResponse",
    "WorkloadReport",
    "INVALIDATION_POLICIES",
    "percentile",
    "validate_weights",
    "validate_point",
    "Request",
    "InsertOp",
    "DeleteOp",
    "Workload",
    "op_batches",
    "as_generator",
    "uniform_workload",
    "zipf_clustered_workload",
    "drifting_zipf_workload",
    "flash_crowd_workload",
    "mixed_workload",
]
