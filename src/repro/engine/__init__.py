"""The serving layer: a cache-first top-k engine over the GIR pipeline.

* :class:`repro.engine.GIREngine` — owns tree + dataset + scorer +
  :class:`~repro.core.caching.GIRCache`; answers ``engine.topk(q, k)``
  cache-first and runs batched workloads with per-request latency/IO
  accounting;
* :mod:`repro.engine.workload` — uniform / Zipf-clustered query-stream
  generators for scenario diversity.
"""

from repro.engine.engine import EngineResponse, GIREngine, WorkloadReport, percentile
from repro.engine.workload import (
    Request,
    Workload,
    uniform_workload,
    zipf_clustered_workload,
)

__all__ = [
    "GIREngine",
    "EngineResponse",
    "WorkloadReport",
    "percentile",
    "Request",
    "Workload",
    "uniform_workload",
    "zipf_clustered_workload",
]
