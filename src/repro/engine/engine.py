"""`GIREngine` — the cache-first serving layer over the staged pipeline.

The paper's headline application (Section 1): a server answering heavy
top-k query traffic caches each computed result together with its GIR, and
serves any later query whose weight vector falls inside a cached GIR
without touching the database. The engine owns the full serving stack —
R*-tree, dataset, scorer and :class:`~repro.core.caching.GIRCache` — and
drives the compute pipeline of :mod:`repro.core.pipeline` on misses.

Serving discipline:

* **full hit** — the request's vector lies in a cached GIR with
  ``k ≤ cached k``: served entirely from memory, zero page reads (scores
  are recomputed for the request's own weights from the in-memory points).
* **partial hit** — vector in a cached GIR but ``k > cached k``: the
  engine *completes* the answer by resuming computation — the cached
  entry's retained BRS run is continued to the deeper ``k`` via
  :func:`~repro.query.brs.resume_brs_topk` (re-reading no page the
  original search already fetched), then the pipeline's phase1/phase2
  stages run on the resumed state and the deeper GIR is cached — instead
  of returning a half-done prefix.
* **miss** — full pipeline run; the GIR is cached for future traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.caching import GIRCache
from repro.core.gir import GIRResult, GIRStats
from repro.core.pipeline import PHASE2_METHODS, ExecutionContext, run_pipeline
from repro.data.dataset import Dataset
from repro.engine.workload import Request, Workload
from repro.index.bulkload import bulk_load_str
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun, brs_topk, resume_brs_topk
from repro.scoring import LinearScoring, ScoringFunction

__all__ = ["EngineResponse", "WorkloadReport", "GIREngine", "percentile"]

#: Response provenance markers.
SOURCE_CACHE = "cache"
SOURCE_COMPLETED = "completed"
SOURCE_COMPUTED = "computed"


def percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of an empty list")
    return float(np.percentile(values, p, method="inverted_cdf"))


@dataclass(frozen=True)
class EngineResponse:
    """One served request, with its full cost accounting."""

    ids: tuple[int, ...]
    scores: tuple[float, ...]
    weights: np.ndarray
    k: int
    #: ``"cache"`` (full hit), ``"completed"`` (partial hit resumed) or
    #: ``"computed"`` (miss).
    source: str
    latency_ms: float
    pages_read: int
    #: Pipeline cost breakdown; ``None`` for pure cache hits (no pipeline ran).
    gir_stats: GIRStats | None = None


@dataclass
class WorkloadReport:
    """Aggregate accounting of one batched workload run."""

    responses: list[EngineResponse]
    wall_ms: float
    workload_kind: str = "custom"

    # -- derived aggregates ---------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.responses)

    @property
    def full_hits(self) -> int:
        return sum(r.source == SOURCE_CACHE for r in self.responses)

    @property
    def completed_partials(self) -> int:
        return sum(r.source == SOURCE_COMPLETED for r in self.responses)

    @property
    def computed(self) -> int:
        return sum(r.source == SOURCE_COMPUTED for r in self.responses)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without any pipeline run."""
        return self.full_hits / self.total if self.total else 0.0

    @property
    def pages_read_total(self) -> int:
        return sum(r.pages_read for r in self.responses)

    @property
    def pages_per_1k_queries(self) -> float:
        return 1000.0 * self.pages_read_total / self.total if self.total else 0.0

    @property
    def latency_p50_ms(self) -> float:
        if not self.responses:
            return 0.0
        return percentile([r.latency_ms for r in self.responses], 50)

    @property
    def latency_p95_ms(self) -> float:
        if not self.responses:
            return 0.0
        return percentile([r.latency_ms for r in self.responses], 95)

    @property
    def throughput_qps(self) -> float:
        return 1000.0 * self.total / self.wall_ms if self.wall_ms > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready summary (the engine benchmark's report payload)."""
        return {
            "workload_kind": self.workload_kind,
            "queries": self.total,
            "full_hits": self.full_hits,
            "completed_partials": self.completed_partials,
            "computed": self.computed,
            "hit_rate": self.hit_rate,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "pages_read_total": self.pages_read_total,
            "pages_per_1k_queries": self.pages_per_1k_queries,
            "wall_ms": self.wall_ms,
            "throughput_qps": self.throughput_qps,
        }

    def summary(self) -> str:
        return "\n".join(
            [
                f"workload          : {self.total} queries ({self.workload_kind})",
                f"served from cache : {self.full_hits} "
                f"({100 * self.hit_rate:.1f}%), "
                f"{self.completed_partials} completed, {self.computed} computed",
                f"latency           : p50 {self.latency_p50_ms:.2f} ms, "
                f"p95 {self.latency_p95_ms:.2f} ms",
                f"I/O               : {self.pages_read_total} pages "
                f"({self.pages_per_1k_queries:.0f} per 1k queries)",
                f"throughput        : {self.throughput_qps:.0f} q/s",
            ]
        )


class GIREngine:
    """A cache-first top-k serving engine (Section 1 application).

    Parameters
    ----------
    data:
        The :class:`Dataset` (or raw ``(n, d)`` array) to serve.
    tree:
        R*-tree over ``data``; bulk-loaded on the spot if omitted.
    method:
        Phase-2 algorithm for GIR computation (``"fp"`` default).
    scorer:
        Scoring function; linear by default.
    cache_capacity:
        LRU capacity of the GIR cache.
    retain_runs:
        Keep each cached entry's BRS run so partial hits resume the
        search instead of re-running it (costs memory proportional to the
        retained heaps; disable for very tight-memory deployments).
    """

    def __init__(
        self,
        data: Dataset | np.ndarray,
        tree: RStarTree | None = None,
        *,
        method: str = "fp",
        scorer: ScoringFunction | None = None,
        cache_capacity: int = 128,
        retain_runs: bool = True,
    ) -> None:
        if method not in PHASE2_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {sorted(PHASE2_METHODS)}"
            )
        if not isinstance(data, Dataset):
            data = Dataset(np.asarray(data, float))
        self.data = data
        self.points = data.points
        self.tree = tree if tree is not None else bulk_load_str(data)
        self.scorer = scorer or LinearScoring(self.tree.d)
        self.method = method
        #: g-space image of the dataset, computed once — data and scorer
        #: are fixed for the engine's lifetime.
        self._points_g = self.scorer.transform(self.points)
        self.cache = GIRCache(capacity=cache_capacity)
        self.retain_runs = retain_runs
        #: Retained BRS state per live cache entry, for partial-hit resume.
        self._runs: dict[int, BRSRun] = {}
        self.requests_served = 0
        self.resumed_completions = 0

    @property
    def d(self) -> int:
        return self.tree.d

    # -- serving --------------------------------------------------------------

    def topk(self, weights: np.ndarray, k: int) -> EngineResponse:
        """Answer one top-k request, cache-first.

        A full cache hit performs zero metered page reads; a partial hit is
        completed by resuming computation at the requested ``k``; a miss
        runs the full pipeline. Either way the response carries a complete
        ordered top-k and exact latency / page-read accounting.
        """
        weights = np.asarray(weights, dtype=np.float64)
        io_before = self.tree.store.stats.page_reads
        t0 = time.perf_counter()

        hit = self.cache.lookup(weights, k)
        if hit is not None and not hit.partial:
            ids = hit.ids
            scores = tuple(
                float(s)
                for s in self.scorer.score(self.points[list(ids)], weights)
            )
            source = SOURCE_CACHE
            gir_stats = None
        else:
            gir = self._compute_and_cache(weights, k, hit)
            ids = gir.topk.ids
            scores = gir.topk.scores
            source = SOURCE_COMPLETED if hit is not None else SOURCE_COMPUTED
            gir_stats = gir.stats

        latency_ms = (time.perf_counter() - t0) * 1e3
        pages_read = self.tree.store.stats.page_reads - io_before
        self.requests_served += 1
        return EngineResponse(
            ids=ids,
            scores=scores,
            weights=weights,
            k=k,
            source=source,
            latency_ms=latency_ms,
            pages_read=pages_read,
            gir_stats=gir_stats,
        )

    def _compute_and_cache(self, weights: np.ndarray, k: int, hit) -> GIRResult:
        """Run the staged pipeline — resuming a retained BRS run on a
        partial hit — and cache the resulting GIR."""
        ctx = ExecutionContext(
            tree=self.tree,
            points=self.points,
            points_g=self._points_g,
            weights=np.asarray(weights, dtype=np.float64),
            k=k,
            scorer=self.scorer,
            method=self.method,
        )
        io_before = self.tree.store.stats.page_reads
        t0 = time.perf_counter()
        prior = self._runs.get(hit.entry_key) if hit is not None else None
        if prior is not None:
            run = resume_brs_topk(
                self.tree, self.points, prior, weights, k, scorer=self.scorer
            )
            self.resumed_completions += 1
        else:
            run = brs_topk(
                self.tree, self.points, weights, k, scorer=self.scorer
            )
        retrieve_ms = (time.perf_counter() - t0) * 1e3
        retrieve_pages = self.tree.store.stats.page_reads - io_before

        gir = run_pipeline(ctx, run)
        # stage_retrieve adopted our run and charged nothing; attribute the
        # engine-side retrieval (fresh or resumed) so per-request GIRStats
        # stay exact.
        gir.stats.cpu_ms_topk = retrieve_ms
        gir.stats.io_pages_topk = retrieve_pages

        key = self.cache.insert(gir)
        if self.retain_runs:
            self._runs[key] = run
            live = set(self.cache.entry_keys())
            self._runs = {
                kk: r for kk, r in self._runs.items() if kk in live
            }
        return gir

    def run(self, workload: Workload | list[Request]) -> WorkloadReport:
        """Serve a whole workload; return batched accounting."""
        requests = list(workload)
        kind = workload.kind if isinstance(workload, Workload) else "custom"
        t0 = time.perf_counter()
        responses = [self.topk(req.weights, req.k) for req in requests]
        wall_ms = (time.perf_counter() - t0) * 1e3
        return WorkloadReport(
            responses=responses, wall_ms=wall_ms, workload_kind=kind
        )

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Engine-level counters merged with the cache's."""
        return {
            "requests_served": self.requests_served,
            "resumed_completions": self.resumed_completions,
            **self.cache.stats(),
        }
