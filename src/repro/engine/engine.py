"""`GIREngine` — the cache-first serving layer over the staged pipeline.

The paper's headline application (Section 1): a server answering heavy
top-k query traffic caches each computed result together with its GIR, and
serves any later query whose weight vector falls inside a cached GIR
without touching the database. The engine owns the full serving stack —
R*-tree, mutable point table, scorer and
:class:`~repro.core.caching.GIRCache` — and drives the compute pipeline of
:mod:`repro.core.pipeline` on misses.

Serving discipline:

* **full hit** — the request's vector lies in a cached GIR with
  ``k ≤ cached k``: served entirely from memory, zero page reads (scores
  are recomputed for the request's own weights from the in-memory points).
* **partial hit** — vector in a cached GIR but ``k > cached k``: the
  engine *completes* the answer by resuming computation — the cached
  entry's retained BRS run is continued to the deeper ``k`` via
  :func:`~repro.query.brs.resume_brs_topk` (re-reading no page the
  original search already fetched), then the pipeline's phase1/phase2
  stages run on the resumed state and the deeper GIR is cached — instead
  of returning a half-done prefix.
* **miss** — full pipeline run; the GIR is cached for future traffic.

Dynamic datasets
----------------

The dataset is *mutable*: :meth:`GIREngine.insert` / :meth:`GIREngine.delete`
route through :meth:`~repro.index.rtree.RStarTree.insert` /
:meth:`~repro.index.rtree.RStarTree.delete`, maintain the
:class:`~repro.data.dataset.PointTable` and its cached g-space image, and
invalidate cached GIRs per the engine's ``invalidation`` policy:

* ``"gir"`` (default) — *selective*: an insert evicts entry E only if the
  new record's score can exceed E's k-th score somewhere in E's region
  (one LP, :func:`~repro.core.caching.invalidated_by_insert`); a delete
  only if the rid is in E's result or in the T-set of E's retained run
  (:func:`~repro.core.caching.invalidated_by_delete`).
* ``"flush"`` — flush-on-write: every update empties the whole cache (the
  comparison baseline).

Retained BRS runs are version-stamped against
:attr:`~repro.index.rtree.RStarTree.mutations`; any structural update
makes them stale (their heaps reference pre-update pages) and the engine
discards them instead of resuming — a later partial hit falls back to a
from-scratch search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs, sanitize
from repro.core.caching import (
    GIRCache,
    apply_delete_invalidation,
    apply_insert_invalidation,
)
from repro.core.gir import GIRResult, GIRStats
from repro.core.pipeline import PHASE2_METHODS, ExecutionContext, run_pipeline
from repro.data.dataset import Dataset, PointTable, grow_rows
from repro.engine.workload import (
    DeleteOp,
    InsertOp,
    Request,
    Workload,
    frozen_array,
    op_batches,
)
from repro.geometry.polytope import Polytope
from repro.index.bulkload import bulk_load_str
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun, brs_topk, resume_brs_topk
from repro.scoring import LinearScoring, ScoringFunction

__all__ = [
    "EngineResponse",
    "UpdateResponse",
    "WorkloadReport",
    "GIREngine",
    "INVALIDATION_POLICIES",
    "percentile",
    "validate_weights",
    "validate_point",
]

#: Response provenance markers.
SOURCE_CACHE = "cache"
SOURCE_COMPLETED = "completed"
SOURCE_COMPUTED = "computed"

#: Cache-invalidation policies for updates.
INVALIDATION_POLICIES = ("gir", "flush")

#: Max requests stacked into one batched cache lookup. A pipeline-running
#: request (partial hit / miss) interrupts the batch and invalidates the
#: membership matrix computed for the requests behind it, so on miss-heavy
#: streams an unbounded window would redo O(batch) membership work per
#: interruption (quadratic overall); the window caps that waste while a
#: hit-heavy stream still amortizes its matmuls over hundreds of requests.
LOOKUP_WINDOW = 256


def percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of an empty list")
    return float(np.percentile(values, p, method="inverted_cdf"))


def validate_weights(weights: np.ndarray, d: int) -> np.ndarray:
    """Check a query vector at the serving boundary; returns it as float64.

    A malformed vector used to surface as an opaque downstream failure (a
    shape error inside BRS, or NaNs silently poisoning the geometry);
    rejecting it here gives the caller one clear :class:`ValueError`.
    Rejected: wrong dimensionality, non-finite entries (NaN/inf), negative
    entries, and all-nonpositive vectors (a zero preference ranks every
    record identically — degenerate for top-k).
    """
    arr = np.asarray(weights, dtype=np.float64)
    if arr.shape != (d,):
        raise ValueError(
            f"weights must be a vector of shape ({d},), got {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise ValueError("weights must be finite (no NaN or inf entries)")
    if (arr < 0).any():
        raise ValueError("query weights must be non-negative")
    if not (arr > 0).any():
        raise ValueError(
            "weights must have at least one positive entry "
            "(an all-zero preference cannot rank records)"
        )
    return arr


def validate_point(point: np.ndarray, d: int) -> np.ndarray:
    """Check an insert's record at the serving boundary; returns float64.

    Shape and finiteness are rejected here with a clear :class:`ValueError`
    before any structure (table, tree, g-buffer) is touched; the unit-cube
    range check stays with :class:`~repro.data.dataset.PointTable`.
    """
    arr = np.asarray(point, dtype=np.float64)
    if arr.shape != (d,):
        raise ValueError(
            f"point must be a vector of shape ({d},), got {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise ValueError("point must be finite (no NaN or inf entries)")
    return arr


@dataclass(frozen=True)
class EngineResponse:
    """One served request, with its full cost accounting.

    ``weights`` is a read-only copy — a caller mutating its query vector
    in place cannot corrupt the recorded accounting.
    """

    ids: tuple[int, ...]
    scores: tuple[float, ...]
    weights: np.ndarray
    k: int
    #: ``"cache"`` (full hit), ``"completed"`` (partial hit resumed) or
    #: ``"computed"`` (miss).
    source: str
    latency_ms: float
    pages_read: int
    #: Pipeline cost breakdown; ``None`` for pure cache hits (no pipeline ran).
    gir_stats: GIRStats | None = None
    #: The region of query space in which this exact (ordered) answer is
    #: served: the cached entry's GIR on a hit, the freshly computed GIR
    #: otherwise. A shared reference, not a copy — the sharded cluster
    #: tier reads it to assemble the cross-shard merged region.
    region: "Polytope | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", frozen_array(self.weights, "weights"))


@dataclass(frozen=True)
class UpdateResponse:
    """One applied update, with its invalidation accounting."""

    #: ``"insert"`` or ``"delete"``.
    kind: str
    #: Rid of the inserted / deleted record.
    rid: int
    latency_ms: float
    #: Cache entries this update invalidated (under the engine's policy).
    evicted: int
    #: Cache entries remaining after the update.
    cache_entries: int
    #: The policy that made the eviction decision (``"gir"`` / ``"flush"``).
    policy: str
    #: Cache entries the vectorized prescreen resolved without an LP
    #: (inserts under the ``"gir"`` policy; 0 otherwise).
    prescreen_screened: int = 0
    #: Invalidation LPs actually run (the prescreen's survivors).
    prescreen_lps: int = 0


@dataclass
class WorkloadReport:
    """Aggregate accounting of one batched workload run."""

    responses: list[EngineResponse]
    wall_ms: float
    workload_kind: str = "custom"
    updates: list[UpdateResponse] = field(default_factory=list)
    #: Portion of ``wall_ms`` spent applying updates (0 for read-only runs);
    #: read throughput is computed against the remainder so update cost —
    #: which differs by invalidation policy — cannot masquerade as read
    #: serving speed.
    update_wall_ms: float = 0.0
    #: Per-shard breakdown of a sharded-cluster run (one dict per shard:
    #: requests fanned out, page reads, latency, cache counters as
    #: *per-run deltas*; cache entries / live records as end-of-run
    #: state); empty for single-engine runs.
    shard_stats: list[dict] = field(default_factory=list)
    #: Cluster-tier counters of a sharded run (cluster-cache hits and
    #: fan-outs as per-run deltas; backend/mode/partitioner/entries as
    #: state — the backend name and fan-out mode make saved bench reports
    #: self-describing); empty for single-engine runs.
    cluster_stats: dict = field(default_factory=dict)

    # -- derived aggregates ---------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.responses)

    @property
    def full_hits(self) -> int:
        return sum(r.source == SOURCE_CACHE for r in self.responses)

    @property
    def completed_partials(self) -> int:
        return sum(r.source == SOURCE_COMPLETED for r in self.responses)

    @property
    def computed(self) -> int:
        return sum(r.source == SOURCE_COMPUTED for r in self.responses)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without any pipeline run."""
        return self.full_hits / self.total if self.total else 0.0

    @property
    def pages_read_total(self) -> int:
        return sum(r.pages_read for r in self.responses)

    @property
    def pages_per_1k_queries(self) -> float:
        return 1000.0 * self.pages_read_total / self.total if self.total else 0.0

    @property
    def latency_p50_ms(self) -> float:
        if not self.responses:
            return 0.0
        return percentile([r.latency_ms for r in self.responses], 50)

    @property
    def latency_p95_ms(self) -> float:
        if not self.responses:
            return 0.0
        return percentile([r.latency_ms for r in self.responses], 95)

    @property
    def read_wall_ms(self) -> float:
        """Wall time spent serving reads (total minus update time)."""
        return max(self.wall_ms - self.update_wall_ms, 0.0)

    @property
    def throughput_qps(self) -> float:
        ms = self.read_wall_ms
        return 1000.0 * self.total / ms if ms > 0 else 0.0

    # -- update aggregates ----------------------------------------------------

    @property
    def updates_total(self) -> int:
        return len(self.updates)

    @property
    def inserts_applied(self) -> int:
        return sum(u.kind == "insert" for u in self.updates)

    @property
    def deletes_applied(self) -> int:
        return sum(u.kind == "delete" for u in self.updates)

    @property
    def evictions_total(self) -> int:
        """Cache entries invalidated by this run's updates."""
        return sum(u.evicted for u in self.updates)

    @property
    def prescreen_screened_total(self) -> int:
        """Cache entries cleared by the vectorized insert prescreen (no LP)."""
        return sum(u.prescreen_screened for u in self.updates)

    @property
    def prescreen_lps_total(self) -> int:
        """Invalidation LPs actually run across this run's updates."""
        return sum(u.prescreen_lps for u in self.updates)

    @property
    def update_latency_p50_ms(self) -> float:
        if not self.updates:
            return 0.0
        return percentile([u.latency_ms for u in self.updates], 50)

    @property
    def update_latency_p95_ms(self) -> float:
        if not self.updates:
            return 0.0
        return percentile([u.latency_ms for u in self.updates], 95)

    def to_dict(self) -> dict:
        """JSON-ready summary (the engine benchmark's report payload)."""
        payload = {
            "workload_kind": self.workload_kind,
            "queries": self.total,
            "full_hits": self.full_hits,
            "completed_partials": self.completed_partials,
            "computed": self.computed,
            "hit_rate": self.hit_rate,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "pages_read_total": self.pages_read_total,
            "pages_per_1k_queries": self.pages_per_1k_queries,
            "wall_ms": self.wall_ms,
            "throughput_qps": self.throughput_qps,
        }
        if self.updates:
            payload.update(
                {
                    "updates": self.updates_total,
                    "inserts": self.inserts_applied,
                    "deletes": self.deletes_applied,
                    "evictions": self.evictions_total,
                    "update_latency_p50_ms": self.update_latency_p50_ms,
                    "update_latency_p95_ms": self.update_latency_p95_ms,
                    "update_wall_ms": self.update_wall_ms,
                    "prescreen_screened": self.prescreen_screened_total,
                    "prescreen_lps": self.prescreen_lps_total,
                }
            )
        if self.cluster_stats:
            payload["cluster"] = dict(self.cluster_stats)
        if self.shard_stats:
            payload["shards"] = [dict(s) for s in self.shard_stats]
        return payload

    def summary(self) -> str:
        lines = [
            f"workload          : {self.total} queries ({self.workload_kind})",
            f"served from cache : {self.full_hits} "
            f"({100 * self.hit_rate:.1f}%), "
            f"{self.completed_partials} completed, {self.computed} computed",
            f"latency           : p50 {self.latency_p50_ms:.2f} ms, "
            f"p95 {self.latency_p95_ms:.2f} ms",
            f"I/O               : {self.pages_read_total} pages "
            f"({self.pages_per_1k_queries:.0f} per 1k queries)",
            f"throughput        : {self.throughput_qps:.0f} q/s",
        ]
        if self.updates:
            lines.append(
                f"updates           : {self.updates_total} "
                f"({self.inserts_applied} ins / {self.deletes_applied} del), "
                f"{self.evictions_total} cache evictions, "
                f"p50 {self.update_latency_p50_ms:.2f} ms"
            )
            lines.append(
                f"insert prescreen  : {self.prescreen_screened_total} entries "
                f"cleared without an LP, {self.prescreen_lps_total} LPs run"
            )
        if self.cluster_stats:
            cs = self.cluster_stats
            lines.append(
                f"cluster           : {len(self.shard_stats)} shards "
                f"({cs.get('backend', 'inproc')} backend, "
                f"{cs.get('mode', '?')} fan-out), "
                f"{cs.get('cluster_full_hits', 0)} cluster-cache hits, "
                f"{cs.get('fanouts', 0)} fan-outs"
            )
        for s in self.shard_stats:
            lines.append(
                f"  shard {s.get('shard', '?')}         : "
                f"{s.get('requests', 0)} requests, "
                f"{s.get('page_reads', 0)} pages, "
                f"{s.get('cache_entries', 0)} cached regions, "
                f"{s.get('live_records', 0)} live records"
            )
        return "\n".join(lines)


# repro: thread-owned[GIREngine] -- one engine serves one shard; the router's serve lock (or the worker process) serializes all access
class GIREngine:
    """A cache-first top-k serving engine over a *dynamic* dataset
    (Section 1 application).

    Parameters
    ----------
    data:
        The :class:`Dataset` (or raw ``(n, d)`` array) to serve. Copied
        into a mutable :class:`PointTable`; the engine owns all updates.
    tree:
        R*-tree over ``data``; bulk-loaded on the spot if omitted. The
        engine mutates the tree on :meth:`insert` / :meth:`delete`, so it
        must not be shared with another engine.
    method:
        Phase-2 algorithm for GIR computation (``"fp"`` default).
    scorer:
        Scoring function; linear by default.
    cache_capacity:
        Capacity of the GIR cache.
    cache_policy:
        Capacity-eviction policy of the GIR cache: ``"lru"`` (default)
        or ``"cost"`` (Greedy-Dual volume × recompute-cost scoring; see
        :class:`~repro.core.caching.GIRCache`).
    retain_runs:
        Keep each cached entry's BRS run so partial hits resume the
        search instead of re-running it (costs memory proportional to the
        retained heaps; disable for very tight-memory deployments).
    invalidation:
        Cache policy on updates: ``"gir"`` (selective, default) or
        ``"flush"`` (drop everything — the baseline).
    """

    def __init__(
        self,
        data: Dataset | np.ndarray,
        tree: RStarTree | None = None,
        *,
        method: str = "fp",
        scorer: ScoringFunction | None = None,
        cache_capacity: int = 128,
        cache_policy: str = "lru",
        retain_runs: bool = True,
        invalidation: str = "gir",
    ) -> None:
        if method not in PHASE2_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {sorted(PHASE2_METHODS)}"
            )
        if invalidation not in INVALIDATION_POLICIES:
            raise ValueError(
                f"unknown invalidation policy {invalidation!r}; "
                f"expected one of {INVALIDATION_POLICIES}"
            )
        if not isinstance(data, Dataset):
            data = Dataset(np.asarray(data, float))
        self.data = data
        self.table = PointTable.from_dataset(data)
        self.tree = tree if tree is not None else bulk_load_str(data)
        self.scorer = scorer or LinearScoring(self.tree.d)
        self.method = method
        self.invalidation = invalidation
        #: g-space image of the table, maintained incrementally alongside it
        #: (capacity-doubling buffer mirroring the table's rows).
        self._g_buf = self.scorer.transform(self.table.rows).copy()
        self._g_n = self.table.n_allocated
        self.cache = GIRCache(capacity=cache_capacity, policy=cache_policy)
        self.retain_runs = retain_runs
        #: Retained BRS state per live cache entry, for partial-hit resume.
        #: Runs self-describe their tree version (``run.tree_mutations``);
        #: stale ones are never resumed.
        self._runs: dict[int, BRSRun] = {}
        self.requests_served = 0
        self.resumed_completions = 0
        self.updates_applied = 0
        self.update_evictions = 0
        self.prescreen_screened = 0
        self.prescreen_lps = 0

    @property
    def d(self) -> int:
        return self.tree.d

    @property
    def points(self) -> np.ndarray:
        """Read-only ``(n_allocated, d)`` row array, indexable by rid
        (tombstoned rows included — the tree never references them)."""
        return self.table.rows

    @property
    def points_g(self) -> np.ndarray:
        """G-space image of :attr:`points` (same shape, read-only)."""
        view = self._g_buf[: self._g_n]
        view.setflags(write=False)
        return view

    @property
    def n_live(self) -> int:
        return self.table.n_live

    @sanitize.reads
    def result_rows(self, ids) -> np.ndarray:
        """Snapshot copy of the rows behind an answer, in answer order.

        The serving front door takes this on the engine thread right
        after the response it belongs to, so coalesced followers can be
        rescored on the event loop from state that is immune to later
        inserts/deletes — ``scorer.score(result_rows(ids), w)`` is then
        bit-identical to the full-hit rescoring path for any ``w`` in
        the response's region.
        """
        return np.array(self.points[list(ids)], dtype=np.float64)

    # -- serving --------------------------------------------------------------

    @sanitize.mutates  # cache-first serving touches recency and counters
    def topk(self, weights: np.ndarray, k: int) -> EngineResponse:
        """Answer one top-k request, cache-first.

        A full cache hit performs zero metered page reads; a partial hit is
        completed by resuming computation at the requested ``k``; a miss
        runs the full pipeline. Either way the response carries a complete
        ordered top-k and exact latency / page-read accounting.

        Malformed query vectors (wrong dimension, NaN/inf, all-nonpositive)
        are rejected with a :class:`ValueError` up front — see
        :func:`validate_weights`.
        """
        weights = validate_weights(weights, self.d)
        with obs.span("engine.topk", k=k):
            io_before = self.tree.store.stats.page_reads
            t0 = time.perf_counter()
            hit = self._lookup_traced(weights, k)
            return self._serve(weights, k, hit, t0, io_before)

    def _lookup_traced(self, weights: np.ndarray, k: int):
        """Cache lookup under a span recording the hit classification
        and the grid prescreen's contribution (counter deltas — the
        extra reads only happen while tracing is armed)."""
        traced = obs.tracing_enabled()
        with obs.span("engine.cache_lookup") as sp:
            if traced:
                probes0, negatives0 = self.cache.grid_counters()
            hit = self.cache.lookup(weights, k)
            if traced:
                probes1, negatives1 = self.cache.grid_counters()
                sp.set("grid_probes", probes1 - probes0)
                sp.set("grid_negatives", negatives1 - negatives0)
                if hit is None:
                    sp.set("outcome", "miss")
                else:
                    sp.set("outcome", "partial" if hit.partial else "full")
        return hit

    @sanitize.mutates
    def topk_batch(self, requests: list) -> list[EngineResponse]:
        """Serve a batch of :class:`~repro.engine.workload.Request`\\ s.

        Answers, provenance and all cache/hit accounting are identical to
        issuing the requests one-by-one through :meth:`topk`; the cache
        membership work, however, is batched — one matmul of the pending
        request matrix against every cached region's stacked half-spaces
        (:meth:`~repro.core.caching.GIRCache.lookup_batch`). A request
        that triggers the pipeline (partial hit or miss) mutates the
        cache, so batched evaluation restarts from the following request —
        exactly the state a sequential run would see. Lookups are stacked
        at most :data:`LOOKUP_WINDOW` at a time, bounding the membership
        work a mid-batch pipeline run can invalidate.
        """
        reqs = list(requests)
        # Validate the whole batch before serving anything: a malformed
        # request must fail the call up front, not abort mid-batch after
        # earlier windows already mutated the cache and the counters.
        validated = [validate_weights(r.weights, self.d) for r in reqs]
        responses: list[EngineResponse] = []
        with obs.span("engine.topk_batch", n=len(reqs)):
            i = 0
            while i < len(reqs):
                rest = reqs[i : i + LOOKUP_WINDOW]
                W = np.stack(validated[i : i + LOOKUP_WINDOW])
                ks = [r.k for r in rest]
                t_lookup = time.perf_counter()
                with obs.span("engine.cache_lookup_batch", n=len(rest)):
                    hits = self.cache.lookup_batch(
                        W, ks, stop_after_non_full=True
                    )
                # Attribute the shared membership matmul evenly to the
                # requests it resolved, keeping batch-mode latency_ms
                # comparable to the sequential path (whose clock includes
                # its own lookup).
                lookup_share_ms = (
                    (time.perf_counter() - t_lookup) * 1e3 / max(len(hits), 1)
                )
                for offset, hit in enumerate(hits):
                    io_before = self.tree.store.stats.page_reads
                    t0 = time.perf_counter()
                    responses.append(
                        self._serve(
                            W[offset], ks[offset], hit, t0, io_before,
                            extra_latency_ms=lookup_share_ms,
                        )
                    )
                i += len(hits)
        return responses

    def _serve(
        self,
        weights: np.ndarray,
        k: int,
        hit,
        t0: float,
        io_before: int,
        extra_latency_ms: float = 0.0,
    ) -> EngineResponse:
        """Turn a resolved cache outcome into a full response (running the
        pipeline when the hit is partial or absent). ``extra_latency_ms``
        charges work done for this request before ``t0`` (a batched
        lookup's amortized share)."""
        with obs.span("engine.serve") as sp:
            if hit is not None and not hit.partial:
                ids = hit.ids
                scores = tuple(
                    float(s)
                    for s in self.scorer.score(self.points[list(ids)], weights)
                )
                source = SOURCE_CACHE
                gir_stats = None
                region = self.cache.entry(hit.entry_key).polytope
            else:
                gir = self._compute_and_cache(weights, k, hit)
                ids = gir.topk.ids
                scores = gir.topk.scores
                source = (
                    SOURCE_COMPLETED if hit is not None else SOURCE_COMPUTED
                )
                gir_stats = gir.stats
                region = gir.polytope

            latency_ms = (time.perf_counter() - t0) * 1e3 + extra_latency_ms
            pages_read = self.tree.store.stats.page_reads - io_before
            self.requests_served += 1
            if obs.tracing_enabled():
                sp.set("source", source)
                sp.set("pages_read", pages_read)
                sp.set("k", k)
            return EngineResponse(
                ids=ids,
                scores=scores,
                weights=weights,
                k=k,
                source=source,
                latency_ms=latency_ms,
                pages_read=pages_read,
                gir_stats=gir_stats,
                region=region,
            )

    def _compute_and_cache(self, weights: np.ndarray, k: int, hit) -> GIRResult:
        """Run the staged pipeline — resuming a retained BRS run on a
        partial hit — and cache the resulting GIR."""
        points = self.points
        ctx = ExecutionContext(
            tree=self.tree,
            points=points,
            points_g=self.points_g,
            weights=np.asarray(weights, dtype=np.float64),
            k=k,
            scorer=self.scorer,
            method=self.method,
        )
        io_before = self.tree.store.stats.page_reads
        t0 = time.perf_counter()
        prior = self._runs.get(hit.entry_key) if hit is not None else None
        if prior is not None and prior.tree_mutations != self.tree.mutations:
            # The tree changed since the run was captured: its heap
            # references pre-update pages. Forbid the resume (it would be
            # a StaleRunError anyway) and search from scratch.
            del self._runs[hit.entry_key]
            prior = None
        with obs.span("engine.brs", resumed=prior is not None) as bsp:
            if prior is not None:
                run = resume_brs_topk(
                    self.tree, points, prior, weights, k, scorer=self.scorer
                )
                self.resumed_completions += 1
            else:
                run = brs_topk(
                    self.tree, points, weights, k, scorer=self.scorer
                )
            if obs.tracing_enabled():
                bsp.set(
                    "pages_read",
                    self.tree.store.stats.page_reads - io_before,
                )
        retrieve_ms = (time.perf_counter() - t0) * 1e3
        retrieve_pages = self.tree.store.stats.page_reads - io_before

        with obs.span("engine.pipeline"):
            gir = run_pipeline(ctx, run)
        # stage_retrieve adopted our run and charged nothing; attribute the
        # engine-side retrieval (fresh or resumed) so per-request GIRStats
        # stay exact.
        gir.stats.cpu_ms_topk = retrieve_ms
        gir.stats.io_pages_topk = retrieve_pages

        # kth_g enables the cache's vectorized insert-invalidation
        # prescreen for this entry (copied: the g-buffer may be
        # reallocated by later growth).
        key = self.cache.insert(
            gir, kth_g=self._g_buf[gir.topk.kth_id].copy()
        )
        if self.retain_runs:
            self._runs[key] = run
            self._drop_stale_runs()
        return gir

    # -- updates --------------------------------------------------------------

    @sanitize.mutates
    def insert(self, point: np.ndarray) -> UpdateResponse:
        """Insert a new record; returns its rid and eviction accounting.

        The point joins the table (fresh rid), the R*-tree and the cached
        g-space image; then the cache is invalidated per the engine's
        policy — under ``"gir"``, entry E is evicted only if the new
        record can out-score E's k-th result record somewhere in E's
        region (the halfspace-intersection LP of
        :meth:`~repro.core.gir.GIRResult.admits_above_kth`). Before any LP
        runs, the cache's vectorized prescreen
        (:meth:`~repro.core.caching.GIRCache.prescreen_insert`) clears
        every entry whose vertex-set score bound proves it undisturbable,
        so the LP cost scales with the prescreen's survivors, not the
        cache size.

        Malformed points (wrong dimension, NaN/inf) are rejected with a
        :class:`ValueError` before any structure is touched — see
        :func:`validate_point`.
        """
        t0 = time.perf_counter()
        point = validate_point(point, self.d)
        rid = self.table.insert(point)
        self.tree.insert(self.table.point(rid), rid)
        point_g = self._append_g(self.table.point(rid))
        screened = lps = 0
        if self.invalidation == "flush":
            evicted = self.cache.flush()
        else:
            evicted, screened, lps = apply_insert_invalidation(
                self.cache,
                point_g,
                new_sum=float(self.points[rid].sum()),
                new_rid=rid,
                kth_point=lambda kid: self.points[kid],
                kth_g=lambda kid: self._g_buf[kid],
            )
            self.prescreen_screened += screened
            self.prescreen_lps += lps
        self._drop_stale_runs()
        return self._finish_update(
            "insert", rid, t0, evicted, screened=screened, lps=lps
        )

    @sanitize.mutates
    def delete(self, rid: int) -> UpdateResponse:
        """Delete a live record; returns eviction accounting.

        Under the ``"gir"`` policy an entry is evicted only if ``rid``
        appears in its result or in the T-set of its retained BRS run;
        deleting any other record leaves the cached ordered top-k valid
        everywhere in its region (removing a non-member never changes a
        top-k answer). The T-set clause is deliberately conservative:
        since every update also discards all retained runs (mutation
        version stamp), a surviving entry without its run would still
        serve correct full hits — evicting on T membership trades a few
        extra evictions for never holding state derived from a record
        that no longer exists.
        """
        t0 = time.perf_counter()
        point = self.table.delete(rid)
        removed = self.tree.delete(point, rid)
        if not removed:  # pragma: no cover - table and tree always agree
            raise RuntimeError(f"rid {rid} live in table but absent from tree")
        if self.invalidation == "flush":
            evicted = self.cache.flush()
        else:
            evicted = apply_delete_invalidation(
                self.cache,
                rid,
                tset_of=lambda key: (
                    run.encountered
                    if (run := self._runs.get(key)) is not None
                    else None
                ),
            )
        self._drop_stale_runs()
        return self._finish_update("delete", rid, t0, evicted)

    def _append_g(self, point: np.ndarray) -> np.ndarray:
        """Maintain the g-space image for a freshly inserted row (grown with
        the same policy as the table it mirrors)."""
        self._g_buf = grow_rows(self._g_buf, self._g_n)
        g_row = self.scorer.transform_one(point)
        self._g_buf[self._g_n] = g_row
        self._g_n += 1
        return g_row

    def _drop_stale_runs(self) -> None:
        """Discard retained runs invalidated by a structural tree change
        (and runs whose cache entry is gone)."""
        live = set(self.cache.entry_keys())
        self._runs = {
            key: run
            for key, run in self._runs.items()
            if key in live and run.tree_mutations == self.tree.mutations
        }

    def _finish_update(
        self,
        kind: str,
        rid: int,
        t0: float,
        evicted: int,
        screened: int = 0,
        lps: int = 0,
    ) -> UpdateResponse:
        self.updates_applied += 1
        self.update_evictions += evicted
        if obs.tracing_enabled():
            obs.record_span(
                f"engine.{kind}",
                t0,
                time.perf_counter(),
                rid=rid,
                evicted=evicted,
            )
        return UpdateResponse(
            kind=kind,
            rid=rid,
            latency_ms=(time.perf_counter() - t0) * 1e3,
            evicted=evicted,
            cache_entries=len(self.cache),
            policy=self.invalidation,
            prescreen_screened=screened,
            prescreen_lps=lps,
        )

    # -- batch serving --------------------------------------------------------

    def run(self, workload: Workload | list, batch: bool = False) -> WorkloadReport:
        """Serve a whole workload — reads and updates — and return batched
        accounting.

        With ``batch=True`` every maximal run of consecutive read requests
        is served through :meth:`topk_batch` (one membership matmul per
        run instead of per request); updates still apply one at a time, at
        their stream positions. Answers and hit/miss accounting are
        identical either way.
        """
        ops = list(workload)
        kind = workload.kind if isinstance(workload, Workload) else "custom"
        responses: list[EngineResponse] = []
        updates: list[UpdateResponse] = []
        update_ms = 0.0
        t0 = time.perf_counter()
        for op in op_batches(ops) if batch else ops:
            if isinstance(op, list):  # a maximal run of consecutive reads
                responses.extend(self.topk_batch(op))
            elif isinstance(op, Request):
                responses.append(self.topk(op.weights, op.k))
            elif isinstance(op, InsertOp):
                tu = time.perf_counter()
                updates.append(self.insert(op.point))
                update_ms += (time.perf_counter() - tu) * 1e3
            elif isinstance(op, DeleteOp):
                tu = time.perf_counter()
                updates.append(self.delete(op.rid))
                update_ms += (time.perf_counter() - tu) * 1e3
            else:
                raise TypeError(f"unknown workload operation {op!r}")
        wall_ms = (time.perf_counter() - t0) * 1e3
        return WorkloadReport(
            responses=responses,
            wall_ms=wall_ms,
            workload_kind=kind,
            updates=updates,
            update_wall_ms=update_ms,
        )

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Engine-level counters merged with the cache's."""
        return {
            "requests_served": self.requests_served,
            "resumed_completions": self.resumed_completions,
            "updates_applied": self.updates_applied,
            "update_evictions": self.update_evictions,
            "prescreen_screened": self.prescreen_screened,
            "prescreen_lps": self.prescreen_lps,
            "live_records": self.n_live,
            **self.cache.stats(),
        }
