"""Query- and update-stream generators for the serving layer.

A workload is an ordered stream of operations: top-k :class:`Request`\\ s,
optionally interleaved with :class:`InsertOp` / :class:`DeleteOp` updates.
Three stream shapes cover the interesting ends of the caching spectrum:

* :func:`uniform_workload` — every user has independent taste; query
  vectors are i.i.d. uniform over the (interior of the) weight space.
  The worst case for GIR caching: hits happen only when GIRs are large.
* :func:`zipf_clustered_workload` — users form preference archetypes
  ("clusters") whose popularity is Zipf-distributed, each user being an
  archetype plus a small personal tweak. This is the situation Section 1's
  result-caching application exploits — most traffic lands in a few hot
  regions of weight space.
* :func:`drifting_zipf_workload` — Zipf-clustered traffic whose hot spot
  *migrates* at phase boundaries. The regime where recency-only (LRU)
  eviction churns and a value-aware score should win.
* :func:`flash_crowd_workload` — sudden duplicate-heavy bursts over a
  tiny pool of hot vectors, on a thin uniform background. The separating
  regime for the serving front door's single-flight coalescing: most of
  a burst is *the same request*, concurrently in flight, so a tier that
  coalesces serves the burst with one engine pass where a plain proxy
  pays one per request.
* :func:`mixed_workload` — a read stream of either shape with an update
  stream (inserts of fresh records, deletes of live ones) blended in, in
  bursts. This is the scenario where caching strategies are really
  stress-tested (cf. the LDBC mixed read/write analyses): every update
  *may* disturb cached results, and the engine's invalidation policy
  decides how much of the cache survives.

Update streams rely on the engine's rid contract: record ids are
append-only, so the ``i``-th insert of a stream lands at rid
``base_n + i``. :func:`mixed_workload` tracks its own live-id set under
that contract, which lets it emit deletes for records it inserted earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "frozen_array",
    "as_generator",
    "Request",
    "InsertOp",
    "DeleteOp",
    "Workload",
    "op_batches",
    "uniform_workload",
    "zipf_clustered_workload",
    "drifting_zipf_workload",
    "flash_crowd_workload",
    "mixed_workload",
]

def as_generator(rng: "int | np.integer | np.random.Generator | None") -> np.random.Generator:
    """Normalise a seed-or-generator argument into a ``Generator``.

    All workload generators accept either form, so call sites can pass a
    plain int seed (``uniform_workload(3, 100, rng=7)``) without first
    constructing ``np.random.default_rng(7)`` themselves, while callers
    that thread one generator through several generators keep doing so. A
    ``Generator`` instance is returned unchanged (no reseeding).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is not None and not isinstance(rng, (int, np.integer)):
        raise TypeError(
            f"rng must be an int seed, a numpy Generator or None, "
            f"got {type(rng).__name__}"
        )
    return np.random.default_rng(rng)


def frozen_array(value: np.ndarray, shape_name: str) -> np.ndarray:
    """Defensive read-only copy for frozen dataclass fields.

    Storing the caller's array directly would alias it: a caller mutating
    its query vector in place afterwards would silently corrupt recorded
    accounting and workload replay.
    """
    arr = np.array(value, dtype=np.float64, copy=True)
    if arr.ndim != 1:
        raise ValueError(f"{shape_name} must be a 1-d vector")
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class Request:
    """One top-k request in a workload stream.

    The ``weights`` vector is copied and frozen on construction, so the
    request stays replayable even if the caller reuses its buffer.
    """

    weights: np.ndarray
    k: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "weights", frozen_array(self.weights, "weights")
        )


@dataclass(frozen=True)
class InsertOp:
    """Insert a new record at ``point`` (the engine assigns the rid)."""

    point: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", frozen_array(self.point, "point"))


@dataclass(frozen=True)
class DeleteOp:
    """Delete the live record ``rid``."""

    rid: int


@dataclass
class Workload:
    """An ordered stream of serving operations (reads and/or updates)."""

    requests: list
    #: How the stream was generated (for report provenance).
    kind: str = "custom"
    params: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def reads(self) -> int:
        return sum(isinstance(op, Request) for op in self.requests)

    @property
    def updates(self) -> int:
        return sum(isinstance(op, (InsertOp, DeleteOp)) for op in self.requests)


def op_batches(ops: list):
    """Group an operation stream for batched serving.

    Yields maximal runs of consecutive :class:`Request`\\ s as lists (one
    batched membership evaluation each) and every update operation on its
    own — preserving stream order, so updates apply at exactly the
    positions a sequential run would. The engine's batch-aware runner
    (``GIREngine.run(workload, batch=True)``) is built on this.
    """
    i = 0
    while i < len(ops):
        if isinstance(ops[i], Request):
            j = i
            while j < len(ops) and isinstance(ops[j], Request):
                j += 1
            yield ops[i:j]
            i = j
        else:
            yield ops[i]
            i += 1


def _interior(q: np.ndarray) -> np.ndarray:
    """Clip a query vector to the open interior of the unit box — zero or
    negative weights are degenerate for ranking (see GIRCache docs)."""
    return np.clip(q, 0.01, 1.0)


def uniform_workload(
    d: int,
    count: int,
    k: int = 10,
    rng: "int | np.random.Generator | None" = None,
) -> Workload:
    """I.i.d. uniform query vectors away from the query-space walls.

    ``rng`` accepts an int seed or a ready generator (:func:`as_generator`).
    """
    rng = as_generator(rng)
    requests = [
        Request(weights=rng.random(d) * 0.8 + 0.1, k=k) for _ in range(count)
    ]
    return Workload(
        requests=requests,
        kind="uniform",
        params={"d": float(d), "count": float(count), "k": float(k)},
    )


def zipf_clustered_workload(
    d: int,
    count: int,
    k: int = 10,
    clusters: int = 8,
    zipf_s: float = 1.1,
    spread: float = 0.01,
    rng: "int | np.random.Generator | None" = None,
) -> Workload:
    """Zipf-popular preference archetypes with per-user Gaussian tweaks.

    Parameters
    ----------
    clusters:
        Number of archetype centres, drawn uniform in ``[0.15, 0.85]^d``.
    zipf_s:
        Skew of the (truncated) Zipf law over archetype popularity;
        ``P(rank r) ∝ r^{-s}``. Higher values concentrate traffic.
    spread:
        Standard deviation of the per-query tweak around the archetype.
    rng:
        Int seed or ready generator (:func:`as_generator`).
    """
    if clusters <= 0:
        raise ValueError("clusters must be positive")
    rng = as_generator(rng)
    centres = rng.random((clusters, d)) * 0.7 + 0.15
    ranks = np.arange(1, clusters + 1, dtype=np.float64)
    probs = ranks**-zipf_s
    probs /= probs.sum()
    picks = rng.choice(clusters, size=count, p=probs)
    requests = [
        Request(
            weights=_interior(centres[c] + rng.normal(0.0, spread, d)), k=k
        )
        for c in picks
    ]
    return Workload(
        requests=requests,
        kind="zipf_clustered",
        params={
            "d": float(d),
            "count": float(count),
            "k": float(k),
            "clusters": float(clusters),
            "zipf_s": float(zipf_s),
            "spread": float(spread),
        },
    )


def drifting_zipf_workload(
    d: int,
    count: int,
    k: int = 10,
    clusters: int = 8,
    zipf_s: float = 1.1,
    spread: float = 0.01,
    phases: int = 4,
    carryover: float = 0.25,
    rng: "int | np.random.Generator | None" = None,
) -> Workload:
    """Zipf-clustered reads whose *hot spot drifts* over the run.

    The stream is split into ``phases`` equal segments. Each phase is a
    Zipf-clustered stream of its own, but the popularity ranking over the
    (fixed) archetype centres is re-dealt at every phase boundary: a new
    head archetype becomes hot and the previous phase's traffic goes
    cold, except for a ``carryover`` fraction of each phase's queries
    that still follow the *previous* ranking (real migrations overlap).

    This is the regime that separates recency-only eviction from
    value-aware eviction: when the hot spot moves, LRU has filled the
    cache with small per-tweak regions of the dead hot spot, while a
    volume×cost score retains the wide regions that keep serving traffic
    across phases.
    """
    if clusters <= 0:
        raise ValueError("clusters must be positive")
    if phases <= 0:
        raise ValueError("phases must be positive")
    if not 0.0 <= carryover <= 1.0:
        raise ValueError("carryover must be in [0, 1]")
    rng = as_generator(rng)
    centres = rng.random((clusters, d)) * 0.7 + 0.15
    ranks = np.arange(1, clusters + 1, dtype=np.float64)
    probs = ranks**-zipf_s
    probs /= probs.sum()
    # rank -> archetype assignment, re-dealt per phase.
    order = rng.permutation(clusters)
    prev_order = order
    requests: list = []
    bounds = np.linspace(0, count, phases + 1).astype(int)
    for phase in range(phases):
        if phase:
            prev_order = order
            order = rng.permutation(clusters)
        for _ in range(bounds[phase + 1] - bounds[phase]):
            deal = prev_order if rng.random() < carryover else order
            c = deal[rng.choice(clusters, p=probs)]
            requests.append(
                Request(
                    weights=_interior(centres[c] + rng.normal(0.0, spread, d)),
                    k=k,
                )
            )
    return Workload(
        requests=requests,
        kind="drifting_zipf",
        params={
            "d": float(d),
            "count": float(count),
            "k": float(k),
            "clusters": float(clusters),
            "zipf_s": float(zipf_s),
            "spread": float(spread),
            "phases": float(phases),
            "carryover": float(carryover),
        },
    )


def flash_crowd_workload(
    d: int,
    count: int,
    k: int = 10,
    hot: int = 4,
    burst_len: int = 24,
    duplicate_fraction: float = 0.85,
    spread: float = 0.004,
    background_fraction: float = 0.25,
    rng: "int | np.random.Generator | None" = None,
) -> Workload:
    """Duplicate-heavy request bursts over a small hot weight set.

    The stream alternates between single *background* reads (i.i.d.
    uniform, the cold traffic) and *bursts*: ``burst_len`` consecutive
    requests aimed at one of ``hot`` fixed hot vectors, of which a
    ``duplicate_fraction`` are byte-exact duplicates of the hot vector
    and the rest tiny Gaussian tweaks (``spread``) around it. A burst
    models a flash crowd — many users issuing the *same* preference at
    once — which is precisely the traffic the GIR invariant collapses:
    every request in the burst is certified by the one region the first
    request computes.

    Parameters
    ----------
    hot:
        Number of distinct hot vectors bursts draw from.
    burst_len:
        Requests per burst (the last burst may be truncated by ``count``).
    duplicate_fraction:
        Fraction of a burst that repeats the hot vector exactly.
    spread:
        Std-dev of the tweak applied to the non-duplicate remainder.
    background_fraction:
        Approximate fraction of the stream that is background singles.
    rng:
        Int seed or ready generator (:func:`as_generator`).
    """
    if hot <= 0:
        raise ValueError("hot must be positive")
    if burst_len <= 0:
        raise ValueError("burst_len must be positive")
    if spread < 0.0:
        raise ValueError("spread must be non-negative")
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError("duplicate_fraction must be in [0, 1]")
    if not 0.0 <= background_fraction < 1.0:
        raise ValueError("background_fraction must be in [0, 1)")
    rng = as_generator(rng)
    hot_vectors = rng.random((hot, d)) * 0.7 + 0.15
    # One background single "costs" 1 op, one burst costs burst_len; emit
    # singles at the rate that makes their realised share match.
    p_single = (
        background_fraction
        * burst_len
        / (1.0 - background_fraction + background_fraction * burst_len)
    )
    requests: list = []
    while len(requests) < count:
        if rng.random() < p_single:
            requests.append(Request(weights=rng.random(d) * 0.8 + 0.1, k=k))
            continue
        centre = hot_vectors[int(rng.integers(hot))]
        for _ in range(min(burst_len, count - len(requests))):
            if rng.random() < duplicate_fraction:
                weights = centre
            else:
                weights = _interior(centre + rng.normal(0.0, spread, d))
            requests.append(Request(weights=weights, k=k))
    return Workload(
        requests=requests,
        kind="flash_crowd",
        params={
            "d": float(d),
            "count": float(count),
            "k": float(k),
            "hot": float(hot),
            "burst_len": float(burst_len),
            "duplicate_fraction": float(duplicate_fraction),
            "spread": float(spread),
            "background_fraction": float(background_fraction),
        },
    )


def mixed_workload(
    d: int,
    count: int,
    base_n: int,
    k: int = 10,
    update_fraction: float = 0.2,
    insert_ratio: float = 0.5,
    batch_size: int = 4,
    read_kind: str = "zipf_clustered",
    clusters: int = 8,
    zipf_s: float = 1.1,
    spread: float = 0.01,
    rng: "int | np.random.Generator | None" = None,
) -> Workload:
    """A read stream with update bursts blended in.

    Reads follow ``read_kind`` (``"zipf_clustered"`` default, or
    ``"uniform"``); roughly ``update_fraction`` of the ``count`` operations
    are updates, emitted in bursts of up to ``batch_size`` consecutive ops
    (mimicking batched ingest). Each update is an insert of a fresh
    uniform record with probability ``insert_ratio``, else a delete of a
    uniformly chosen live rid. The generator tracks liveness itself under
    the engine's sequential-rid contract (``base_n`` initial records;
    the ``i``-th insert lands at rid ``base_n + i``) and never shrinks the
    table below ``max(2k, 1)`` live records.

    Parameters
    ----------
    base_n:
        Number of live records in the table the stream will be served
        against (rids ``0 .. base_n-1``).
    update_fraction:
        Target fraction of operations that are updates, in ``[0, 1)``.
    insert_ratio:
        Fraction of updates that are inserts (the rest are deletes).
    batch_size:
        Maximum length of one update burst.
    rng:
        Int seed or ready generator (:func:`as_generator`).
    """
    if not 0.0 <= update_fraction < 1.0:
        raise ValueError("update_fraction must be in [0, 1)")
    if not 0.0 <= insert_ratio <= 1.0:
        raise ValueError("insert_ratio must be in [0, 1]")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if base_n <= 2 * k:
        raise ValueError("base_n must exceed 2k so deletes stay safe")
    rng = as_generator(rng)
    if read_kind == "uniform":
        reads = uniform_workload(d, count, k=k, rng=rng).requests
    elif read_kind == "zipf_clustered":
        reads = zipf_clustered_workload(
            d, count, k=k, clusters=clusters, zipf_s=zipf_s,
            spread=spread, rng=rng,
        ).requests
    else:
        raise ValueError(
            f"unknown read_kind {read_kind!r}; "
            "expected 'uniform' or 'zipf_clustered'"
        )

    live = list(range(base_n))
    next_rid = base_n
    min_live = max(2 * k, 1)
    ops: list = []
    read_iter = iter(reads)
    # A burst emits ~(1+batch_size)/2 updates; start bursts at the rate
    # that makes the realised update share match `update_fraction`.
    mean_burst = (1 + batch_size) / 2.0
    p_burst = update_fraction / (
        mean_burst * (1.0 - update_fraction) + update_fraction
    )
    while len(ops) < count:
        if rng.random() < p_burst:
            burst = int(rng.integers(1, batch_size + 1))
            for _ in range(burst):
                if len(ops) >= count:
                    break
                if rng.random() < insert_ratio or len(live) <= min_live:
                    ops.append(InsertOp(point=rng.random(d)))
                    live.append(next_rid)
                    next_rid += 1
                else:
                    idx = int(rng.integers(len(live)))
                    live[idx], live[-1] = live[-1], live[idx]
                    ops.append(DeleteOp(rid=live.pop()))
        else:
            ops.append(next(read_iter))
    return Workload(
        requests=ops,
        kind=f"mixed_{read_kind}",
        params={
            "d": float(d),
            "count": float(count),
            "k": float(k),
            "base_n": float(base_n),
            "update_fraction": float(update_fraction),
            "insert_ratio": float(insert_ratio),
            "batch_size": float(batch_size),
            "clusters": float(clusters),
            "zipf_s": float(zipf_s),
            "spread": float(spread),
        },
    )
