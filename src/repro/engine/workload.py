"""Query-stream generators for the serving layer.

A workload is an ordered stream of ``(weights, k)`` requests. Two stream
shapes cover the interesting ends of the caching spectrum:

* :func:`uniform_workload` — every user has independent taste; query
  vectors are i.i.d. uniform over the (interior of the) weight space.
  The worst case for GIR caching: hits happen only when GIRs are large.
* :func:`zipf_clustered_workload` — users form preference archetypes
  ("clusters") whose popularity is Zipf-distributed, each user being an
  archetype plus a small personal tweak. This is the situation Section 1's
  result-caching application exploits — most traffic lands in a few hot
  regions of weight space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Request", "Workload", "uniform_workload", "zipf_clustered_workload"]


@dataclass(frozen=True)
class Request:
    """One top-k request in a workload stream."""

    weights: np.ndarray
    k: int


@dataclass
class Workload:
    """An ordered stream of top-k requests."""

    requests: list[Request]
    #: How the stream was generated (for report provenance).
    kind: str = "custom"
    params: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)


def _interior(q: np.ndarray) -> np.ndarray:
    """Clip a query vector to the open interior of the unit box — zero or
    negative weights are degenerate for ranking (see GIRCache docs)."""
    return np.clip(q, 0.01, 1.0)


def uniform_workload(
    d: int,
    count: int,
    k: int = 10,
    rng: np.random.Generator | None = None,
) -> Workload:
    """I.i.d. uniform query vectors away from the query-space walls."""
    rng = rng or np.random.default_rng()
    requests = [
        Request(weights=rng.random(d) * 0.8 + 0.1, k=k) for _ in range(count)
    ]
    return Workload(
        requests=requests,
        kind="uniform",
        params={"d": float(d), "count": float(count), "k": float(k)},
    )


def zipf_clustered_workload(
    d: int,
    count: int,
    k: int = 10,
    clusters: int = 8,
    zipf_s: float = 1.1,
    spread: float = 0.01,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Zipf-popular preference archetypes with per-user Gaussian tweaks.

    Parameters
    ----------
    clusters:
        Number of archetype centres, drawn uniform in ``[0.15, 0.85]^d``.
    zipf_s:
        Skew of the (truncated) Zipf law over archetype popularity;
        ``P(rank r) ∝ r^{-s}``. Higher values concentrate traffic.
    spread:
        Standard deviation of the per-query tweak around the archetype.
    """
    if clusters <= 0:
        raise ValueError("clusters must be positive")
    rng = rng or np.random.default_rng()
    centres = rng.random((clusters, d)) * 0.7 + 0.15
    ranks = np.arange(1, clusters + 1, dtype=np.float64)
    probs = ranks**-zipf_s
    probs /= probs.sum()
    picks = rng.choice(clusters, size=count, p=probs)
    requests = [
        Request(
            weights=_interior(centres[c] + rng.normal(0.0, spread, d)), k=k
        )
        for c in picks
    ]
    return Workload(
        requests=requests,
        kind="zipf_clustered",
        params={
            "d": float(d),
            "count": float(count),
            "k": float(k),
            "clusters": float(clusters),
            "zipf_s": float(zipf_s),
            "spread": float(spread),
        },
    )
