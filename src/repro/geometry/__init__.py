"""Computational-geometry substrate for GIR computation.

* :mod:`repro.geometry.predicates` — dominance and facet-sidedness tests
  with explicit tolerances;
* :mod:`repro.geometry.halfspace` — half-spaces of query space whose
  bounding hyperplanes pass through the origin (Section 3.2), plus their
  provenance (which records induced them);
* :mod:`repro.geometry.convexhull` — a from-scratch incremental convex hull
  (Clarkson-style beneath-and-beyond) for any d ≥ 2, cross-checked against
  scipy's qhull in the tests;
* :mod:`repro.geometry.incident_facets` — the *facet fan*: incremental
  maintenance of only the hull facets incident to an apex point, the core
  data structure of the paper's FP algorithm (Section 6.3);
* :mod:`repro.geometry.polytope` — H-representation polytopes with interior
  points, vertex enumeration, volumes and axis projections (via scipy's
  qhull bindings, the same library the paper uses).
"""

from repro.geometry.convexhull import IncrementalHull, hull_vertex_ids, qhull_facet_count
from repro.geometry.halfspace import Halfspace, order_halfspace, separation_halfspace
from repro.geometry.incident_facets import FacetFan
from repro.geometry.polytope import Polytope
from repro.geometry.predicates import dominates, dominates_matrix

__all__ = [
    "dominates",
    "dominates_matrix",
    "Halfspace",
    "order_halfspace",
    "separation_halfspace",
    "IncrementalHull",
    "hull_vertex_ids",
    "qhull_facet_count",
    "FacetFan",
    "Polytope",
]
