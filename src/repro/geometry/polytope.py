"""Convex polytopes in H-representation, for GIR regions.

The GIR is an intersection of half-spaces through the origin, clipped to the
query space ``[0,1]^d`` (Section 3.2): a polyhedral cone ∩ unit box. This
module wraps that as a general ``A x ≤ b`` polytope and provides, on top of
scipy's qhull bindings (the library the paper itself uses for half-space
intersection):

* a strictly interior point via the Chebyshev centre (linear program);
* vertex enumeration (``scipy.spatial.HalfspaceIntersection``);
* exact volume (qhull) — the paper's sensitivity measure is
  ``vol(GIR) / vol(query space)`` (Figure 14);
* per-axis intervals through a base point — the paper's *interactive
  projection* visualisation, which recovers the LIRs of [24] (Section 7.3);
* redundancy classification of constraints (which half-spaces actually
  bound the region — these carry the result perturbations of Section 3.2);
* uniform sampling, used by the test-suite's semantic checks.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.spatial import ConvexHull, HalfspaceIntersection, QhullError
from repro.core.tolerances import (
    COEFFICIENT_EPS,
    CONTAINMENT_TOL,
    DEGENERATE_RADIUS,
    EXACT_TOL,
    MEMBERSHIP_TOL,
)

__all__ = ["Polytope"]

_DEGENERATE_RADIUS = DEGENERATE_RADIUS


class Polytope:
    """The region ``{x : A x ≤ b}``.

    Rows of ``A`` keep their index identity so callers can map facet-ness
    back to the half-space (and hence the record pair) that produced each
    row. Use :meth:`from_unit_box` / :meth:`with_constraints` to build.
    """

    def __init__(self, A: np.ndarray, b: np.ndarray) -> None:
        A = np.asarray(A, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if A.ndim != 2 or b.ndim != 1 or A.shape[0] != b.shape[0]:
            raise ValueError("need A of shape (m, d) and b of shape (m,)")
        self.A = A
        self.b = b
        self._cheb: tuple[np.ndarray, float] | None = None
        self._vertices: np.ndarray | None = None
        #: True when the cached vertex set came from an un-joggled qhull
        #: run (reliable to ~1e-12); False for the QJ fallback or an empty
        #: result. Consumers needing sound bounds (the region index's
        #: insert prescreen) must check this.
        self._vertices_exact = False
        self._normalized: tuple[np.ndarray, np.ndarray] | None = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_unit_box(cls, d: int) -> "Polytope":
        """The query space ``[0, 1]^d``."""
        eye = np.eye(d)
        A = np.vstack([eye, -eye])
        b = np.concatenate([np.ones(d), np.zeros(d)])
        return cls(A, b)

    @classmethod
    def intersection(cls, polytopes: "Sequence[Polytope]") -> "Polytope":
        """Intersection of several polytopes over the same query space.

        Pure row stacking: the result's constraint rows are the rows of
        every input in order (``polytopes[0]`` first), so callers that
        track row identity (e.g. via an offset) can still map rows back to
        their source. Redundant duplicates — such as each input's unit-box
        rows — are kept; they cost a few extra matvec rows but preserve
        the identity bookkeeping. This is the primitive behind the sharded
        serving tier's cross-shard region merge: the global result is
        stable wherever *every* shard's local region holds (plus the
        merge-order half-spaces the cluster adds on top).
        """
        polys = list(polytopes)
        if not polys:
            raise ValueError("need at least one polytope to intersect")
        d = polys[0].d
        if any(p.d != d for p in polys):
            raise ValueError("all polytopes must share one dimensionality")
        if len(polys) == 1:
            return cls(polys[0].A.copy(), polys[0].b.copy())
        return cls(
            np.vstack([p.A for p in polys]),
            np.concatenate([p.b for p in polys]),
        )

    def with_constraints(self, normals: np.ndarray) -> "Polytope":
        """Intersect with half-spaces ``normal · x ≥ 0`` (GIR conditions).

        ``normals`` is ``(m, d)``; rows are appended in order after the
        existing rows, preserving index identity.
        """
        normals = np.atleast_2d(np.asarray(normals, dtype=np.float64))
        if normals.size == 0:
            return Polytope(self.A.copy(), self.b.copy())
        A = np.vstack([self.A, -normals])
        b = np.concatenate([self.b, np.zeros(normals.shape[0])])
        return Polytope(A, b)

    @property
    def d(self) -> int:
        return int(self.A.shape[1])

    @property
    def m(self) -> int:
        """Number of constraints."""
        return int(self.A.shape[0])

    # -- byte serialisation ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Exact little-endian serialisation of the H-representation.

        Layout: ``<qq`` (m, d) header followed by the ``A`` rows and the
        ``b`` vector as ``<f8``. The round trip through :meth:`from_bytes`
        is bit-exact — row order and every float64 payload are preserved —
        which is what lets the sharded cluster's process backend ship GIR
        regions across the wire without perturbing the merged-region
        geometry (see :mod:`repro.cluster.wire` for framing/versioning).
        """
        return (
            struct.pack("<qq", self.m, self.d)
            + np.ascontiguousarray(self.A, dtype="<f8").tobytes()
            + np.ascontiguousarray(self.b, dtype="<f8").tobytes()
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Polytope":
        """Reconstruct a polytope serialised by :meth:`to_bytes`.

        Malformed payloads raise :class:`ValueError`.
        """
        if len(payload) < 16:
            raise ValueError(
                f"polytope payload of {len(payload)} bytes is shorter than "
                f"the 16-byte header"
            )
        m, d = struct.unpack_from("<qq", payload, 0)
        if m < 0 or d <= 0:
            raise ValueError(f"malformed polytope header (m={m}, d={d})")
        need = 16 + 8 * m * d + 8 * m
        if len(payload) != need:
            raise ValueError(
                f"polytope payload of {len(payload)} bytes, expected {need}"
            )
        A = np.frombuffer(payload, dtype="<f8", count=m * d, offset=16)
        b = np.frombuffer(payload, dtype="<f8", count=m, offset=16 + 8 * m * d)
        return cls(A.reshape(m, d).copy(), b.copy())

    # -- membership ----------------------------------------------------------------

    def normalized_halfspaces(self) -> tuple[np.ndarray, np.ndarray]:
        """``(A_n, b_n)`` with every row of ``A`` scaled to unit norm (rows of
        zero norm are kept as-is).

        Membership tests use these so the tolerance is *norm-relative*: with
        the raw rows, ``A x ≤ b + tol`` makes nearness-to-a-facet depend on
        the row's scale — a half-space built from two nearly coincident
        records (tiny normal) would accept points far beyond its facet while
        a rescaled copy of the same region would reject them. Computed once
        and cached; the arrays are shared (read-only by convention) with
        :class:`repro.core.region_index.RegionIndex`, which stacks them so
        one global tolerance applies across all cached regions.
        """
        if self._normalized is None:
            norms = np.linalg.norm(self.A, axis=1)
            scale = np.where(norms > 0.0, norms, 1.0)
            self._normalized = (self.A / scale[:, None], self.b / scale)
        return self._normalized

    def contains(self, x: np.ndarray, tol: float = MEMBERSHIP_TOL) -> bool:
        """Membership with a norm-relative tolerance (see
        :meth:`normalized_halfspaces`)."""
        x = np.asarray(x, dtype=np.float64)
        A_n, b_n = self.normalized_halfspaces()
        return bool((A_n @ x <= b_n + tol).all())

    def contains_batch(self, X: np.ndarray, tol: float = MEMBERSHIP_TOL) -> np.ndarray:
        """Vectorized membership of many points at once.

        ``X`` is ``(m, d)``; returns a boolean ``(m,)`` array, row ``i``
        agreeing with ``contains(X[i])`` (same normalized rows, same
        tolerance). One matmul instead of ``m`` Python-level loops — the
        primitive behind the serving layer's batched cache lookup.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.d:
            raise ValueError(f"X must have shape (m, {self.d})")
        A_n, b_n = self.normalized_halfspaces()
        return (X @ A_n.T <= b_n + tol).all(axis=1)

    def slacks(self, x: np.ndarray) -> np.ndarray:
        """Per-constraint slack ``b − A x`` (negative = violated)."""
        return self.b - self.A @ np.asarray(x, dtype=np.float64)

    # -- interior ------------------------------------------------------------------

    def chebyshev_center(self) -> tuple[np.ndarray, float]:
        """Centre and radius of the largest inscribed ball.

        Radius ``<= 0`` (practically, below ``1e-11``) means the region is
        empty or lower-dimensional.
        """
        if self._cheb is not None:
            return self._cheb
        norms = np.linalg.norm(self.A, axis=1)
        # Variables (x, r): maximise r  s.t.  A x + ||A_i|| r <= b, r >= 0.
        c = np.zeros(self.d + 1)
        c[-1] = -1.0
        A_ub = np.hstack([self.A, norms[:, None]])
        bounds = [(None, None)] * self.d + [(0, None)]
        res = linprog(c, A_ub=A_ub, b_ub=self.b, bounds=bounds, method="highs")
        if not res.success:
            self._cheb = (np.full(self.d, np.nan), -1.0)
        else:
            self._cheb = (res.x[: self.d], float(res.x[-1]))
        return self._cheb

    def is_empty(self, tol: float = _DEGENERATE_RADIUS) -> bool:
        """True when the region has no full-dimensional interior."""
        return self.chebyshev_center()[1] <= tol

    # -- vertices & volume ------------------------------------------------------------

    def vertices(self) -> np.ndarray:
        """Vertex set via qhull half-space intersection.

        Empty array when the region is empty or lower-dimensional.
        """
        if self._vertices is not None:
            return self._vertices
        centre, radius = self.chebyshev_center()
        if radius <= _DEGENERATE_RADIUS:
            self._vertices = np.empty((0, self.d))
            return self._vertices
        halfspaces = np.hstack([self.A, -self.b[:, None]])
        exact = True
        try:
            hs = HalfspaceIntersection(halfspaces, centre)
            verts = hs.intersections
        except QhullError:
            exact = False
            try:
                hs = HalfspaceIntersection(halfspaces, centre, qhull_options="QJ")
                verts = hs.intersections
            except QhullError:
                self._vertices = np.empty((0, self.d))
                return self._vertices
        verts = verts[np.isfinite(verts).all(axis=1)]
        # Deduplicate (qhull reports one point per facet-intersection).
        if len(verts):
            verts = np.unique(np.round(verts, 12), axis=0)
        self._vertices = verts
        self._vertices_exact = exact and bool(len(verts))
        return self._vertices

    @property
    def vertices_exact(self) -> bool:
        """Whether :meth:`vertices` produced a reliable (un-joggled) vertex
        set — computes it on first access."""
        self.vertices()
        return self._vertices_exact

    def volume(self) -> float:
        """Euclidean volume; 0 for empty / lower-dimensional regions.

        Falls back to Monte-Carlo estimation when qhull cannot triangulate
        the vertex set (near-degenerate high-dimensional regions), per the
        approximate-representation route of Section 7.2.
        """
        verts = self.vertices()
        if verts.shape[0] < self.d + 1:
            return 0.0
        try:
            return float(ConvexHull(verts).volume)
        except QhullError:
            try:
                return float(ConvexHull(verts, qhull_options="QJ").volume)
            except QhullError:
                return self.volume_monte_carlo()

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box of the region (one LP per bound)."""
        lo = np.empty(self.d)
        hi = np.empty(self.d)
        for axis in range(self.d):
            c = np.zeros(self.d)
            c[axis] = 1.0
            res = linprog(c, A_ub=self.A, b_ub=self.b, bounds=[(None, None)] * self.d, method="highs")
            lo[axis] = res.fun if res.success else np.nan
            res = linprog(-c, A_ub=self.A, b_ub=self.b, bounds=[(None, None)] * self.d, method="highs")
            hi[axis] = -res.fun if res.success else np.nan
        return lo, hi

    def volume_monte_carlo(
        self, samples: int = 200_000, rng: np.random.Generator | None = None
    ) -> float:
        """Monte-Carlo volume: rejection sampling in the bounding box.

        Used as the high-dimensional fallback where exact vertex
        triangulation becomes numerically fragile (Section 7.2 suggests
        exactly this approximation for hard regions).
        """
        if self.is_empty():
            return 0.0
        rng = rng or np.random.default_rng(0)
        lo, hi = self.bounding_box()
        if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
            return 0.0
        extent = hi - lo
        box_volume = float(np.prod(extent))
        if box_volume <= 0:
            return 0.0
        pts = lo + rng.random((samples, self.d)) * extent
        inside = (pts @ self.A.T <= self.b + EXACT_TOL).all(axis=1)
        return box_volume * float(inside.mean())

    # -- linear optimisation ---------------------------------------------------------------

    def maximize(self, c: np.ndarray) -> float:
        """Maximum of the linear objective ``c · x`` over the region.

        Returns ``-inf`` for an infeasible (empty) region and ``+inf``
        when the objective is unbounded over it. This is the primitive
        behind the dynamic engine's halfspace-intersection invalidation
        test: an inserted record threatens a cached GIR iff the score gap
        to the k-th result record is positive somewhere in the region,
        i.e. iff ``maximize(g(p_new) − g(p_k)) > 0``.
        """
        c = np.asarray(c, dtype=np.float64)
        if c.shape != (self.d,):
            raise ValueError(f"objective must have shape ({self.d},)")
        res = linprog(
            -c,
            A_ub=self.A,
            b_ub=self.b,
            bounds=[(None, None)] * self.d,
            method="highs",
        )
        if res.status == 3:  # unbounded
            return float("inf")
        if not res.success:
            return float("-inf")
        return float(-res.fun)

    # -- projections ---------------------------------------------------------------------

    def axis_interval(self, axis: int, base: np.ndarray) -> tuple[float, float]:
        """Range of coordinate ``axis`` when the other coordinates stay at
        ``base`` — the paper's interactive projection (Figure 13(b)), which
        equals the LIR of [24] for that axis.

        Returns an empty interval ``(nan, nan)`` if the line misses the
        region entirely.
        """
        base = np.asarray(base, dtype=np.float64)
        if base.shape != (self.d,):
            raise ValueError(f"base must have shape ({self.d},)")
        coeff = self.A[:, axis]
        rest = self.b - self.A @ base + coeff * base[axis]
        lo, hi = -np.inf, np.inf
        for a, r in zip(coeff, rest):
            if a > COEFFICIENT_EPS:
                hi = min(hi, r / a)
            elif a < -COEFFICIENT_EPS:
                lo = max(lo, r / a)
            elif r < -MEMBERSHIP_TOL:
                return (float("nan"), float("nan"))
        if lo > hi + EXACT_TOL:
            return (float("nan"), float("nan"))
        return (float(lo), float(hi))

    # -- facet classification -----------------------------------------------------------

    def facet_mask(self, tol: float = MEMBERSHIP_TOL) -> np.ndarray:
        """Boolean mask over constraint rows: True where the constraint is
        *non-redundant* (supports a facet of the region).

        Decided by one LP per row: maximise ``A_i x`` subject to all other
        constraints; the row is a facet iff the optimum exceeds ``b_i``.
        """
        m = self.m
        mask = np.zeros(m, dtype=bool)
        for i in range(m):
            keep = np.arange(m) != i
            res = linprog(
                -self.A[i],
                A_ub=self.A[keep],
                b_ub=self.b[keep] ,
                bounds=[(None, None)] * self.d,
                method="highs",
            )
            if res.status == 3:  # unbounded without this row => facet
                mask[i] = True
            elif res.success and -res.fun > self.b[i] + tol:
                mask[i] = True
        return mask

    # -- containment of another polytope ---------------------------------------------------

    def contains_polytope(self, other: "Polytope", tol: float = CONTAINMENT_TOL) -> bool:
        """True iff ``other ⊆ self`` (one LP per constraint of ``self``)."""
        if other.is_empty():
            return True
        for i in range(self.m):
            res = linprog(
                -self.A[i],
                A_ub=other.A,
                b_ub=other.b,
                bounds=[(None, None)] * self.d,
                method="highs",
            )
            if res.status == 3:
                return False
            if res.success and -res.fun > self.b[i] + tol:
                return False
        return True

    # -- sampling -------------------------------------------------------------------------

    def sample(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Random points inside the region (Dirichlet mixtures of vertices).

        Not uniform, but supported exactly on the region — sufficient for
        semantic spot checks. Returns ``(count, d)``; empty array if the
        region has no vertices.
        """
        rng = rng or np.random.default_rng(0)
        verts = self.vertices()
        if verts.shape[0] == 0:
            return np.empty((0, self.d))
        weights = rng.dirichlet(np.ones(verts.shape[0]), size=count)
        return weights @ verts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polytope(d={self.d}, m={self.m})"
