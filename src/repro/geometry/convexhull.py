"""Convex hulls: a from-scratch incremental algorithm plus qhull helpers.

The paper's CP method computes the convex hull of the skyline records with
Clarkson's randomized incremental algorithm, and FP shares its key update
(beneath-and-beyond with horizon ridges, Section 6.3.1). We provide:

* :class:`IncrementalHull` — a clean-room incremental hull for any ``d ≥ 2``
  that exposes facets and vertices. It processes points one by one: points
  above one or more facets replace the visible facets with new ones through
  the horizon ridges, exactly the operation the paper builds FP on. Used as
  the didactic reference and cross-checked against qhull in the tests.
* :func:`hull_vertex_ids` / :func:`qhull_facet_count` — thin wrappers around
  ``scipy.spatial.ConvexHull`` (the same Qhull library the paper links
  against) with degeneracy fallbacks; used on large inputs.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import ConvexHull
from scipy.spatial import QhullError

from repro.geometry.predicates import EPS, affine_rank_basis
from repro.core.tolerances import EXACT_TOL

__all__ = ["HullFacet", "IncrementalHull", "hull_vertex_ids", "qhull_facet_count", "DegenerateInputError"]


class DegenerateInputError(ValueError):
    """Raised when the input points do not span a full-dimensional hull."""


class HullFacet:
    """A simplicial hull facet: ``d`` vertex indices, outward normal and
    offset such that the hull interior satisfies ``normal · x < offset``."""

    __slots__ = ("vertices", "normal", "offset")

    def __init__(self, vertices: frozenset[int], normal: np.ndarray, offset: float):
        self.vertices = vertices
        self.normal = normal
        self.offset = offset

    def is_above(self, point: np.ndarray, eps: float = EPS) -> bool:
        """Strictly outside test (coplanar counts as not above)."""
        return float(self.normal @ point) > self.offset + eps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HullFacet(vertices={sorted(self.vertices)})"


def _facet_geometry(
    points: np.ndarray, vertices: tuple[int, ...], below_ref: np.ndarray
) -> tuple[np.ndarray, float] | None:
    """Outward normal/offset of the hyperplane through ``vertices``,
    oriented so ``below_ref`` lies strictly below. ``None`` if degenerate."""
    vs = points[list(vertices)]
    base = vs[0]
    edges = vs[1:] - base
    # Null space of the edge matrix = facet normal direction.
    _, _, vt = np.linalg.svd(edges)
    normal = vt[-1]
    offset = float(normal @ base)
    side = float(normal @ below_ref) - offset
    if abs(side) <= EXACT_TOL:
        return None
    if side > 0:
        normal = -normal
        offset = -offset
    return normal, float(offset)


class IncrementalHull:
    """Incremental convex hull of a point set in ``d ≥ 2`` dimensions.

    Parameters
    ----------
    points:
        ``(m, d)`` array. The hull references points by their row index.
    eps:
        Sidedness tolerance; coplanar points are treated as interior, so
        reported vertices are strictly extreme points.

    Raises
    ------
    DegenerateInputError
        If the points do not span ``d`` dimensions.
    """

    def __init__(self, points: np.ndarray, eps: float = EPS) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be an (m, d) array")
        m, d = points.shape
        if d < 2:
            raise ValueError("hulls require d >= 2")
        if m < d + 1:
            raise DegenerateInputError(f"need at least {d + 1} points, got {m}")
        self.points = points
        self.eps = eps
        self.facets: dict[int, HullFacet] = {}
        self._next_facet_id = 0
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        points, d = self.points, self.points.shape[1]
        apex = points[0]
        rest = [points[i] for i in range(1, len(points))]
        basis = affine_rank_basis(apex, rest, d)
        if len(basis) < d:
            raise DegenerateInputError("points span fewer than d dimensions")
        simplex = [0] + [i + 1 for i in basis]
        self._interior = points[simplex].mean(axis=0)
        for skip in range(d + 1):
            verts = tuple(v for j, v in enumerate(simplex) if j != skip)
            geom = _facet_geometry(points, verts, self._interior)
            if geom is None:
                raise DegenerateInputError("initial simplex is flat")
            self._add_facet(frozenset(verts), *geom)
        used = set(simplex)
        for idx in range(len(points)):
            if idx not in used:
                self.add_point(idx)

    def _add_facet(self, vertices: frozenset[int], normal: np.ndarray, offset: float) -> None:
        self.facets[self._next_facet_id] = HullFacet(vertices, normal, offset)
        self._next_facet_id += 1

    # -- incremental update (beneath-and-beyond) ---------------------------

    def add_point(self, idx: int) -> bool:
        """Process point ``idx``; returns True if it extended the hull."""
        p = self.points[idx]
        visible = [fid for fid, f in self.facets.items() if f.is_above(p, self.eps)]
        if not visible:
            return False
        # Horizon ridges: (d-1)-subsets that appear in exactly one visible
        # facet (their other side is an invisible facet).
        ridge_count: dict[frozenset[int], int] = {}
        for fid in visible:
            for v in self.facets[fid].vertices:
                ridge = self.facets[fid].vertices - {v}
                ridge_count[ridge] = ridge_count.get(ridge, 0) + 1
        horizon = [r for r, c in ridge_count.items() if c == 1]
        for fid in visible:
            del self.facets[fid]
        for ridge in horizon:
            verts = ridge | {idx}
            geom = _facet_geometry(self.points, tuple(verts), self._interior)
            if geom is None:
                # Degenerate sliver (nearly collinear ridge + point); skip —
                # the neighbouring facets still cover the hull boundary up
                # to eps, which is the usual joggle-style resolution.
                continue
            self._add_facet(frozenset(verts), *geom)
        return True

    # -- queries ------------------------------------------------------------

    def vertex_ids(self) -> set[int]:
        """Indices of points on the hull boundary (strict extreme points)."""
        out: set[int] = set()
        for f in self.facets.values():
            out |= f.vertices
        return out

    def facet_count(self) -> int:
        return len(self.facets)

    def contains(self, point: np.ndarray, eps: float | None = None) -> bool:
        """Is ``point`` inside (or on) the hull?"""
        eps = self.eps if eps is None else eps
        p = np.asarray(point, dtype=np.float64)
        return all(not f.is_above(p, eps) for f in self.facets.values())


# -- qhull-backed helpers (large inputs) -------------------------------------


def hull_vertex_ids(points: np.ndarray) -> set[int]:
    """Indices of hull vertices via qhull, with degeneracy fallbacks.

    Inputs smaller than ``d + 2`` points, or inputs spanning a
    lower-dimensional flat, fall back to returning all (distinct) points —
    a safe over-approximation for CP's pruning purposes (extra records only
    add redundant half-spaces; they never change the GIR).
    """
    points = np.asarray(points, dtype=np.float64)
    m, d = points.shape
    if m <= d + 1:
        return set(range(m))
    try:
        return set(int(v) for v in ConvexHull(points).vertices)
    except QhullError:
        try:
            return set(int(v) for v in ConvexHull(points, qhull_options="QJ").vertices)
        except QhullError:
            return set(range(m))


def qhull_facet_count(points: np.ndarray) -> int:
    """Number of (simplicial) facets of the hull of ``points`` via qhull."""
    points = np.asarray(points, dtype=np.float64)
    try:
        return int(ConvexHull(points).simplices.shape[0])
    except QhullError:
        return int(ConvexHull(points, qhull_options="QJ").simplices.shape[0])
