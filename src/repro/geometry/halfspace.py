"""Half-spaces of query space and their provenance.

Every GIR condition (Definition 1) has the form ``(p − p') · q' ≥ 0`` — a
half-space whose bounding hyperplane passes through the origin of query
space (Section 3.2, footnote 2). Besides the normal vector we record
*which records induced the condition*, because the bounding half-spaces
directly encode the result perturbation at the GIR boundary:

* an **order** half-space ``(p_i − p_{i+1}) · q' ≥ 0`` → crossing it swaps
  the ranks of ``p_i`` and ``p_{i+1}``;
* a **separation** half-space ``(p_k − p) · q' ≥ 0`` → crossing it replaces
  the k-th result record with the non-result record ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.core.tolerances import EXACT_TOL

__all__ = ["Halfspace", "order_halfspace", "separation_halfspace"]


@dataclass(frozen=True)
class Halfspace:
    """The constraint ``normal · q' ≥ 0`` in query space.

    Attributes
    ----------
    normal:
        Coefficient vector ``a`` of the constraint ``a · q' ≥ 0``.
    kind:
        ``"order"`` (rank swap inside R), ``"separation"`` (non-result
        record overtaking p_k) or ``"virtual"`` (redundant scaffolding from
        FP seed points, see Section 6.2).
    upper:
        Record id that must keep the higher score (``p_i`` or ``p_k``).
    lower:
        Record id that must stay below (``p_{i+1}`` or the non-result
        record ``p``); ``None`` for virtual constraints.
    """

    normal: np.ndarray
    kind: str
    upper: int
    lower: int | None

    def __post_init__(self) -> None:
        normal = np.asarray(self.normal, dtype=np.float64)
        normal.setflags(write=False)
        object.__setattr__(self, "normal", normal)
        if self.kind not in ("order", "separation", "virtual"):
            raise ValueError(f"unknown halfspace kind {self.kind!r}")

    def satisfied(self, q: np.ndarray, tol: float = EXACT_TOL) -> bool:
        """Is ``q`` inside (or on the boundary of) the half-space?"""
        return float(self.normal @ np.asarray(q, dtype=np.float64)) >= -tol

    def slack(self, q: np.ndarray) -> float:
        """Signed margin ``normal · q`` (negative = violated)."""
        return float(self.normal @ np.asarray(q, dtype=np.float64))

    def describe(self) -> str:
        """Human-readable perturbation semantics (Section 3.2)."""
        if self.kind == "order":
            return (
                f"record {self.lower} overtakes record {self.upper} "
                "(reorder within the top-k)"
            )
        if self.kind == "separation":
            return (
                f"record {self.lower} replaces record {self.upper} "
                "as the k-th result"
            )
        return "query-space boundary (no result change inside [0,1]^d)"


def order_halfspace(
    p_upper: np.ndarray, p_lower: np.ndarray, upper_id: int, lower_id: int
) -> Halfspace:
    """Phase-1 condition ``S(p_i, q') ≥ S(p_{i+1}, q')``."""
    return Halfspace(
        normal=np.asarray(p_upper, float) - np.asarray(p_lower, float),
        kind="order",
        upper=upper_id,
        lower=lower_id,
    )


def separation_halfspace(
    p_k: np.ndarray, p: np.ndarray, pk_id: int, p_id: int | None, virtual: bool = False
) -> Halfspace:
    """Phase-2 condition ``S(p_k, q') ≥ S(p, q')``."""
    return Halfspace(
        normal=np.asarray(p_k, float) - np.asarray(p, float),
        kind="virtual" if virtual else "separation",
        upper=pk_id,
        lower=p_id,
    )
