"""The facet fan: incremental maintenance of hull facets incident to an apex.

This is the core data structure of the paper's FP algorithm (Section 6.3).
Instead of the full convex hull ``CH' = hull({p_k} ∪ D\\R)``, FP maintains
only the *star* of the apex ``p_k``: the facets of the hull that are
incident to it. Soundness of maintaining the star in isolation rests on two
facts (proved in DESIGN.md §5):

1. every ridge containing the apex is shared by exactly two facets that both
   contain the apex, so an inserted point can alter the star only if it is
   *above* (sees) one of the star's facets — points below every star facet
   can reshape only the remote part of the hull;
2. the apex is a vertex of every partial hull, because the query hyperplane
   through ``p_k`` separates it from every other inserted point (they all
   score strictly below it).

The fan also powers the branch-and-bound refinement of FP's second step:
an R-tree node can be pruned iff its MBB is below every fan facet, because
the "beneath-all-incident-facets" cone is the tangent cone of the hull at
the apex, whose points induce only half-spaces implied by the fan's.

Performance note: facet normals and offsets are kept stacked in numpy
arrays so visibility tests — the inner loop of FP — are single mat-vecs,
not per-facet Python loops. High dimensions produce thousands of incident
facets (Figure 8(b)), which makes this the difference between FP winning
and losing the CPU comparison of Figure 15.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.geometry.predicates import EPS, affine_rank_basis
from repro.index.mbb import MBB

__all__ = ["FanFacet", "FacetFan", "FanError"]

PointKey = Hashable


class FanError(RuntimeError):
    """Raised when fan invariants break (apex not a hull vertex)."""


class FanFacet:
    """One star facet: the apex plus ``d − 1`` other vertices.

    ``normal`` points away from the hull interior, and because every fan
    facet passes through the apex, its offset is ``normal · apex``.
    """

    __slots__ = ("others", "normal", "offset")

    def __init__(self, others: frozenset[PointKey], normal: np.ndarray, offset: float):
        self.others = others
        self.normal = normal
        self.offset = offset

    def is_above(self, point: np.ndarray, eps: float = EPS) -> bool:
        return float(self.normal @ point) > self.offset + eps

    def mbb_above(self, mbb: MBB, eps: float = EPS) -> bool:
        """True iff some corner of ``mbb`` lies strictly above the facet
        (the max of a linear function over a box is corner-separable)."""
        best = float(np.where(self.normal > 0, mbb.hi, mbb.lo) @ self.normal)
        return best > self.offset + eps


class FacetFan:
    """Incrementally maintained star of facets around an apex point.

    Parameters
    ----------
    apex:
        The pinned point ``p_k`` (in data or g-space).
    eps:
        Sidedness tolerance.

    Usage: feed candidate points via :meth:`bootstrap` (which greedily forms
    the initial full-dimensional simplex and then inserts the rest), then
    :meth:`add_point` for further points, and finally read
    :meth:`critical_keys`.
    """

    def __init__(self, apex: np.ndarray, eps: float = EPS) -> None:
        apex = np.asarray(apex, dtype=np.float64)
        if apex.ndim != 1 or apex.shape[0] < 2:
            raise ValueError("apex must be a vector of dimension >= 2")
        self.apex = apex
        self.d = int(apex.shape[0])
        self.eps = eps
        self.points: dict[PointKey, np.ndarray] = {}
        self._others: list[frozenset[PointKey]] = []
        self._normals = np.empty((0, self.d))
        self._offsets = np.empty(0)
        self._pos = np.empty((0, self.d))  # max(normal, 0), for MBB tests
        self._neg = np.empty((0, self.d))  # min(normal, 0)
        self._interior: np.ndarray | None = None
        self._degenerate = False

    # -- facet storage ------------------------------------------------------

    @property
    def facets(self) -> list[FanFacet]:
        """Materialised facet objects (for inspection/tests)."""
        return [
            FanFacet(o, self._normals[i], float(self._offsets[i]))
            for i, o in enumerate(self._others)
        ]

    def facet_count(self) -> int:
        return len(self._others)

    def _set_facets(
        self, others: list[frozenset[PointKey]], normals: list[np.ndarray], offsets: list[float]
    ) -> None:
        self._others = others
        if others:
            self._normals = np.vstack(normals)
            self._offsets = np.asarray(offsets, dtype=np.float64)
        else:
            self._normals = np.empty((0, self.d))
            self._offsets = np.empty(0)
        self._pos = np.maximum(self._normals, 0.0)
        self._neg = np.minimum(self._normals, 0.0)

    # -- construction -------------------------------------------------------

    def bootstrap(self, candidates: Iterable[tuple[PointKey, np.ndarray]]) -> None:
        """Initialise the fan from candidate ``(key, point)`` pairs.

        The first ``d`` affinely independent (with the apex) candidates form
        the initial simplex; every other candidate is then inserted with
        :meth:`add_point`. Candidates that span fewer than ``d`` dimensions
        leave a lower-dimensional fan: ``facets`` stays empty and *every*
        candidate is recorded as critical (a safe fallback — their
        half-spaces are simply all kept).
        """
        cand = [(k, np.asarray(p, dtype=np.float64)) for k, p in candidates]
        basis_idx = affine_rank_basis(self.apex, [p for _, p in cand], self.d)
        if len(basis_idx) < self.d:
            # Degenerate input: no full-dimensional hull exists. Keep every
            # candidate as critical — correct, merely unpruned.
            for key, p in cand:
                self.points[key] = p
            self._degenerate = True
            return
        simplex = [cand[i] for i in basis_idx]
        for key, p in simplex:
            self.points[key] = p
        all_vertices = np.vstack([self.apex] + [p for _, p in simplex])
        self._interior = all_vertices.mean(axis=0)
        keys = [key for key, _ in simplex]
        others_list, normals, offsets = [], [], []
        for omit in range(self.d):
            others = frozenset(k for j, k in enumerate(keys) if j != omit)
            geom = self._facet_geometry(others)
            if geom is None:
                raise FanError("initial simplex produced a flat facet")
            others_list.append(others)
            normals.append(geom[0])
            offsets.append(geom[1])
        self._set_facets(others_list, normals, offsets)
        chosen = set(basis_idx)
        rest_keys = [cand[i][0] for i in range(len(cand)) if i not in chosen]
        rest_pts = [cand[i][1] for i in range(len(cand)) if i not in chosen]
        self.add_points(rest_keys, rest_pts)

    def _facet_geometry(
        self, others: frozenset[PointKey]
    ) -> tuple[np.ndarray, float] | None:
        """Hyperplane through apex + ``others``, oriented away from the
        interior reference; ``None`` when the points are affinely flat."""
        assert self._interior is not None
        vs = np.vstack([self.points[k] for k in others])
        edges = vs - self.apex
        _, _, vt = np.linalg.svd(edges)
        normal = vt[-1]
        offset = float(normal @ self.apex)
        side = float(normal @ self._interior) - offset
        if abs(side) <= FACET_SIDE_TOL:
            return None
        if side > 0:
            normal, offset = -normal, -offset
        return normal, float(offset)

    # -- incremental update (Section 6.3.1) -----------------------------------

    @property
    def degenerate(self) -> bool:
        return self._degenerate

    def add_points(self, keys: list[PointKey], pts: list[np.ndarray]) -> None:
        """Insert a batch of points, cheaply skipping the invisible ones.

        Visibility of the whole batch is evaluated in one matrix product
        against the current facet stack as a prefilter; survivors are then
        inserted one by one (:meth:`add_point` re-checks visibility itself,
        so points shadowed by an earlier insertion are dropped exactly).
        """
        if self._degenerate:
            for k, p in zip(keys, pts):
                self.points[k] = p
            return
        if not keys:
            return
        pmat = np.asarray(pts)
        seen = kernels.any_above(pmat, self._normals, self._offsets, self.eps)
        for idx in np.flatnonzero(seen):
            self.add_point(keys[int(idx)], pmat[idx])

    def add_point(self, key: PointKey, point: np.ndarray) -> bool:
        """Insert a point; returns True iff it changed the fan.

        Implements the paper's update: collect the facets the point sees
        (``F_v``), find the horizon ridges *incident to the apex* (ridges of
        ``F_v`` facets shared with unseen facets), drop ``F_v`` and connect
        the point to each retained ridge.
        """
        point = np.asarray(point, dtype=np.float64)
        if self._degenerate:
            self.points[key] = point
            return True
        if not self._others:
            raise FanError("bootstrap the fan before adding points")
        above = kernels.above_mask(self._normals, self._offsets, point, self.eps)
        if not above.any():
            return False
        self.points[key] = point
        visible_idx = np.flatnonzero(above)
        # Ridges containing the apex: drop one non-apex vertex. A ridge seen
        # by exactly one visible facet borders an unseen facet => horizon.
        ridge_count: dict[frozenset[PointKey], int] = {}
        for i in visible_idx:
            others = self._others[i]
            for v in others:
                ridge = others - {v}
                ridge_count[ridge] = ridge_count.get(ridge, 0) + 1
        horizon = [r for r, c in ridge_count.items() if c == 1]
        if not horizon:
            raise FanError(
                "no horizon ridge: the apex is not a hull vertex — inserted "
                "points must score strictly below the apex under the query"
            )
        keep = ~above
        others_list = [o for o, k in zip(self._others, keep) if k]
        normals = [self._normals[i] for i in np.flatnonzero(keep)]
        offsets = [float(self._offsets[i]) for i in np.flatnonzero(keep)]
        new_others, new_normals, new_offsets = self._facet_geometry_batch(
            [ridge | {key} for ridge in horizon]
        )
        # Degenerate slivers are skipped by the batch helper; the
        # eps-tolerance of the neighbouring facets covers the gap
        # (joggle-style resolution).
        others_list.extend(new_others)
        normals.extend(new_normals)
        offsets.extend(new_offsets)
        self._set_facets(others_list, normals, offsets)
        return True

    def _facet_geometry_batch(
        self, others_sets: list[frozenset[PointKey]]
    ) -> tuple[list[frozenset[PointKey]], list[np.ndarray], list[float]]:
        """Vectorised :meth:`_facet_geometry` for many facets at once.

        High dimensions create dozens of facets per insertion; one batched
        SVD call replaces per-facet Python-loop linear algebra.
        """
        assert self._interior is not None
        if not others_sets:
            return [], [], []
        edges = np.empty((len(others_sets), self.d - 1, self.d))
        for i, others in enumerate(others_sets):
            vs = np.vstack([self.points[k] for k in others])
            edges[i] = vs - self.apex
        _, _, vt = np.linalg.svd(edges)
        normals = vt[:, -1, :]  # null-space direction per facet
        offsets = normals @ self.apex
        sides = normals @ self._interior - offsets
        flip = sides > 0
        normals[flip] = -normals[flip]
        offsets[flip] = -offsets[flip]
        ok = np.abs(sides) > FACET_SIDE_TOL
        return (
            [o for o, good in zip(others_sets, ok) if good],
            [normals[i] for i in np.flatnonzero(ok)],
            [float(offsets[i]) for i in np.flatnonzero(ok)],
        )

    # -- queries ----------------------------------------------------------------

    def sees(self, point: np.ndarray) -> bool:
        """Is the point above at least one fan facet (i.e. potentially
        critical)?"""
        if self._degenerate:
            return True
        p = np.asarray(point, dtype=np.float64)
        return bool(
            kernels.above_mask(self._normals, self._offsets, p, self.eps).any()
        )

    def seen_mask(self, pts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`sees` for an ``(m, d)`` batch."""
        if self._degenerate:
            return np.ones(pts.shape[0], dtype=bool)
        return kernels.any_above(pts, self._normals, self._offsets, self.eps)

    def mbb_sees(self, mbb: MBB, eps: float | None = None) -> bool:
        """Can any point of the MBB lie above some fan facet? (False ⇒ the
        R-tree node is prunable, per Section 6.2/6.3.2.)"""
        if self._degenerate:
            return True
        eps = self.eps if eps is None else eps
        return kernels.box_any_above(
            self._pos, self._neg, self._offsets, mbb.hi, mbb.lo, eps
        )

    def critical_keys(self) -> set[PointKey]:
        """Keys of the records incident to the maintained facets — the
        paper's *critical records* (plus every candidate in the degenerate
        fallback)."""
        if self._degenerate:
            return set(self.points.keys())
        out: set[PointKey] = set()
        for others in self._others:
            out |= others
        return out


# Imported at the bottom: repro.core's package init transitively imports
# this module (via phase2_fp), so a top-of-module import would be circular
# whenever the geometry layer loads first. By this point FacetFan exists
# and the re-entrant import succeeds.
from repro.core import kernels  # noqa: E402

# Leaf constants module, but imported down here with the kernels import:
# `repro.core.tolerances` still triggers repro.core's package init, which
# re-enters this module (same cycle as above).
from repro.core.tolerances import FACET_SIDE_TOL  # noqa: E402
