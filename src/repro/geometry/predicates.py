"""Geometric predicates with explicit tolerances.

All floating-point sidedness decisions in the library go through this module
so that tolerance policy lives in one place. The paper assumes tie-free
data (Section 6.1); the tolerances below only guard against floating-point
noise, not against genuinely degenerate inputs.
"""

from __future__ import annotations

import numpy as np
from repro.core.tolerances import MEMBERSHIP_TOL, PREDICATE_EPS

__all__ = [
    "EPS",
    "dominates",
    "dominates_matrix",
    "affine_rank_basis",
]

#: Default absolute tolerance for sidedness tests on unit-cube data.
EPS = PREDICATE_EPS


def dominates(p: np.ndarray, q: np.ndarray) -> bool:
    """True if record ``p`` dominates record ``q``.

    Dominance per Section 5.1: ``p`` is no smaller than ``q`` in every
    dimension and strictly larger in at least one.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return bool((p >= q).all() and (p > q).any())


def dominates_matrix(candidates: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Boolean mask: which rows of ``candidates`` dominate point ``p``."""
    candidates = np.asarray(candidates, dtype=np.float64)
    return (candidates >= p).all(axis=1) & (candidates > p).any(axis=1)


def affine_rank_basis(
    apex: np.ndarray, candidates: list[np.ndarray], target_rank: int, tol: float = MEMBERSHIP_TOL
) -> list[int]:
    """Greedily select candidate indices whose offsets from ``apex`` are
    linearly independent, until ``target_rank`` directions are found.

    Used to seed the FP facet fan with an initial full-dimensional simplex.
    Returns the selected indices (may be fewer than ``target_rank`` when the
    candidates span a lower-dimensional flat).
    """
    apex = np.asarray(apex, dtype=np.float64)
    basis: list[np.ndarray] = []
    chosen: list[int] = []
    for idx, cand in enumerate(candidates):
        if len(chosen) >= target_rank:
            break
        v = np.asarray(cand, dtype=np.float64) - apex
        norm = np.linalg.norm(v)
        if norm <= tol:
            continue
        # Gram-Schmidt residual against the current basis.
        residual = v.copy()
        for b in basis:
            residual -= (residual @ b) * b
        res_norm = np.linalg.norm(residual)
        if res_norm > tol * max(1.0, norm):
            basis.append(residual / res_norm)
            chosen.append(idx)
    return chosen
