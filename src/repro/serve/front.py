"""The asyncio serving front door: admission → batcher → engine bridge.

One :class:`ServeFront` wraps one engine (a
:class:`~repro.engine.GIREngine` or a
:class:`~repro.cluster.ShardedGIREngine` — anything with the engine
serving surface: ``topk_batch`` / ``insert`` / ``delete`` /
``result_rows`` / ``scorer`` / ``d``). The engine stays strictly
single-owner: every engine call runs on the front door's one-thread
executor (the *executor bridge*), which is exactly the ownership shape
the runtime sanitizer's tokens accept, and the event loop itself only
ever does queue plumbing and stateless float math.

Data path for a read::

    admission (validate, bound, shed)          — caller's task
      → ingress queue
      → dispatcher: micro-batch + coalesce     — one dispatcher task
      → executor bridge: one topk_batch call   — the engine thread
      → resolution: leaders, then followers    — a finisher task

A follower (a read attached to an in-flight duplicate/near-duplicate
leader) is answered *from the leader's returned GIR* after an explicit
membership check — the GIR invariant certifies the same ordered ids for
every vector in the region, and the scores are recomputed canonically
for the follower's own weights from the leader's row snapshot, which is
bit-identical to what a sequential full cache hit would serve (see
:mod:`repro.serve.replay`). Non-members fall back to their own engine
pass; correctness never rides on the attach heuristic.

Writes fence: the dispatcher drains every outstanding read batch (all
followers resolve against their pre-write snapshots and are logged)
before the write runs on the bridge, so no read is ever served from a
half-applied update and the serialization log stays sequentially
consistent.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.engine.engine import (
    UpdateResponse,
    validate_point,
    validate_weights,
)
from repro.engine.workload import (
    DeleteOp,
    InsertOp,
    Request,
    Workload,
    frozen_array,
)
from repro.serve.coalesce import InFlightEntry, InFlightTable
from repro.serve.config import ServeConfig
from repro.serve.errors import Overloaded, Rejected, ServeError
from repro.serve.replay import (
    DeleteLog,
    InsertLog,
    ReadLog,
    canonical_scores,
)
from repro.serve.stats import ServeReport, ServeStats

__all__ = [
    "ServeFront",
    "ServeResponse",
    "ServeUpdate",
    "run_serve_workload",
]

#: Queue marker that tells the dispatcher to drain and exit.
_SENTINEL = object()


@dataclass(frozen=True)
class ServeResponse:
    """One read served by the front door (canonical boundary scoring)."""

    ids: tuple
    scores: tuple
    weights: np.ndarray
    k: int
    #: ``"engine"`` (this read was an engine request) or ``"coalesced"``
    #: (answered from an in-flight leader's GIR).
    via: str
    #: Engine provenance: ``cache`` / ``completed`` / ``computed`` for
    #: engine-served reads, ``coalesced:<leader provenance>`` otherwise.
    source: str
    #: Metered page reads this response cost (0 when coalesced).
    pages_read: int
    #: Arrival → dispatch queueing delay.
    wait_ms: float
    #: Engine time (≈0 for a coalesced answer).
    service_ms: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "weights", frozen_array(self.weights, "weights")
        )


@dataclass(frozen=True)
class ServeUpdate:
    """One write applied through the fence."""

    update: UpdateResponse
    wait_ms: float
    service_ms: float


class _ReadOp:
    __slots__ = ("weights", "k", "future", "t_arrive", "no_coalesce", "trace")

    def __init__(
        self, weights: np.ndarray, k: int, future: asyncio.Future
    ) -> None:
        self.weights = weights
        self.k = k
        self.future = future
        self.t_arrive = time.perf_counter()
        #: Set after a failed coalesce so the retry leads its own request
        #: instead of chasing another near leader forever.
        self.no_coalesce = False
        #: The admitting request's trace context; retro spans (queue
        #: wait, linger) and the engine bridge stitch under it because
        #: contextvars do not follow the op across tasks/threads.
        self.trace = obs.current()


class _WriteOp:
    __slots__ = ("kind", "point", "rid", "future", "t_arrive", "trace")

    def __init__(
        self,
        kind: str,
        future: asyncio.Future,
        point: np.ndarray | None = None,
        rid: int | None = None,
    ) -> None:
        self.kind = kind
        self.point = point
        self.rid = rid
        self.future = future
        self.t_arrive = time.perf_counter()
        self.trace = obs.current()


class ServeFront:
    """Asyncio admission/batching/coalescing tier over one engine.

    Use as an async context manager (or call :meth:`start` / :meth:`close`
    explicitly)::

        async with ServeFront(engine, ServeConfig(batch_max=16)) as front:
            resp = await front.topk(weights, k=10)

    The instance is loop-affine once started. ``front.log`` is the
    serialization log (see :mod:`repro.serve.replay`); ``front.stats``
    the live counters.
    """

    def __init__(self, engine, config: ServeConfig | None = None) -> None:
        self.engine = engine
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        #: Commit-ordered serialization log (ReadLog/InsertLog/DeleteLog).
        self.log: list = []
        self._d = int(engine.d)
        self._inflight = InFlightTable(
            self.config.coalesce_radius if self.config.coalesce else 0.0
        )
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._queue: asyncio.Queue | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._dispatcher: asyncio.Task | None = None
        self._jobs: list[asyncio.Task] = []
        self._stashed: object | None = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "ServeFront":
        if self._queue is not None:
            raise RuntimeError("front door already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def close(self) -> None:
        """Stop admissions, drain every queued/in-flight operation, and
        shut the engine bridge down."""
        if self._closed:
            return
        self._closed = True
        if self._queue is None:
            self._pool.shutdown(wait=True)
            return
        self._queue.put_nowait(_SENTINEL)
        if self._dispatcher is not None:
            await self._dispatcher
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "ServeFront":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- admission ------------------------------------------------------------

    def _admit(self, op) -> None:
        queue = self._queue
        if queue is None:
            raise RuntimeError("front door not started")
        if queue.qsize() >= self.config.max_pending:
            self.stats.shed += 1
            raise Overloaded(
                "ingress queue at capacity",
                queue_depth=queue.qsize(),
                max_pending=self.config.max_pending,
            )
        self.stats.admitted += 1
        queue.put_nowait(op)
        self.stats.queue_depth_peak = max(
            self.stats.queue_depth_peak, queue.qsize()
        )

    async def topk(self, weights, k: int) -> ServeResponse:
        """Admit one read and await its response.

        Raises :class:`Rejected` on a malformed request (the engine's
        own boundary validation) and :class:`Overloaded` when the
        ingress queue is full.
        """
        self.stats.arrivals += 1
        with obs.trace("serve.request", kind="read") as root:
            if self._closed:
                self.stats.rejected += 1
                raise Rejected("front door is closed")
            try:
                w = validate_weights(
                    np.asarray(weights, dtype=np.float64), self._d
                )
                if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
                    raise ValueError(f"k must be a positive int, got {k!r}")
            except ValueError as exc:
                self.stats.rejected += 1
                raise Rejected(str(exc)) from exc
            op = _ReadOp(w, k, self._new_future())
            self._admit(op)
            resp = await op.future
            if obs.tracing_enabled():
                root.set("via", resp.via)
                root.set("source", resp.source)
            return resp

    async def insert(self, point) -> ServeUpdate:
        """Admit one insert; applied behind the write fence."""
        self.stats.arrivals += 1
        with obs.trace("serve.request", kind="insert"):
            if self._closed:
                self.stats.rejected += 1
                raise Rejected("front door is closed")
            try:
                p = validate_point(
                    np.asarray(point, dtype=np.float64), self._d
                )
            except ValueError as exc:
                self.stats.rejected += 1
                raise Rejected(str(exc)) from exc
            op = _WriteOp("insert", self._new_future(), point=p)
            self._admit(op)
            return await op.future

    async def delete(self, rid: int) -> ServeUpdate:
        """Admit one delete; applied behind the write fence."""
        self.stats.arrivals += 1
        with obs.trace("serve.request", kind="delete"):
            if self._closed:
                self.stats.rejected += 1
                raise Rejected("front door is closed")
            if isinstance(rid, bool) or not isinstance(rid, int) or rid < 0:
                self.stats.rejected += 1
                raise Rejected(
                    f"rid must be a non-negative int, got {rid!r}"
                )
            op = _WriteOp("delete", self._new_future(), rid=rid)
            self._admit(op)
            return await op.future

    def _new_future(self) -> asyncio.Future:
        if self._loop is None:
            raise RuntimeError("front door not started")
        return self._loop.create_future()

    # -- dispatcher -----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            if self._stashed is not None:
                op, self._stashed = self._stashed, None
            else:
                op = await queue.get()
            if op is _SENTINEL:
                break
            if isinstance(op, _WriteOp):
                await self._apply_write(op)
                continue
            t_linger = time.perf_counter()
            batch = await self._collect_batch(op)
            if obs.tracing_enabled():
                obs.record_span(
                    "serve.batch_linger",
                    t_linger,
                    time.perf_counter(),
                    trace_ctx=op.trace,
                    batch=len(batch),
                )
            self._launch_reads(batch)
            await self._throttle_jobs()
        # Drain: outstanding jobs may requeue fallback followers, so
        # alternate until both the job list and the queue are empty.
        while True:
            await self._drain_jobs()
            if queue.empty():
                break
            op = queue.get_nowait()
            if op is _SENTINEL:
                continue
            if isinstance(op, _WriteOp):
                await self._apply_write(op)
            else:
                self._launch_reads([op])

    async def _collect_batch(self, first: _ReadOp) -> list:
        """Micro-batch: linger up to the window (or until the size cap, a
        write, or the close sentinel) collecting reads behind ``first``."""
        queue = self._queue
        assert queue is not None
        batch = [first]
        if self.config.batch_max == 1:
            return batch
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.batch_window_ms / 1e3
        while len(batch) < self.config.batch_max:
            remaining = deadline - loop.time()
            if remaining <= 0 and queue.empty():
                break
            try:
                nxt = (
                    queue.get_nowait()
                    if remaining <= 0
                    else await asyncio.wait_for(queue.get(), remaining)
                )
            except (TimeoutError, asyncio.QueueEmpty):
                break
            if nxt is _SENTINEL or isinstance(nxt, _WriteOp):
                self._stashed = nxt
                break
            batch.append(nxt)
        return batch

    def _launch_reads(self, batch: list) -> None:
        """Coalesce a batch against the in-flight table, then submit the
        leaders as one engine batch on the bridge."""
        t_dispatch = time.perf_counter()
        if obs.tracing_enabled():
            for op in batch:
                obs.record_span(
                    "serve.queue_wait", op.t_arrive, t_dispatch,
                    trace_ctx=op.trace,
                )
        leaders: list[InFlightEntry] = []
        for op in batch:
            entry = None
            if self.config.coalesce and not op.no_coalesce:
                entry = self._inflight.match(op.weights, op.k)
            if entry is not None:
                entry.followers.append(op)
                self.stats.coalesce_attached += 1
            else:
                entry = InFlightEntry(op.weights, op.k, op)
                self._inflight.register(entry)
                leaders.append(entry)
        if not leaders:
            return
        loop = asyncio.get_running_loop()
        reqs = [(e.weights, e.k) for e in leaders]
        job = loop.run_in_executor(
            self._pool, self._serve_batch_sync, reqs,
            leaders[0].leader.trace,
        )
        task = loop.create_task(
            self._finish_batch(leaders, job, t_dispatch)
        )
        self._jobs.append(task)
        self.stats.engine_batch_calls += 1
        self.stats.engine_requests += len(leaders)
        live = sum(not t.done() for t in self._jobs)
        self.stats.inflight_batches_peak = max(
            self.stats.inflight_batches_peak, live
        )

    async def _throttle_jobs(self) -> None:
        """Bound outstanding engine batches; excess pressure stays in the
        ingress queue (and from there becomes sheds)."""
        self._jobs = [t for t in self._jobs if not t.done()]
        while len(self._jobs) >= self.config.max_inflight_batches:
            await self._jobs[0]
            self._jobs = [t for t in self._jobs if not t.done()]

    async def _drain_jobs(self) -> None:
        while self._jobs:
            task = self._jobs.pop(0)
            await task

    # -- the executor bridge (engine-thread code) ------------------------------

    def _serve_batch_sync(self, reqs: list, trace_ctx=None) -> list:
        """Engine-thread half of a read batch: one ``topk_batch`` call,
        then a row snapshot + canonical scores per response, all taken
        before any later write can run on this (single) thread.

        ``trace_ctx`` is the first leader's trace context — contextvars
        do not cross ``run_in_executor``, so the bridge re-adopts it
        explicitly and the engine-side spans stitch under that request
        (the other leaders share the batch; their spans nest here too).
        """
        if trace_ctx is not None and obs.tracing_enabled():
            with obs.use_trace(*trace_ctx), obs.span(
                "serve.engine_batch", n=len(reqs)
            ):
                return self._serve_batch_inner(reqs)
        return self._serve_batch_inner(reqs)

    def _serve_batch_inner(self, reqs: list) -> list:
        requests = [Request(weights=w, k=k) for w, k in reqs]
        responses = self.engine.topk_batch(requests)
        out = []
        for resp in responses:
            rows = self.engine.result_rows(resp.ids)
            scores = canonical_scores(self.engine.scorer, rows, resp.weights)
            out.append((resp, rows, scores))
        return out

    def _apply_write_sync(self, op: _WriteOp, trace_ctx=None) -> UpdateResponse:
        if trace_ctx is not None and obs.tracing_enabled():
            with obs.use_trace(*trace_ctx), obs.span(
                "serve.engine_write", kind=op.kind
            ):
                return self._apply_write_inner(op)
        return self._apply_write_inner(op)

    def _apply_write_inner(self, op: _WriteOp) -> UpdateResponse:
        if op.kind == "insert":
            return self.engine.insert(op.point)
        return self.engine.delete(op.rid)

    # -- resolution (event-loop code) -----------------------------------------

    async def _finish_batch(
        self, leaders: list, job, t_dispatch: float
    ) -> None:
        try:
            results = await job
        except Exception as exc:
            for entry in leaders:
                self._inflight.discard(entry)
                self._resolve_error(entry.leader, exc)
                for follower in entry.followers:
                    self._resolve_error(follower, exc)
            return
        # Unregister the whole batch first: a follower arriving after
        # this point must not attach to an already-resolved computation.
        for entry in leaders:
            self._inflight.discard(entry)
        for entry, (resp, rows, scores) in zip(leaders, results):
            self._resolve_leader(entry.leader, resp, scores, t_dispatch)
            for follower in entry.followers:
                self._resolve_follower(follower, resp, rows)

    def _resolve_leader(
        self, op: _ReadOp, resp, scores: tuple, t_dispatch: float
    ) -> None:
        wait_ms = (t_dispatch - op.t_arrive) * 1e3
        response = ServeResponse(
            ids=tuple(resp.ids),
            scores=scores,
            weights=op.weights,
            k=op.k,
            via="engine",
            source=resp.source,
            pages_read=resp.pages_read,
            wait_ms=wait_ms,
            service_ms=resp.latency_ms,
        )
        self.log.append(
            ReadLog(
                weights=op.weights,
                k=op.k,
                ids=response.ids,
                scores=scores,
                via="engine",
            )
        )
        self.stats.reads_served += 1
        self.stats.wait_ms.observe(wait_ms)
        self.stats.service_ms.observe(resp.latency_ms)
        if not op.future.done():
            op.future.set_result(response)

    def _resolve_follower(self, op: _ReadOp, resp, rows: np.ndarray) -> None:
        """Answer a follower from its leader's GIR — or send it back
        through the queue for its own engine pass if the optimistic
        attach turns out not to be covered by the returned region."""
        if (
            op.k <= len(resp.ids)
            and resp.region is not None
            and resp.region.contains(op.weights)
        ):
            t0 = time.perf_counter()
            ids = tuple(resp.ids[: op.k])
            scores = canonical_scores(
                self.engine.scorer, rows[: op.k], op.weights
            )
            wait_ms = (t0 - op.t_arrive) * 1e3
            service_ms = (time.perf_counter() - t0) * 1e3
            response = ServeResponse(
                ids=ids,
                scores=scores,
                weights=op.weights,
                k=op.k,
                via="coalesced",
                source=f"coalesced:{resp.source}",
                pages_read=0,
                wait_ms=wait_ms,
                service_ms=service_ms,
            )
            self.log.append(
                ReadLog(
                    weights=op.weights,
                    k=op.k,
                    ids=ids,
                    scores=scores,
                    via="coalesced",
                )
            )
            self.stats.reads_served += 1
            self.stats.coalesced_served += 1
            self.stats.wait_ms.observe(wait_ms)
            self.stats.service_ms.observe(service_ms)
            if not op.future.done():
                op.future.set_result(response)
        else:
            op.no_coalesce = True
            self.stats.coalesce_fallbacks += 1
            assert self._queue is not None
            self._queue.put_nowait(op)

    def _resolve_error(self, op, exc: Exception) -> None:
        self.stats.errors += 1
        if not op.future.done():
            op.future.set_exception(exc)

    # -- the write fence -------------------------------------------------------

    async def _apply_write(self, op: _WriteOp) -> None:
        """Fence, then apply: clear the attach table (no new followers),
        drain every outstanding read batch (all followers resolve and
        log against their pre-write snapshots), then run the write on
        the bridge and log it."""
        t_fence = time.perf_counter()
        self._inflight.clear()
        await self._drain_jobs()
        if obs.tracing_enabled():
            t_now = time.perf_counter()
            obs.record_span(
                "serve.fence_wait", t_fence, t_now, trace_ctx=op.trace
            )
            obs.record_span(
                "serve.queue_wait", op.t_arrive, t_now, trace_ctx=op.trace
            )
        self.stats.fences += 1
        t_dispatch = time.perf_counter()
        loop = asyncio.get_running_loop()
        job = loop.run_in_executor(
            self._pool, self._apply_write_sync, op, op.trace
        )
        try:
            update = await job
        except Exception as exc:
            self._resolve_error(op, exc)
            return
        if op.kind == "insert":
            self.log.append(InsertLog(point=op.point, rid=update.rid))
        else:
            self.log.append(DeleteLog(rid=update.rid))
        self.stats.writes_applied += 1
        result = ServeUpdate(
            update=update,
            wait_ms=(t_dispatch - op.t_arrive) * 1e3,
            service_ms=update.latency_ms,
        )
        if not op.future.done():
            op.future.set_result(result)


async def run_serve_workload(
    front: ServeFront,
    workload,
    concurrency: int = 32,
) -> ServeReport:
    """Fire a workload at a started front door from ``concurrency``
    client tasks and collect per-operation outcomes.

    Shed / rejected arrivals land in the report as their structured
    :class:`~repro.serve.errors.ServeError` rather than raising — the
    runner measures the tier, it does not crash on backpressure.
    """
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    ops = list(workload)
    kind = workload.kind if isinstance(workload, Workload) else "custom"
    outcomes: list = [None] * len(ops)
    gate = asyncio.Semaphore(concurrency)

    async def client(i: int, op) -> None:
        async with gate:
            try:
                if isinstance(op, Request):
                    outcomes[i] = await front.topk(op.weights, op.k)
                elif isinstance(op, InsertOp):
                    outcomes[i] = await front.insert(op.point)
                elif isinstance(op, DeleteOp):
                    outcomes[i] = await front.delete(op.rid)
                else:
                    raise TypeError(f"unknown workload operation {op!r}")
            except ServeError as exc:
                outcomes[i] = exc

    t0 = time.perf_counter()
    await asyncio.gather(*(client(i, op) for i, op in enumerate(ops)))
    wall_ms = (time.perf_counter() - t0) * 1e3
    return ServeReport(
        outcomes=outcomes,
        stats=front.stats,
        wall_ms=wall_ms,
        workload_kind=kind,
    )
