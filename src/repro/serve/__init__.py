"""``repro.serve`` — the asyncio front door over the serving engines.

The paper's Section 1 workload is *concurrent*: many near-duplicate
requests arrive faster than one engine drains them. GIRs make that
regime cheap — every request whose weight vector lands in a served
answer's stability region is provably the *same* ordered answer — but
the engines themselves are synchronous and thread-owned. This package
puts an asyncio tier in front of :class:`~repro.engine.GIREngine` /
:class:`~repro.cluster.ShardedGIREngine` that exploits it:

* **admission** (:meth:`ServeFront.topk`) — boundary validation via the
  engine's own :func:`~repro.engine.validate_weights` /
  :func:`~repro.engine.validate_point`, a bounded ingress queue, and
  explicit structured :class:`Rejected` / :class:`Overloaded` errors
  instead of unbounded buffering;
* **micro-batching** (:class:`ServeConfig.batch_window_ms` /
  ``batch_max``) — queued reads are collected for a few milliseconds and
  served through one ``topk_batch`` call (byte-identical to per-request
  serving by the engine's own contract);
* **single-flight coalescing** (:mod:`repro.serve.coalesce`) — requests
  duplicating (or landing near) a weight vector already being computed
  await that computation instead of re-entering the engine, and are
  answered from the leader's returned GIR after a membership check;
* **a write fence** — inserts/deletes drain every in-flight read batch
  before applying, so no coalesced read is served from a pre-write
  snapshot but serialized after the write;
* **a serialization log** (:mod:`repro.serve.replay`) — every served
  operation in commit order, replayable against a fresh engine to prove
  the tier byte-identical to sequential per-request serving.

All engine calls are routed through a one-thread executor bridge (the
engine stays single-owner, satisfying the runtime sanitizer's ownership
tokens); the event loop itself never blocks — enforced statically by the
``async-safety`` rule of :mod:`repro.analysis`.
"""

from repro.serve.config import ServeConfig
from repro.serve.errors import Overloaded, Rejected, ServeError
from repro.serve.front import (
    ServeFront,
    ServeResponse,
    ServeUpdate,
    run_serve_workload,
)
from repro.serve.replay import canonical_scores, replay_serial_check
from repro.serve.stats import ServeReport, ServeStats

__all__ = [
    "ServeConfig",
    "ServeError",
    "Rejected",
    "Overloaded",
    "ServeFront",
    "ServeResponse",
    "ServeUpdate",
    "ServeReport",
    "ServeStats",
    "run_serve_workload",
    "replay_serial_check",
    "canonical_scores",
]
