"""Serialization log and sequential-replay equivalence check. repro: bit-exact

The front door's correctness claim is *byte*-identity, not closeness:
any interleaving of coalesced / batched / direct serving must return
exactly the ``(rids, scores)`` a sequential per-request run returns.
This module carries both halves of that claim:

* the **log** — one entry per committed operation, in the tier's
  serialization order (leaders and their coalesced followers at batch
  resolution, writes between the fences that drained the reads around
  them), each read entry recording the exact answer the tier handed
  out;
* the **replay check** — re-serve the log's reads one at a time through
  ``engine.topk`` on a *fresh* identical engine, applying the writes at
  their logged positions, and compare answers with ``==``.

Scores are compared under the tier's **canonical boundary scoring**:
``scorer.score(rows_of(ids), weights)`` over a snapshot of the answer's
rows — the same computation the engine's own full-hit path performs.
The engine's raw response scores are *path-dependent* in the last ulp
(a pipeline run scores records one BRS candidate at a time; a cache hit
rescales via one matvec), so a tier that changed hit/miss trajectories
could never be byte-compared against them; the canonical form is a pure
function of ``(ids, weights, live rows)`` and therefore
trajectory-independent, while the ids themselves are trajectory-
independent by the GIR invariant. The front door serves every response
in canonical form and the replay compares in canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.workload import frozen_array

__all__ = [
    "ReadLog",
    "InsertLog",
    "DeleteLog",
    "canonical_scores",
    "replay_serial_check",
]


def canonical_scores(scorer, rows: np.ndarray, weights: np.ndarray) -> tuple:
    """Boundary-canonical scores of an answer: one matvec of the answer's
    row snapshot against the request's weights (the full-hit rescoring
    computation, bit-for-bit)."""
    return tuple(float(s) for s in scorer.score(rows, weights))


@dataclass(frozen=True)
class ReadLog:
    """One committed read: the request and the exact answer served."""

    weights: np.ndarray
    k: int
    ids: tuple
    scores: tuple
    #: ``"engine"`` or ``"coalesced"`` — provenance, not part of the
    #: equivalence contract.
    via: str

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "weights", frozen_array(self.weights, "weights")
        )


@dataclass(frozen=True)
class InsertLog:
    """One committed insert (the engine assigned ``rid``)."""

    point: np.ndarray
    rid: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", frozen_array(self.point, "point"))


@dataclass(frozen=True)
class DeleteLog:
    """One committed delete."""

    rid: int


def replay_serial_check(log: list, engine) -> dict:
    """Replay a front-door log sequentially and compare answers exactly.

    ``engine`` must be a *fresh* engine over the same initial data and
    configuration the front door's engine started from (its cache state
    evolves under the replay's own trajectory — which is the point: the
    answers must match anyway). Returns a JSON-ready verdict with the
    first few mismatches spelled out.
    """
    compared = mismatches = 0
    replayed_writes = 0
    examples: list[dict] = []
    for entry in log:
        if isinstance(entry, ReadLog):
            resp = engine.topk(np.asarray(entry.weights), entry.k)
            rows = engine.result_rows(resp.ids)
            scores = canonical_scores(
                engine.scorer, rows, np.asarray(entry.weights)
            )
            compared += 1
            ids_match = tuple(resp.ids) == tuple(entry.ids)
            scores_match = scores == tuple(entry.scores)
            if not (ids_match and scores_match):
                mismatches += 1
                if len(examples) < 5:
                    examples.append(
                        {
                            "k": entry.k,
                            "via": entry.via,
                            "ids_match": ids_match,
                            "scores_match": scores_match,
                            "served_ids": list(entry.ids),
                            "replay_ids": list(resp.ids),
                        }
                    )
        elif isinstance(entry, InsertLog):
            resp = engine.insert(np.asarray(entry.point))
            replayed_writes += 1
            if resp.rid != entry.rid:
                raise RuntimeError(
                    f"replay rid drift: engine assigned {resp.rid}, "
                    f"log recorded {entry.rid} — the append-only rid "
                    f"contract is broken"
                )
        elif isinstance(entry, DeleteLog):
            engine.delete(entry.rid)
            replayed_writes += 1
        else:
            raise TypeError(f"unknown log entry {entry!r}")
    return {
        "requests": compared,
        "writes": replayed_writes,
        "mismatches": mismatches,
        "all_match": mismatches == 0,
        "examples": examples,
    }
