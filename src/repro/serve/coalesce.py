"""The single-flight in-flight table of the serving front door.

One :class:`InFlightEntry` per weight vector currently being answered by
the engine. A later read *attaches* as a follower instead of becoming a
new engine request when its vector matches the entry — exactly (byte
equality of the float64 vector) or within the configured L∞ radius —
and its ``k`` does not exceed the leader's. Attachment is optimistic:
the front door verifies the follower's vector against the leader's
*returned* GIR before answering from it (the GIR invariant is what makes
a membership test sufficient — any region containing the vector
certifies the same ordered answer), so the radius only decides how often
the optimism pays off, never whether an answer is right.

Entries are discarded by identity, not by key: after a write fence
clears the table, a finishing batch must not delete a newer entry that
reused its key.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InFlightEntry", "InFlightTable", "weights_key"]


def weights_key(weights: np.ndarray) -> bytes:
    """Exact-duplicate lookup key: the raw float64 bytes of the vector."""
    return np.ascontiguousarray(weights, dtype=np.float64).tobytes()


class InFlightEntry:
    """One in-flight engine request and the followers awaiting it."""

    __slots__ = ("key", "weights", "k", "leader", "followers")

    def __init__(self, weights: np.ndarray, k: int, leader: object) -> None:
        self.key = weights_key(weights)
        self.weights = weights
        self.k = k
        self.leader = leader
        self.followers: list = []


class InFlightTable:
    """Exact-key dict plus a linear near-match scan over live entries.

    The scan is O(entries in flight), which the dispatcher bounds by
    ``max_inflight_batches × batch_max`` — small by construction.
    """

    def __init__(self, radius: float = 0.0) -> None:
        self.radius = float(radius)
        self._entries: dict[bytes, InFlightEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def match(self, weights: np.ndarray, k: int) -> InFlightEntry | None:
        """The entry a ``(weights, k)`` read may attach to, if any.

        Exact byte-duplicates match first; with a positive radius, the
        L∞-nearest in-radius entry matches next. Either way the entry
        must be answering at least ``k`` results.
        """
        exact = self._entries.get(weights_key(weights))
        if exact is not None and k <= exact.k:
            return exact
        if self.radius <= 0.0 or not self._entries:
            return None
        best: InFlightEntry | None = None
        best_dist = self.radius
        for entry in self._entries.values():
            if k > entry.k:
                continue
            dist = float(np.max(np.abs(entry.weights - weights)))
            if dist <= best_dist:
                best, best_dist = entry, dist
        return best

    def register(self, entry: InFlightEntry) -> None:
        self._entries[entry.key] = entry

    def discard(self, entry: InFlightEntry) -> None:
        """Remove ``entry`` if (and only if) it is still the live holder
        of its key — identity-guarded against post-fence key reuse."""
        if self._entries.get(entry.key) is entry:
            del self._entries[entry.key]

    def clear(self) -> None:
        self._entries.clear()
