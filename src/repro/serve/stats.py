"""Service-side accounting of the front door.

The tier's counters follow one identity, checked (not assumed) by
:meth:`ServeStats.accounting_ok` after a drain::

    arrivals == admitted + rejected + shed            (admission)
    admitted == reads_served + writes_applied + errors (completion)
    reads_served == engine_requests + coalesced_served (provenance)

and the headline service metric is the **coalesce fan-in ratio** —
reads served per engine request; above 1.0 the tier is answering
traffic the engine never saw. Latency is split into *wait* (arrival →
dispatch, the queueing cost) and *service* (engine time, or ~0 for a
coalesced answer), so queue pressure and engine cost cannot masquerade
as one another. Both are fixed-bucket
:class:`~repro.obs.metrics.Histogram` instruments — tail percentiles
(p50/p95/p99) without retaining per-request samples — and they double
as the registry's serve-latency series via
:func:`repro.obs.metrics.bind_serve_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.obs.metrics import Histogram

__all__ = ["ServeStats", "ServeReport"]


@dataclass
class ServeStats:
    """Counters of one :class:`~repro.serve.front.ServeFront` lifetime."""

    #: Every call that reached admission (served, rejected or shed).
    arrivals: int = 0
    #: Requests that passed validation and entered the ingress queue.
    admitted: int = 0
    #: Requests failing boundary validation (or arriving after close).
    rejected: int = 0
    #: Valid requests shed because the ingress queue was at capacity.
    shed: int = 0
    #: Reads answered (engine-served and coalesced alike).
    reads_served: int = 0
    #: Inserts/deletes applied through the write fence.
    writes_applied: int = 0
    #: Admitted operations that failed inside the engine.
    errors: int = 0
    #: ``topk_batch`` calls issued to the engine.
    engine_batch_calls: int = 0
    #: Requests inside those calls (the coalescing denominator).
    engine_requests: int = 0
    #: Reads that attached to an in-flight leader at dispatch.
    coalesce_attached: int = 0
    #: Attached reads actually answered from their leader's GIR.
    coalesced_served: int = 0
    #: Attached reads whose vector fell outside the leader's returned
    #: GIR and re-entered the queue for their own engine pass.
    coalesce_fallbacks: int = 0
    #: Write fences executed (each drains every in-flight read batch).
    fences: int = 0
    #: Deepest ingress queue observed at an admission.
    queue_depth_peak: int = 0
    #: Most engine batches outstanding at once.
    inflight_batches_peak: int = 0
    #: Arrival→dispatch queueing delay per served read, milliseconds
    #: (histogram: observe per read, ask for mean/p50/p95/p99).
    wait_ms: Histogram = field(
        default_factory=partial(
            Histogram, "serve_wait_ms", "arrival→dispatch queueing delay"
        )
    )
    #: Engine time per served read (≈0 for coalesced answers), ms.
    service_ms: Histogram = field(
        default_factory=partial(
            Histogram, "serve_service_ms", "engine time per served read"
        )
    )

    @property
    def fan_in_ratio(self) -> float:
        """Reads served per engine request; > 1 means coalescing won."""
        return self.reads_served / max(self.engine_requests, 1)

    def accounting_ok(self) -> bool:
        """The admission/completion/provenance identities, post-drain."""
        return (
            self.arrivals == self.admitted + self.rejected + self.shed
            and self.admitted
            == self.reads_served + self.writes_applied + self.errors
            and self.reads_served
            == self.engine_requests + self.coalesced_served
        )

    def to_dict(self) -> dict:
        """JSON-ready counters (the ``--serve`` bench payload)."""
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "reads_served": self.reads_served,
            "writes_applied": self.writes_applied,
            "errors": self.errors,
            "engine_batch_calls": self.engine_batch_calls,
            "engine_requests": self.engine_requests,
            "coalesce_attached": self.coalesce_attached,
            "coalesced_served": self.coalesced_served,
            "coalesce_fallbacks": self.coalesce_fallbacks,
            "fan_in_ratio": self.fan_in_ratio,
            "fences": self.fences,
            "queue_depth_peak": self.queue_depth_peak,
            "inflight_batches_peak": self.inflight_batches_peak,
            "wait_p50_ms": self.wait_ms.percentile(50),
            "wait_p95_ms": self.wait_ms.percentile(95),
            "wait_p99_ms": self.wait_ms.percentile(99),
            "wait_mean_ms": self.wait_ms.mean,
            "service_p50_ms": self.service_ms.percentile(50),
            "service_p95_ms": self.service_ms.percentile(95),
            "service_p99_ms": self.service_ms.percentile(99),
            "service_mean_ms": self.service_ms.mean,
            "accounting_ok": self.accounting_ok(),
        }

    def summary(self) -> str:
        lines = [
            f"admission         : {self.arrivals} arrivals = "
            f"{self.admitted} admitted + {self.rejected} rejected + "
            f"{self.shed} shed",
            f"reads             : {self.reads_served} served via "
            f"{self.engine_requests} engine requests "
            f"({self.engine_batch_calls} batches) — fan-in "
            f"{self.fan_in_ratio:.2f}x",
            f"coalescing        : {self.coalesce_attached} attached, "
            f"{self.coalesced_served} served, "
            f"{self.coalesce_fallbacks} fallbacks",
            f"writes            : {self.writes_applied} applied through "
            f"{self.fences} fences ({self.errors} errors)",
            f"latency split     : wait p50 {self.wait_ms.percentile(50):.2f}"
            f" / p95 {self.wait_ms.percentile(95):.2f}"
            f" / p99 {self.wait_ms.percentile(99):.2f} ms, service p50 "
            f"{self.service_ms.percentile(50):.2f} / "
            f"p95 {self.service_ms.percentile(95):.2f} / "
            f"p99 {self.service_ms.percentile(99):.2f} ms",
            f"pressure          : queue depth peak "
            f"{self.queue_depth_peak}, in-flight batches peak "
            f"{self.inflight_batches_peak}",
        ]
        return "\n".join(lines)


@dataclass
class ServeReport:
    """Aggregate outcome of one workload run through the front door
    (the serve-tier sibling of :class:`~repro.engine.WorkloadReport`)."""

    #: Per-operation outcomes in workload order: a ``ServeResponse`` /
    #: ``ServeUpdate``, or the structured ``ServeError`` for shed /
    #: rejected arrivals.
    outcomes: list
    stats: ServeStats
    wall_ms: float
    workload_kind: str = "custom"

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def throughput_rps(self) -> float:
        served = self.stats.reads_served + self.stats.writes_applied
        return 1000.0 * served / self.wall_ms if self.wall_ms > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "workload_kind": self.workload_kind,
            "operations": self.total,
            "wall_ms": self.wall_ms,
            "throughput_rps": self.throughput_rps,
            **self.stats.to_dict(),
        }

    def summary(self) -> str:
        head = (
            f"workload          : {self.total} operations "
            f"({self.workload_kind}), {self.wall_ms:.0f} ms wall, "
            f"{self.throughput_rps:.0f} ops/s"
        )
        return "\n".join([head, self.stats.summary()])
