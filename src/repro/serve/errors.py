"""Structured admission errors of the serving front door.

Admission failures are part of the service contract, not incidental
exceptions: a client (or the workload runner) must be able to tell a
malformed request (its own fault, :class:`Rejected`) from shed load (the
tier's explicit backpressure, :class:`Overloaded`) without string
matching. Both carry a machine-readable ``code`` plus keyword details
and render to a JSON-ready dict via :meth:`ServeError.to_dict`.
"""

from __future__ import annotations

__all__ = ["ServeError", "Rejected", "Overloaded"]


class ServeError(Exception):
    """Base of every structured front-door error (never raised bare)."""

    #: Machine-readable discriminator, set by each subclass.
    code = "serve-error"

    def __init__(self, message: str, **details: object) -> None:
        super().__init__(message)
        self.message = message
        self.details = details

    def to_dict(self) -> dict:
        """JSON-ready structured form (``error`` / ``message`` / details)."""
        return {"error": self.code, "message": self.message, **self.details}


class Rejected(ServeError):
    """The request failed boundary validation (or the tier is closed);
    retrying the same request will fail the same way."""

    code = "rejected"


class Overloaded(ServeError):
    """The ingress queue is at capacity and the request was shed; the
    request was valid and a later retry may succeed."""

    code = "overloaded"
