"""Tuning knobs of the serving front door, validated once at construction.

Every knob trades latency against engine work:

* ``max_pending`` bounds the ingress queue — beyond it the tier *sheds*
  (explicit :class:`~repro.serve.errors.Overloaded`) instead of letting
  queue wait grow without bound;
* ``batch_window_ms`` / ``batch_max`` shape the micro-batcher: how long
  the dispatcher lingers collecting compatible reads, and how many it
  stacks into one ``topk_batch`` call;
* ``coalesce`` / ``coalesce_radius`` control single-flight coalescing:
  exact-duplicate weight vectors always attach to the in-flight leader;
  a positive radius additionally attaches near-duplicates (L∞ distance
  up to the radius), optimistically — membership in the leader's
  returned GIR is verified before answering, and non-members fall back
  to their own engine pass, so the radius is a *performance* knob, never
  a correctness one;
* ``max_inflight_batches`` caps engine batches in flight at once, so a
  slow engine backs pressure up into the queue (and from there into
  sheds) instead of into an unbounded set of outstanding futures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Front-door tuning; defaults favour throughput at modest latency."""

    #: Ingress-queue bound; arrivals beyond it are shed with ``Overloaded``.
    max_pending: int = 256
    #: How long the micro-batcher lingers for companions, in milliseconds.
    batch_window_ms: float = 2.0
    #: Max reads stacked into one ``topk_batch`` call.
    batch_max: int = 32
    #: Enable single-flight coalescing onto in-flight computations.
    coalesce: bool = True
    #: L∞ attach radius for near-duplicate coalescing (0 = exact only).
    coalesce_radius: float = 0.02
    #: Max engine batches outstanding before the dispatcher stalls.
    max_inflight_batches: int = 4

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if self.batch_window_ms < 0.0:
            raise ValueError("batch_window_ms must be non-negative")
        if self.batch_max <= 0:
            raise ValueError("batch_max must be positive")
        if self.coalesce_radius < 0.0:
            raise ValueError("coalesce_radius must be non-negative")
        if self.max_inflight_batches <= 0:
            raise ValueError("max_inflight_batches must be positive")
