"""CP — Convex-hull Pruning (Section 5.2).

For any query vector, the best-scoring record under a linear function lies
on the convex hull of the dataset, so a record strictly inside the hull of
``D \\ R`` cannot overtake ``p_k`` before some hull record does. CP refines
SP by keeping only skyline records that also lie on the convex hull:
``SL ∩ CH``. Following the paper's implementation, the hull is computed
over the *skyline records only* (computing it over all of ``D \\ R`` first
would explore space far from the GIR, cf. the p₁₀/p₁₃/p₁₅ discussion).

The hull computation is CP's cost centre — the paper's Figure 15 shows its
CPU time exceeding SP's despite the stronger pruning, which this
implementation reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.core.phase2 import Phase2Output
from repro.core.phase2_sp import skyline_candidates
from repro.geometry.convexhull import hull_vertex_ids
from repro.geometry.halfspace import separation_halfspace
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun
from repro.scoring import ScoringFunction

__all__ = ["phase2_cp", "hull_of_skyline"]


def hull_of_skyline(points_g: np.ndarray, skyline: list[int]) -> list[int]:
    """Record ids in ``SL`` that lie on the convex hull of ``SL`` (computed
    in g-space, where scores are linear in the weights)."""
    if len(skyline) == 0:
        return []
    sky_pts = points_g[np.asarray(skyline, dtype=np.intp)]
    on_hull = hull_vertex_ids(sky_pts)
    return [skyline[i] for i in sorted(on_hull)]


def phase2_cp(
    tree: RStarTree,
    points: np.ndarray,
    points_g: np.ndarray,
    run: BRSRun,
    scorer: ScoringFunction,
    metered: bool = True,
    skyline: list[int] | None = None,
) -> Phase2Output:
    """Separation half-spaces from the records in ``SL ∩ CH``."""
    if skyline is None:
        skyline = skyline_candidates(tree, points, run, scorer, metered=metered)
    candidates = hull_of_skyline(points_g, skyline)
    pk = run.result.kth_id
    pk_g = points_g[pk]
    halfspaces = [
        separation_halfspace(pk_g, points_g[rid], pk, rid) for rid in candidates
    ]
    return Phase2Output(
        halfspaces=halfspaces,
        candidate_ids=candidates,
        extras={
            "skyline_size": float(len(skyline)),
            "hull_size": float(len(candidates)),
        },
    )
