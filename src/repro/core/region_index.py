"""Vectorized region-membership index over cached GIR polytopes.

The serving hot path of :class:`~repro.core.caching.GIRCache` is "which
cached regions contain this query vector?" — previously answered by a
Python loop calling :meth:`~repro.geometry.polytope.Polytope.contains`
once per entry (one small matmul each). This index stacks every cached
entry's *normalized* half-space rows ``(A, b)`` into one contiguous matrix
with per-entry row segments, so

* a single-query membership test is **one** matvec over all entries plus a
  segment reduction (:meth:`RegionIndex.membership`), and
* a whole request batch is **one** matmul ``W @ A_allᵀ``
  (:meth:`RegionIndex.membership_batch`).

Rows come from :meth:`Polytope.normalized_halfspaces`, so the single
global tolerance is norm-relative and agrees bit-for-bit in form with the
scalar :meth:`Polytope.contains` path.

Write-path prescreen
--------------------

On an insert, the dynamic engine must decide for every cached entry
whether the new record can enter its top-k somewhere in its region —
an LP per entry (:func:`~repro.core.caching.invalidated_by_insert`).
Almost all entries are *obviously* undisturbable, and the index proves it
without any LP: inside an entry's region the score gap to its k-th record
is the linear function ``(g(p_new) − g(p_k)) · w``, whose maximum over the
(bounded) region is attained at a vertex. The index therefore keeps, per
entry, the region's vertex set ``V`` and the precomputed dot products
``V @ g(p_k)``; screening every entry against a new ``g(p_new)`` is then
one stacked matvec ``V_all @ g(p_new)`` plus a segment max. Entries whose
bound is (safely) non-positive can never be disturbed; the LP runs only on
the survivors. Entries whose vertex enumeration failed (degenerate
regions) fall back to an enclosing ball around their Chebyshev centre —
regions live in the unit query box, so radius ``√d`` always encloses them.

Vertex data is materialized lazily on the first prescreen, so read-only
workloads never pay for it; each entry's vertices are computed once and
reused for its whole cache lifetime (regions are immutable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.polytope import Polytope

__all__ = [
    "RegionIndex",
    "SCREEN_SAFE",
    "SCREEN_TIE",
    "SCREEN_LP",
]

#: Prescreen verdicts (per entry): the insert provably cannot disturb the
#: entry / ties its k-th record exactly everywhere (caller's tie-break
#: decides) / needs the LP to decide.
SCREEN_SAFE = 0
SCREEN_TIE = 1
SCREEN_LP = 2


@dataclass
class _ScreenEntry:
    """Static insert-screen geometry of one cached region."""

    #: Region vertices ``(nv, d)`` — a one-row placeholder when enumeration
    #: failed (then ``has_vertices`` is False and the ball bound is used).
    V: np.ndarray
    #: Per-vertex ``V @ g(p_k)`` for the entry's k-th result record.
    vdots: np.ndarray
    #: Chebyshev centre (NaN when the centre LP failed).
    center: np.ndarray
    #: g-image of the entry's k-th result record.
    kth_g: np.ndarray
    has_vertices: bool


class RegionIndex:
    """Contiguously stacked half-space rows of many bounded regions.

    All regions share one dimensionality ``d`` (the cache keeps one index
    per query-space dimension). Entries are identified by the cache's
    integer keys; ``add``/``remove``/``clear`` maintain the stacks
    incrementally (append on add, segment splice on remove).
    """

    def __init__(self, d: int) -> None:
        if d <= 0:
            raise ValueError("dimensionality must be positive")
        self.d = int(d)
        self._keys: list[int] = []
        self._A = np.empty((0, d), dtype=np.float64)
        self._b = np.empty(0, dtype=np.float64)
        #: Row segment boundaries: entry ``i`` owns rows
        #: ``offsets[i]:offsets[i+1]``.
        self._offsets = np.zeros(1, dtype=np.int64)
        #: Per-key screen geometry: ``None`` = ineligible (no ``kth_g``
        #: given), a ``(polytope, kth_g)`` tuple = pending lazy
        #: computation, a :class:`_ScreenEntry` = computed.
        self._screen: dict[int, _ScreenEntry | tuple | None] = {}
        self._screen_stacks: tuple | None = None

    # -- maintenance ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def rows(self) -> int:
        """Total stacked half-space rows across all entries."""
        return int(self._offsets[-1])

    def keys(self) -> list[int]:
        """Entry keys in segment (insertion) order."""
        return list(self._keys)

    def add(self, key: int, polytope: Polytope, kth_g: np.ndarray | None = None) -> None:
        """Index a region under ``key``.

        ``kth_g`` (the g-image of the entry's k-th result record) enables
        the insert-invalidation prescreen for this entry; without it the
        entry is always classified :data:`SCREEN_LP`.
        """
        if polytope.d != self.d:
            raise ValueError(f"expected a {self.d}-d region, got {polytope.d}-d")
        if polytope.m == 0:
            raise ValueError("cannot index a constraint-free region")
        if key in self._screen:
            raise KeyError(f"key {key} already indexed")
        A_n, b_n = polytope.normalized_halfspaces()
        self._A = np.concatenate([self._A, A_n])
        self._b = np.concatenate([self._b, b_n])
        self._offsets = np.append(self._offsets, self._offsets[-1] + polytope.m)
        self._keys.append(key)
        self._screen[key] = None if kth_g is None else (
            polytope,
            np.asarray(kth_g, dtype=np.float64),
        )
        self._screen_stacks = None

    def remove(self, key: int) -> bool:
        """Drop an entry; returns False if the key is unknown."""
        return self.remove_many([key]) == 1

    def remove_many(self, keys) -> int:
        """Drop several entries in one compaction pass over the stacks
        (an update can invalidate many entries at once; splicing them out
        one at a time would copy the arrays once per key). Unknown keys
        are ignored; returns the number removed.
        """
        drop = {key for key in keys if key in self._screen}
        if not drop:
            return 0
        keep_rows = np.ones(self.rows, dtype=bool)
        kept_keys: list[int] = []
        kept_counts: list[int] = []
        for idx, key in enumerate(self._keys):
            start, stop = int(self._offsets[idx]), int(self._offsets[idx + 1])
            if key in drop:
                keep_rows[start:stop] = False
                del self._screen[key]
            else:
                kept_keys.append(key)
                kept_counts.append(stop - start)
        self._A = self._A[keep_rows]
        self._b = self._b[keep_rows]
        self._offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(kept_counts, dtype=np.int64)]
        )
        self._keys = kept_keys
        self._screen_stacks = None
        return len(drop)

    def clear(self) -> None:
        self._keys = []
        self._A = np.empty((0, self.d), dtype=np.float64)
        self._b = np.empty(0, dtype=np.float64)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._screen = {}
        self._screen_stacks = None

    # -- membership -----------------------------------------------------------

    def membership(self, x: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Boolean array over :meth:`keys`: which regions contain ``x``?

        One matvec over all stacked rows + one segment reduction —
        equivalent to calling ``contains`` per entry.
        """
        if not self._keys:
            return np.zeros(0, dtype=bool)
        x = np.asarray(x, dtype=np.float64)
        ok = self._A @ x <= self._b + tol
        return np.logical_and.reduceat(ok, self._offsets[:-1])

    def membership_batch(self, X: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Membership of a whole query batch at once.

        ``X`` is ``(q, d)``; returns boolean ``(q, n_entries)``, columns in
        :meth:`keys` order. The entire batch-vs-cache evaluation is one
        matmul ``X @ A_allᵀ``.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.d:
            raise ValueError(f"X must have shape (q, {self.d})")
        if not self._keys:
            return np.zeros((X.shape[0], 0), dtype=bool)
        ok = X @ self._A.T <= self._b + tol
        return np.logical_and.reduceat(ok, self._offsets[:-1], axis=1)

    # -- insert-invalidation prescreen ----------------------------------------

    def _materialize_screen(self) -> tuple:
        """Build (lazily, cached) the stacked screen arrays.

        Pending entries compute their vertex set / Chebyshev centre here —
        once per cache lifetime; rebuilds after add/remove only re-stack
        the already-computed per-entry blocks.
        """
        if self._screen_stacks is not None:
            return self._screen_stacks
        placeholder_V = np.zeros((1, self.d))
        # -inf placeholder => segment max +inf => "needs LP" on any miss of
        # the dedicated fallback paths; never silently screens out.
        placeholder_dots = np.full(1, -np.inf)
        V_parts, vdot_parts = [], []
        voffsets = [0]
        kth_rows, centers, eligible, no_vertices = [], [], [], []
        for key in self._keys:
            blob = self._screen[key]
            if isinstance(blob, tuple):
                blob = self._compute_screen_entry(*blob)
                self._screen[key] = blob
            if blob is None:
                V_parts.append(placeholder_V)
                vdot_parts.append(placeholder_dots)
                kth_rows.append(np.full(self.d, np.nan))
                centers.append(np.full(self.d, np.nan))
                eligible.append(False)
                no_vertices.append(False)
            else:
                V_parts.append(blob.V)
                vdot_parts.append(blob.vdots)
                kth_rows.append(blob.kth_g)
                centers.append(blob.center)
                eligible.append(True)
                no_vertices.append(not blob.has_vertices)
            voffsets.append(voffsets[-1] + len(vdot_parts[-1]))
        n = len(self._keys)
        self._screen_stacks = (
            np.concatenate(V_parts) if n else np.zeros((0, self.d)),
            np.concatenate(vdot_parts) if n else np.zeros(0),
            np.asarray(voffsets, dtype=np.int64),
            np.asarray(kth_rows).reshape(n, self.d),
            np.asarray(centers).reshape(n, self.d),
            np.asarray(eligible, dtype=bool),
            np.asarray(no_vertices, dtype=bool),
        )
        return self._screen_stacks

    def _compute_screen_entry(
        self, polytope: Polytope, kth_g: np.ndarray
    ) -> _ScreenEntry:
        verts = polytope.vertices()
        center, _radius = polytope.chebyshev_center()
        # Only un-joggled vertex sets give a sound maximum (a joggled run
        # can misplace or miss vertices); anything else uses the enclosing
        # ball around the Chebyshev centre instead.
        if verts.shape[0] and polytope.vertices_exact:
            return _ScreenEntry(
                V=verts, vdots=verts @ kth_g, center=center, kth_g=kth_g,
                has_vertices=True,
            )
        return _ScreenEntry(
            V=np.zeros((1, self.d)),
            vdots=np.full(1, -np.inf),
            center=center,
            kth_g=kth_g,
            has_vertices=False,
        )

    def prescreen_insert(
        self,
        point_g: np.ndarray,
        tol: float = 1e-9,
        safety: float = 1e-10,
    ) -> np.ndarray:
        """Classify every entry against an inserted record's g-image.

        Returns an int8 array aligned with :meth:`keys`:

        * :data:`SCREEN_SAFE` — the record provably cannot out-score the
          entry's k-th record anywhere in its region (no LP needed): it is
          dominated component-wise, or the vertex-set upper bound of
          ``(g(p_new) − g(p_k)) · w`` is below ``tol − safety``;
        * :data:`SCREEN_TIE` — identical g-image to the k-th record (a tie
          at *every* query vector; the caller's tie-break rule decides);
        * :data:`SCREEN_LP` — undecided, run the exact LP test.

        ``safety`` absorbs vertex rounding (un-joggled qhull vertices are
        reliable to ~1e-12) so the screen stays conservative: a skipped
        entry's true LP margin is certainly below the LP test's ``tol``.
        It must stay *below* ``tol``: GIR regions contain the origin (the
        cone apex), so every undisturbable entry's exact maximum is 0 —
        a ``safety ≥ tol`` would reject the very bound the screen exists
        to accept. Entries added without ``kth_g`` are always
        :data:`SCREEN_LP`.
        """
        n = len(self._keys)
        codes = np.full(n, SCREEN_LP, dtype=np.int8)
        if n == 0:
            return codes
        point_g = np.asarray(point_g, dtype=np.float64)
        V_all, vdots, voffsets, kth, centers, eligible, no_verts = (
            self._materialize_screen()
        )
        delta = point_g[None, :] - kth  # NaN rows for ineligible entries
        with np.errstate(invalid="ignore"):
            tie = eligible & (delta == 0.0).all(axis=1)
            dominated = eligible & ~tie & (delta <= 0.0).all(axis=1)
            bound = np.maximum.reduceat(V_all @ point_g - vdots, voffsets[:-1])
            ball = eligible & no_verts
            if ball.any():
                d_ball = delta[ball]
                bound[ball] = (d_ball * centers[ball]).sum(axis=1) + np.sqrt(
                    self.d
                ) * np.linalg.norm(d_ball, axis=1)
            safe = eligible & ~tie & (dominated | (bound <= tol - safety))
        codes[tie] = SCREEN_TIE
        codes[safe] = SCREEN_SAFE
        return codes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegionIndex(d={self.d}, entries={len(self)}, rows={self.rows})"
