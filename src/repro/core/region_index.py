"""Vectorized region-membership index over cached GIR polytopes.

The serving hot path of :class:`~repro.core.caching.GIRCache` is "which
cached regions contain this query vector?" — previously answered by a
Python loop calling :meth:`~repro.geometry.polytope.Polytope.contains`
once per entry (one small matmul each). This index stacks every cached
entry's *normalized* half-space rows ``(A, b)`` into one contiguous matrix
with per-entry row segments, so

* a single-query membership test is **one** matvec over all entries plus a
  segment reduction (:meth:`RegionIndex.membership`), and
* a whole request batch is **one** matmul ``W @ A_allᵀ``
  (:meth:`RegionIndex.membership_batch`).

Rows come from :meth:`Polytope.normalized_halfspaces`, so the single
global tolerance is norm-relative and agrees bit-for-bit in form with the
scalar :meth:`Polytope.contains` path.

Write-path prescreen
--------------------

On an insert, the dynamic engine must decide for every cached entry
whether the new record can enter its top-k somewhere in its region —
an LP per entry (:func:`~repro.core.caching.invalidated_by_insert`).
Almost all entries are *obviously* undisturbable, and the index proves it
without any LP: inside an entry's region the score gap to its k-th record
is the linear function ``(g(p_new) − g(p_k)) · w``, whose maximum over the
(bounded) region is attained at a vertex. The index therefore keeps, per
entry, the region's vertex set ``V`` and the precomputed dot products
``V @ g(p_k)``; screening every entry against a new ``g(p_new)`` is then
one stacked matvec ``V_all @ g(p_new)`` plus a segment max. Entries whose
bound is (safely) non-positive can never be disturbed; the LP runs only on
the survivors. Entries whose vertex enumeration failed (degenerate
regions) fall back to an enclosing ball around their Chebyshev centre —
regions live in the unit query box, so radius ``√d`` always encloses them.

Vertex data is materialized lazily on the first prescreen, so read-only
workloads never pay for it; each entry's vertices (and the Chebyshev-ball
fallback for degenerate regions) are computed **once** and the resulting
screen entry memoized for the key's whole cache lifetime (regions are
immutable) — re-stacks after add/remove only re-concatenate the memoized
per-entry blocks.

Admission prescreen (read path)
-------------------------------

Even one matvec is avoidable for most *misses*. The index overlays a
coarse uniform grid on the unit query box (:class:`GridSignature`): when
an entry is added, the cells its region can possibly touch are registered
— decided per cell by the conservative box-vs-polytope corner test
``min over cell of (a · x) <= b + slack`` for every half-space row, which
over-approximates the region, so the construction admits **zero false
negatives**. A lookup hashes its weight vector to one cell (a handful of
multiply-adds plus one array read); if that cell is registered by no
entry, the vector provably lies in no cached region and the matvec is
skipped entirely — an O(1) certain miss. The registration slack covers
the membership tolerance plus the cushion of clipping the probe into the
unit box, and the fast path stands down for out-of-box probes and for
tolerances above :data:`GRID_SAFE_TOL`, which keeps the skip sound for
arbitrary polytopes and every supported ``tol``.

The segmented reductions and the grid math run through
:mod:`repro.core.kernels` — numba-compiled when available, byte-identical
numpy fallbacks otherwise (``REPRO_NO_JIT`` forces the fallbacks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import sanitize
from repro.core import kernels
from repro.geometry.polytope import Polytope
from repro.core.tolerances import GRID_SAFE_TOL, GRID_SLACK, MEMBERSHIP_TOL, SCREEN_SAFETY

__all__ = [
    "RegionIndex",
    "GridSignature",
    "GRID_SAFE_TOL",
    "SCREEN_SAFE",
    "SCREEN_TIE",
    "SCREEN_LP",
]

#: Prescreen verdicts (per entry): the insert provably cannot disturb the
#: entry / ties its k-th record exactly everywhere (caller's tie-break
#: decides) / needs the LP to decide.
SCREEN_SAFE = 0
SCREEN_TIE = 1
SCREEN_LP = 2


#: Grid registration slack (see :mod:`repro.core.tolerances`:
#: ``GRID_SLACK`` must dominate ``GRID_SAFE_TOL * (1 + sqrt(d))``;
#: both constants live there so the soundness pair cannot drift apart).
_GRID_SLACK = GRID_SLACK

#: Target total cell count of the grid; the per-axis resolution is the
#: largest ``g`` with ``g**d`` at or below this (at least 2 per axis).
_GRID_TARGET_CELLS = 4096


def default_grid_cells(d: int) -> int:
    """Cells per axis for dimensionality ``d`` (largest ``g`` with
    ``g**d <= _GRID_TARGET_CELLS``, floored at 2)."""
    g = max(2, int(round(_GRID_TARGET_CELLS ** (1.0 / d))))
    while g > 2 and g**d > _GRID_TARGET_CELLS:
        g -= 1
    return g


# repro: thread-owned[GridSignature] -- lives inside one RegionIndex and shares its single-owner discipline (probe counters mutate on reads)
class GridSignature:
    """Coarse uniform-grid negative filter over the unit query box.

    Every registered entry marks the grid cells its (slack-relaxed) region
    can intersect; a probe's cell having **zero** registrations proves the
    probe is in no entry's region. Registration over-approximates (per
    cell, per half-space row: the row's minimum over the cell box must not
    exceed ``b + slack`` — corner-separable, one matmul for all cells), so
    false negatives are impossible; false positives merely fall through to
    the exact membership matvec.
    """

    def __init__(self, d: int, cells_per_axis: int) -> None:
        self.d = int(d)
        self.g = int(cells_per_axis)
        if self.g < 2:
            raise ValueError("grid needs at least 2 cells per axis")
        self.n_cells = self.g**self.d
        #: Mixed-radix strides: cell id = sum_i idx_i * g**i.
        self._strides = self.g ** np.arange(self.d, dtype=np.int64)
        self._counts = np.zeros(self.n_cells, dtype=np.int64)
        #: Python-list mirror of ``_counts`` for the scalar lookup path
        #: (a list read is faster than a numpy scalar read).
        self._counts_list: list[int] = [0] * self.n_cells
        #: Memoized registered-cell ids per entry key (immutable per key).
        self._cells: dict[int, np.ndarray] = {}
        self._corner_lo: np.ndarray | None = None
        self._corner_hi: np.ndarray | None = None
        #: Lookups that consulted the grid / were answered "certain miss".
        self.probes = 0
        self.negatives = 0

    def _corners(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper corners of every cell, ``(n_cells, d)`` each —
        built once per signature and shared across registrations."""
        if self._corner_lo is None:
            idx = np.arange(self.n_cells, dtype=np.int64)
            digits = (idx[:, None] // self._strides[None, :]) % self.g
            self._corner_lo = digits.astype(np.float64) / self.g
            self._corner_hi = (digits + 1).astype(np.float64) / self.g
        return self._corner_lo, self._corner_hi

    def register(self, key: int, A_n: np.ndarray, b_n: np.ndarray) -> None:
        """Mark the cells the region ``A_n x <= b_n`` (slack-relaxed) can
        touch. Rows must be normalized so the slack is norm-relative."""
        lo, hi = self._corners()
        # Min of a linear function over a box is corner-separable.
        mins = lo @ np.maximum(A_n, 0.0).T + hi @ np.minimum(A_n, 0.0).T
        cells = np.flatnonzero((mins <= b_n + _GRID_SLACK).all(axis=1))
        self._cells[key] = cells
        self._counts[cells] += 1
        lst = self._counts_list
        for c in cells.tolist():
            lst[c] += 1

    def unregister(self, key: int) -> None:
        cells = self._cells.pop(key, None)
        if cells is not None:
            self._counts[cells] -= 1
            lst = self._counts_list
            for c in cells.tolist():
                lst[c] -= 1

    def clear(self) -> None:
        self._counts[:] = 0
        self._counts_list = [0] * self.n_cells
        self._cells.clear()

    def cell_of(self, x: np.ndarray) -> int:
        """Cell id of ``x`` clipped into the unit box."""
        g = self.g
        cell = 0
        stride = 1
        # Scalar loop on purpose: for the handful of coordinates involved,
        # Python float math is several times faster than a chain of tiny
        # numpy array ops — and this runs once per cache lookup.
        for xi in x.tolist():
            c = int(xi * g) if xi > 0.0 else 0
            if c >= g:
                c = g - 1
            cell += c * stride
            stride *= g
        return cell

    def is_certain_miss(self, x: np.ndarray, tol: float) -> bool:
        """True iff the grid *proves* ``x`` is in no registered region.

        Sound only for ``tol <= GRID_SAFE_TOL``; out-of-box probes (beyond
        ``tol`` past the unit box) are never decided by the grid, so the
        proof needs no assumption that regions carry unit-box rows.
        """
        if tol > GRID_SAFE_TOL:
            return False
        g = self.g
        hi = 1.0 + tol
        lo = -tol
        cell = 0
        stride = 1
        for xi in x.tolist():
            if xi < lo or xi > hi:
                return False
            c = int(xi * g) if xi > 0.0 else 0
            if c >= g:
                c = g - 1
            cell += c * stride
            stride *= g
        return self._counts_list[cell] == 0

    def certain_miss_mask(self, X: np.ndarray, tol: float) -> np.ndarray:
        """Vectorized :meth:`is_certain_miss` over ``(q, d)`` probes."""
        q = X.shape[0]
        if tol > GRID_SAFE_TOL:
            return np.zeros(q, dtype=bool)
        in_box = ((X >= -tol) & (X <= 1.0 + tol)).all(axis=1)
        idx = np.minimum(
            (np.clip(X, 0.0, 1.0) * self.g).astype(np.int64), self.g - 1
        )
        empty = self._counts[idx @ self._strides] == 0
        return in_box & empty

    def stats(self) -> dict[str, int]:
        return {
            "cells_per_axis": self.g,
            "cells_total": self.n_cells,
            "registered_cells": int(
                sum(len(c) for c in self._cells.values())
            ),
            "probes": self.probes,
            "negatives": self.negatives,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridSignature(d={self.d}, g={self.g}, "
            f"entries={len(self._cells)})"
        )


@dataclass
class _ScreenEntry:
    """Static insert-screen geometry of one cached region."""

    #: Region vertices ``(nv, d)`` — a one-row placeholder when enumeration
    #: failed (then ``has_vertices`` is False and the ball bound is used).
    V: np.ndarray
    #: Per-vertex ``V @ g(p_k)`` for the entry's k-th result record.
    vdots: np.ndarray
    #: Chebyshev centre (NaN when the centre LP failed).
    center: np.ndarray
    #: g-image of the entry's k-th result record.
    kth_g: np.ndarray
    has_vertices: bool


# repro: thread-owned[RegionIndex] -- owned by one GIRCache; reached only under the router's serve lock (membership lazily materializes screen stacks)
class RegionIndex:
    """Contiguously stacked half-space rows of many bounded regions.

    All regions share one dimensionality ``d`` (the cache keeps one index
    per query-space dimension). Entries are identified by the cache's
    integer keys; ``add``/``remove``/``clear`` maintain the stacks
    incrementally (append on add, segment splice on remove).
    """

    def __init__(self, d: int, grid_cells: int | None = None) -> None:
        """``grid_cells`` is the admission grid's per-axis resolution:
        ``None`` picks :func:`default_grid_cells`, ``0`` disables the grid
        (every lookup runs the exact matvec — the pre-grid behaviour)."""
        if d <= 0:
            raise ValueError("dimensionality must be positive")
        self.d = int(d)
        if grid_cells is None:
            grid_cells = default_grid_cells(self.d)
        #: Admission-prescreen grid (``None`` = disabled).
        self.grid: GridSignature | None = (
            GridSignature(self.d, grid_cells) if grid_cells else None
        )
        self._keys: list[int] = []
        self._A = np.empty((0, d), dtype=np.float64)
        self._b = np.empty(0, dtype=np.float64)
        #: Row segment boundaries: entry ``i`` owns rows
        #: ``offsets[i]:offsets[i+1]``.
        self._offsets = np.zeros(1, dtype=np.int64)
        #: Per-key screen geometry: ``None`` = ineligible (no ``kth_g``
        #: given), a ``(polytope, kth_g)`` tuple = pending lazy
        #: computation, a :class:`_ScreenEntry` = computed.
        self._screen: dict[int, _ScreenEntry | tuple | None] = {}
        self._screen_stacks: tuple | None = None

    # -- maintenance ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def rows(self) -> int:
        """Total stacked half-space rows across all entries."""
        return int(self._offsets[-1])

    def keys(self) -> list[int]:
        """Entry keys in segment (insertion) order."""
        return list(self._keys)

    @sanitize.mutates
    def add(self, key: int, polytope: Polytope, kth_g: np.ndarray | None = None) -> None:
        """Index a region under ``key``.

        ``kth_g`` (the g-image of the entry's k-th result record) enables
        the insert-invalidation prescreen for this entry; without it the
        entry is always classified :data:`SCREEN_LP`.
        """
        if polytope.d != self.d:
            raise ValueError(f"expected a {self.d}-d region, got {polytope.d}-d")
        if polytope.m == 0:
            raise ValueError("cannot index a constraint-free region")
        if key in self._screen:
            raise KeyError(f"key {key} already indexed")
        A_n, b_n = polytope.normalized_halfspaces()
        self._A = np.concatenate([self._A, A_n])
        self._b = np.concatenate([self._b, b_n])
        self._offsets = np.append(self._offsets, self._offsets[-1] + polytope.m)
        self._keys.append(key)
        if self.grid is not None:
            self.grid.register(key, A_n, b_n)
        self._screen[key] = None if kth_g is None else (
            polytope,
            np.asarray(kth_g, dtype=np.float64),
        )
        self._screen_stacks = None

    @sanitize.mutates
    def remove(self, key: int) -> bool:
        """Drop an entry; returns False if the key is unknown."""
        return self.remove_many([key]) == 1

    @sanitize.mutates
    def remove_many(self, keys) -> int:
        """Drop several entries in one compaction pass over the stacks
        (an update can invalidate many entries at once; splicing them out
        one at a time would copy the arrays once per key). Unknown keys
        are ignored; returns the number removed.
        """
        drop = {key for key in keys if key in self._screen}
        if not drop:
            return 0
        keep_rows = np.ones(self.rows, dtype=bool)
        kept_keys: list[int] = []
        kept_counts: list[int] = []
        for idx, key in enumerate(self._keys):
            start, stop = int(self._offsets[idx]), int(self._offsets[idx + 1])
            if key in drop:
                keep_rows[start:stop] = False
                del self._screen[key]
                if self.grid is not None:
                    self.grid.unregister(key)
            else:
                kept_keys.append(key)
                kept_counts.append(stop - start)
        self._A = self._A[keep_rows]
        self._b = self._b[keep_rows]
        self._offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(kept_counts, dtype=np.int64)]
        )
        self._keys = kept_keys
        self._screen_stacks = None
        return len(drop)

    @sanitize.mutates
    def clear(self) -> None:
        self._keys = []
        self._A = np.empty((0, self.d), dtype=np.float64)
        self._b = np.empty(0, dtype=np.float64)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._screen = {}
        self._screen_stacks = None
        if self.grid is not None:
            self.grid.clear()

    def grid_stats(self) -> dict[str, int] | None:
        """Admission-grid counters (``None`` when the grid is disabled)."""
        return None if self.grid is None else self.grid.stats()

    # -- membership -----------------------------------------------------------

    @sanitize.mutates  # grid probe counters advance on every lookup
    def membership(self, x: np.ndarray, tol: float = MEMBERSHIP_TOL) -> np.ndarray:
        """Boolean array over :meth:`keys`: which regions contain ``x``?

        One matvec over all stacked rows + one segment reduction —
        equivalent to calling ``contains`` per entry. When the admission
        grid proves the probe's cell empty the matvec is skipped entirely
        (an O(1) certain miss with all-False answer).
        """
        if not self._keys:
            return np.zeros(0, dtype=bool)
        x = np.asarray(x, dtype=np.float64)
        if self.grid is not None:
            self.grid.probes += 1
            if self.grid.is_certain_miss(x, tol):
                self.grid.negatives += 1
                return np.zeros(len(self._keys), dtype=bool)
        return kernels.segmented_membership(
            self._A, self._b, self._offsets, x, tol
        )

    @sanitize.mutates
    def membership_batch(self, X: np.ndarray, tol: float = MEMBERSHIP_TOL) -> np.ndarray:
        """Membership of a whole query batch at once.

        ``X`` is ``(q, d)``; returns boolean ``(q, n_entries)``, columns in
        :meth:`keys` order. The entire batch-vs-cache evaluation is one
        matmul ``X @ A_allᵀ``.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.d:
            raise ValueError(f"X must have shape (q, {self.d})")
        if not self._keys:
            return np.zeros((X.shape[0], 0), dtype=bool)
        if self.grid is not None:
            self.grid.probes += X.shape[0]
            miss = self.grid.certain_miss_mask(X, tol)
            if miss.any():
                self.grid.negatives += int(miss.sum())
                out = np.zeros((X.shape[0], len(self._keys)), dtype=bool)
                survivors = ~miss
                if survivors.any():
                    out[survivors] = kernels.segmented_membership_batch(
                        self._A, self._b, self._offsets, X[survivors], tol
                    )
                return out
        return kernels.segmented_membership_batch(
            self._A, self._b, self._offsets, X, tol
        )

    # -- insert-invalidation prescreen ----------------------------------------

    def _materialize_screen(self) -> tuple:
        """Build (lazily, cached) the stacked screen arrays.

        Pending entries compute their vertex set / Chebyshev centre here —
        once per cache lifetime; rebuilds after add/remove only re-stack
        the already-computed per-entry blocks.
        """
        if self._screen_stacks is not None:
            return self._screen_stacks
        placeholder_V = np.zeros((1, self.d))
        # -inf placeholder => segment max +inf => "needs LP" on any miss of
        # the dedicated fallback paths; never silently screens out.
        placeholder_dots = np.full(1, -np.inf)
        V_parts, vdot_parts = [], []
        voffsets = [0]
        kth_rows, centers, eligible, no_vertices = [], [], [], []
        for key in self._keys:
            blob = self._screen[key]
            if isinstance(blob, tuple):
                blob = self._compute_screen_entry(*blob)
                self._screen[key] = blob
            if blob is None:
                V_parts.append(placeholder_V)
                vdot_parts.append(placeholder_dots)
                kth_rows.append(np.full(self.d, np.nan))
                centers.append(np.full(self.d, np.nan))
                eligible.append(False)
                no_vertices.append(False)
            else:
                V_parts.append(blob.V)
                vdot_parts.append(blob.vdots)
                kth_rows.append(blob.kth_g)
                centers.append(blob.center)
                eligible.append(True)
                no_vertices.append(not blob.has_vertices)
            voffsets.append(voffsets[-1] + len(vdot_parts[-1]))
        n = len(self._keys)
        self._screen_stacks = (
            np.concatenate(V_parts) if n else np.zeros((0, self.d)),
            np.concatenate(vdot_parts) if n else np.zeros(0),
            np.asarray(voffsets, dtype=np.int64),
            np.asarray(kth_rows).reshape(n, self.d),
            np.asarray(centers).reshape(n, self.d),
            np.asarray(eligible, dtype=bool),
            np.asarray(no_vertices, dtype=bool),
        )
        return self._screen_stacks

    def _compute_screen_entry(
        self, polytope: Polytope, kth_g: np.ndarray
    ) -> _ScreenEntry:
        verts = polytope.vertices()
        center, _radius = polytope.chebyshev_center()
        # Only un-joggled vertex sets give a sound maximum (a joggled run
        # can misplace or miss vertices); anything else uses the enclosing
        # ball around the Chebyshev centre instead.
        if verts.shape[0] and polytope.vertices_exact:
            return _ScreenEntry(
                V=verts, vdots=verts @ kth_g, center=center, kth_g=kth_g,
                has_vertices=True,
            )
        return _ScreenEntry(
            V=np.zeros((1, self.d)),
            vdots=np.full(1, -np.inf),
            center=center,
            kth_g=kth_g,
            has_vertices=False,
        )

    @sanitize.mutates  # lazily materializes the screen stacks
    def prescreen_insert(
        self,
        point_g: np.ndarray,
        tol: float = MEMBERSHIP_TOL,
        safety: float = SCREEN_SAFETY,
    ) -> np.ndarray:
        """Classify every entry against an inserted record's g-image.

        Returns an int8 array aligned with :meth:`keys`:

        * :data:`SCREEN_SAFE` — the record provably cannot out-score the
          entry's k-th record anywhere in its region (no LP needed): it is
          dominated component-wise, or the vertex-set upper bound of
          ``(g(p_new) − g(p_k)) · w`` is below ``tol − safety``;
        * :data:`SCREEN_TIE` — identical g-image to the k-th record (a tie
          at *every* query vector; the caller's tie-break rule decides);
        * :data:`SCREEN_LP` — undecided, run the exact LP test.

        ``safety`` absorbs vertex rounding (un-joggled qhull vertices are
        reliable to ~1e-12) so the screen stays conservative: a skipped
        entry's true LP margin is certainly below the LP test's ``tol``.
        It must stay *below* ``tol``: GIR regions contain the origin (the
        cone apex), so every undisturbable entry's exact maximum is 0 —
        a ``safety ≥ tol`` would reject the very bound the screen exists
        to accept. Entries added without ``kth_g`` are always
        :data:`SCREEN_LP`.
        """
        n = len(self._keys)
        codes = np.full(n, SCREEN_LP, dtype=np.int8)
        if n == 0:
            return codes
        point_g = np.asarray(point_g, dtype=np.float64)
        V_all, vdots, voffsets, kth, centers, eligible, no_verts = (
            self._materialize_screen()
        )
        delta = point_g[None, :] - kth  # NaN rows for ineligible entries
        with np.errstate(invalid="ignore"):
            # repro: allow[numeric-safety] -- exact g-image ties only: a row
            # whose kth g-vector is bit-identical to the query point must be
            # screened as a tie, and any tolerance here would misclassify
            # near-ties that the LP path handles correctly
            tie = eligible & (delta == 0.0).all(axis=1)
            dominated = eligible & ~tie & (delta <= 0.0).all(axis=1)
            bound = kernels.segmented_max(V_all @ point_g - vdots, voffsets)
            ball = eligible & no_verts
            if ball.any():
                d_ball = delta[ball]
                bound[ball] = (d_ball * centers[ball]).sum(axis=1) + np.sqrt(
                    self.d
                ) * np.linalg.norm(d_ball, axis=1)
            safe = eligible & ~tie & (dominated | (bound <= tol - safety))
        codes[tie] = SCREEN_TIE
        codes[safe] = SCREEN_SAFE
        return codes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegionIndex(d={self.d}, entries={len(self)}, rows={self.rows})"
