"""GIR computation: the public entry point over the staged pipeline.

Usage::

    from repro import compute_gir, bulk_load_str, independent

    data = independent(n=10_000, d=4, seed=1)
    tree = bulk_load_str(data)
    gir = compute_gir(tree, data, weights=[0.6, 0.5, 0.6, 0.7], k=10, method="fp")
    gir.volume_ratio()            # sensitivity measure (Figure 14)
    gir.contains([0.5, 0.5, 0.62, 0.71])
    gir.boundary_perturbations()  # what changes at each GIR facet

The heavy lifting lives in :mod:`repro.core.pipeline`, which stages the
computation as ``retrieve → phase1 → phase2 → assemble`` over a shared
:class:`~repro.core.pipeline.ExecutionContext`; :func:`compute_gir` is a
thin wrapper that builds the context and runs the chain. The result object
carries per-stage CPU times and simulated I/O so the benchmark harness can
print the paper's charts directly, and the serving layer
(:mod:`repro.engine`) can charge each request precisely.

For serving under a *changing* database, :class:`GIRResult` also exposes a
region k-th-score bound — :meth:`GIRResult.kth_score_margin` /
:meth:`GIRResult.admits_above_kth` — the halfspace-intersection test that
decides whether a newly inserted record can enter the cached top-k
anywhere inside the region. The dynamic engine's selective cache
invalidation (:mod:`repro.core.caching`) is built on it.
"""

from __future__ import annotations

import numpy as np

from repro.core.phase2_fp import FPOptions
from repro.core.pipeline import (
    PHASE2_METHODS,
    ExecutionContext,
    GIRResult,
    GIRStats,
    run_pipeline,
)
from repro.data.dataset import Dataset
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun
from repro.scoring import ScoringFunction

__all__ = ["GIRStats", "GIRResult", "compute_gir", "PHASE2_METHODS"]


def compute_gir(
    tree: RStarTree,
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    method: str = "fp",
    scorer: ScoringFunction | None = None,
    metered: bool = True,
    run: BRSRun | None = None,
    fp_options: "FPOptions | None" = None,
) -> GIRResult:
    """Compute the global immutable region of a top-k query.

    Parameters
    ----------
    tree:
        R*-tree over the data.
    data:
        The :class:`Dataset` (or raw ``(n, d)`` array) the tree indexes.
    weights:
        Query vector ``q`` with non-negative components.
    k:
        Result size.
    method:
        Phase-2 algorithm: ``"sp"``, ``"cp"`` or ``"fp"`` (default, the
        paper's best).
    scorer:
        Scoring function (linear by default). SP supports any
        per-dimension monotone function; CP/FP support them through the
        g-space reduction (DESIGN.md §5).
    metered:
        Charge node accesses to the tree's I/O meter.
    run:
        Optionally, an existing BRS run to reuse (e.g. when computing the
        GIR for a result the application already retrieved).
    fp_options:
        :class:`~repro.core.phase2_fp.FPOptions` tuning knobs (FP only);
        all settings are correctness-preserving.
    """
    ctx = ExecutionContext.create(
        tree, data, weights, k,
        method=method, scorer=scorer, metered=metered, fp_options=fp_options,
    )
    return run_pipeline(ctx, run)
