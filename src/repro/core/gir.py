"""GIR computation: the orchestrator tying BRS, Phase 1 and Phase 2 together.

Usage::

    from repro import compute_gir, bulk_load_str, independent

    data = independent(n=10_000, d=4, seed=1)
    tree = bulk_load_str(data)
    gir = compute_gir(tree, data, weights=[0.6, 0.5, 0.6, 0.7], k=10, method="fp")
    gir.volume_ratio()            # sensitivity measure (Figure 14)
    gir.contains([0.5, 0.5, 0.62, 0.71])
    gir.boundary_perturbations()  # what changes at each GIR facet

The result object carries per-phase CPU times and simulated I/O so the
benchmark harness can print the paper's charts directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.phase1 import phase1_halfspaces
from repro.core.phase2 import Phase2Output
from repro.core.phase2_cp import phase2_cp
from repro.core.phase2_fp import FPOptions, phase2_fp
from repro.core.phase2_sp import phase2_sp
from repro.data.dataset import Dataset
from repro.geometry.halfspace import Halfspace
from repro.geometry.polytope import Polytope
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun, brs_topk
from repro.query.topk import TopKResult
from repro.scoring import LinearScoring, ScoringFunction

__all__ = ["GIRStats", "GIRResult", "compute_gir", "PHASE2_METHODS"]

PHASE2_METHODS = {"sp": phase2_sp, "cp": phase2_cp, "fp": phase2_fp}


@dataclass
class GIRStats:
    """Cost breakdown of one GIR computation."""

    cpu_ms_topk: float = 0.0
    cpu_ms_phase1: float = 0.0
    cpu_ms_phase2: float = 0.0
    io_pages_topk: int = 0
    io_pages_phase2: int = 0
    io_ms_per_page: float = 0.0
    phase2_candidates: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def cpu_ms_total(self) -> float:
        """CPU time of GIR computation proper (Phases 1+2, as the paper
        reports; top-k retrieval is a prerequisite common to all methods)."""
        return self.cpu_ms_phase1 + self.cpu_ms_phase2

    @property
    def io_pages_total(self) -> int:
        return self.io_pages_topk + self.io_pages_phase2

    @property
    def io_ms_phase2(self) -> float:
        """Simulated Phase-2 I/O time — the paper's I/O metric."""
        return self.io_pages_phase2 * self.io_ms_per_page


@dataclass
class GIRResult:
    """The global immutable region of a top-k query (Definition 1)."""

    weights: np.ndarray
    topk: TopKResult
    halfspaces: list[Halfspace]
    polytope: Polytope
    method: str
    stats: GIRStats
    #: Row index in ``polytope`` of the first half-space row (after the box).
    _hs_row_offset: int = 0

    # -- semantics ------------------------------------------------------------

    def contains(self, q: np.ndarray, tol: float = 1e-9) -> bool:
        """Does query vector ``q`` preserve the (ordered) top-k result?"""
        return self.polytope.contains(q, tol=tol)

    def volume(self) -> float:
        return self.polytope.volume()

    def volume_ratio(self) -> float:
        """``vol(GIR) / vol(query space)`` — the robustness probability of a
        uniformly random query vector preserving the result (Section 1; the
        LIK measure of [30]). The query space is the unit box, so the ratio
        equals the volume."""
        return self.volume()

    def boundary_perturbations(self, tol: float = 1e-9):
        """Result changes at each bounding facet — see
        :func:`repro.core.perturbation.boundary_perturbations`."""
        from repro.core.perturbation import boundary_perturbations

        return boundary_perturbations(self, tol=tol)

    def lir_intervals(self) -> list[tuple[float, float]]:
        """Per-weight immutable intervals through the original query — the
        interactive projection of Section 7.3 (equals the LIRs of [24])."""
        return [
            self.polytope.axis_interval(axis, self.weights)
            for axis in range(self.polytope.d)
        ]

    @property
    def d(self) -> int:
        return int(self.weights.shape[0])

    def halfspace_rows(self) -> list[tuple[int, Halfspace]]:
        """(polytope row index, half-space) pairs for the GIR conditions."""
        return [
            (self._hs_row_offset + i, hs) for i, hs in enumerate(self.halfspaces)
        ]

    def summary(self) -> str:
        """Human-readable report of the region and its cost breakdown."""
        s = self.stats
        lines = [
            f"GIR of a top-{self.topk.k} query ({self.method.upper()}, d={self.d})",
            f"  result ids     : {list(self.topk.ids)}",
            f"  half-spaces    : {len(self.halfspaces)} "
            f"({sum(h.kind == 'order' for h in self.halfspaces)} order, "
            f"{sum(h.kind == 'separation' for h in self.halfspaces)} separation)",
            f"  volume ratio   : {self.volume_ratio():.3e}",
            f"  cpu            : topk {s.cpu_ms_topk:.1f} ms, "
            f"phase1+2 {s.cpu_ms_total:.1f} ms",
            f"  phase-2 I/O    : {s.io_pages_phase2} pages "
            f"(~{s.io_ms_phase2:.0f} ms at {s.io_ms_per_page:.0f} ms/page)",
            f"  candidates     : {s.phase2_candidates}",
        ]
        return "\n".join(lines)


def compute_gir(
    tree: RStarTree,
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    method: str = "fp",
    scorer: ScoringFunction | None = None,
    metered: bool = True,
    run: BRSRun | None = None,
    fp_options: "FPOptions | None" = None,
) -> GIRResult:
    """Compute the global immutable region of a top-k query.

    Parameters
    ----------
    tree:
        R*-tree over the data.
    data:
        The :class:`Dataset` (or raw ``(n, d)`` array) the tree indexes.
    weights:
        Query vector ``q`` with non-negative components.
    k:
        Result size.
    method:
        Phase-2 algorithm: ``"sp"``, ``"cp"`` or ``"fp"`` (default, the
        paper's best).
    scorer:
        Scoring function (linear by default). SP supports any
        per-dimension monotone function; CP/FP support them through the
        g-space reduction (DESIGN.md §5).
    metered:
        Charge node accesses to the tree's I/O meter.
    run:
        Optionally, an existing BRS run to reuse (e.g. when computing the
        GIR for a result the application already retrieved).
    fp_options:
        :class:`~repro.core.phase2_fp.FPOptions` tuning knobs (FP only);
        all settings are correctness-preserving.
    """
    if method not in PHASE2_METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {sorted(PHASE2_METHODS)}")
    points = data.points if isinstance(data, Dataset) else np.asarray(data, float)
    weights = np.asarray(weights, dtype=np.float64)
    scorer = scorer or LinearScoring(tree.d)
    points_g = scorer.transform(points)

    io_before = tree.store.stats.page_reads
    t0 = time.perf_counter()
    if run is None:
        run = brs_topk(tree, points, weights, k, scorer=scorer, metered=metered)
    t1 = time.perf_counter()
    io_after_topk = tree.store.stats.page_reads

    hs_order = phase1_halfspaces(run.result, points_g)
    t2 = time.perf_counter()

    method_kwargs = {}
    if method == "fp" and fp_options is not None:
        method_kwargs["options"] = fp_options
    phase2: Phase2Output = PHASE2_METHODS[method](
        tree, points, points_g, run, scorer, metered=metered, **method_kwargs
    )
    t3 = time.perf_counter()
    io_after_phase2 = tree.store.stats.page_reads

    halfspaces = hs_order + phase2.halfspaces
    box = Polytope.from_unit_box(tree.d)
    polytope = box.with_constraints(
        np.asarray([hs.normal for hs in halfspaces])
        if halfspaces
        else np.empty((0, tree.d))
    )
    stats = GIRStats(
        cpu_ms_topk=(t1 - t0) * 1e3,
        cpu_ms_phase1=(t2 - t1) * 1e3,
        cpu_ms_phase2=(t3 - t2) * 1e3,
        io_pages_topk=io_after_topk - io_before,
        io_pages_phase2=io_after_phase2 - io_after_topk,
        io_ms_per_page=tree.store.stats.latency_ms_per_page,
        phase2_candidates=len(phase2.candidate_ids),
        extras=dict(phase2.extras),
    )
    return GIRResult(
        weights=weights,
        topk=run.result,
        halfspaces=halfspaces,
        polytope=polytope,
        method=method,
        stats=stats,
        _hs_row_offset=2 * tree.d,
    )
