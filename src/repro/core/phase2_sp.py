"""SP — Skyline Pruning (Section 5.1).

Only records in the skyline ``SL`` of ``D \\ R`` can overtake ``p_k`` first:
a dominated record's score never exceeds its dominator's under any monotone
scoring function, so satisfying the dominator's condition implies the
dominated record's. SP therefore intersects the interim GIR with one
half-space per skyline record.

``SL`` is obtained with the BBS continuation described in Section 5.1: the
skyline of the records already encountered by BRS, refined by draining the
retained BRS search heap.

SP is the one method that remains applicable to general monotone scoring
functions (Section 7.2): dominance pruning is function-agnostic, and the
half-spaces are formed in g-space.
"""

from __future__ import annotations

import numpy as np

from repro.core.phase2 import Phase2Output
from repro.geometry.halfspace import separation_halfspace
from repro.index.rtree import RStarTree
from repro.query.bbs import bbs_skyline
from repro.query.brs import BRSRun
from repro.scoring import ScoringFunction

__all__ = ["phase2_sp", "skyline_candidates"]


def skyline_candidates(
    tree: RStarTree,
    points: np.ndarray,
    run: BRSRun,
    scorer: ScoringFunction,
    metered: bool = True,
) -> list[int]:
    """The skyline ``SL`` of the non-result records (shared by SP and CP)."""
    return bbs_skyline(tree, points, run=run, scorer=scorer, metered=metered)


def phase2_sp(
    tree: RStarTree,
    points: np.ndarray,
    points_g: np.ndarray,
    run: BRSRun,
    scorer: ScoringFunction,
    metered: bool = True,
    skyline: list[int] | None = None,
) -> Phase2Output:
    """Derive separation half-spaces from every skyline record.

    ``skyline`` can be supplied to reuse an already-computed ``SL`` (the
    GIR* path computes it once for all result records).
    """
    if skyline is None:
        skyline = skyline_candidates(tree, points, run, scorer, metered=metered)
    pk = run.result.kth_id
    pk_g = points_g[pk]
    halfspaces = [
        separation_halfspace(pk_g, points_g[rid], pk, rid) for rid in skyline
    ]
    return Phase2Output(
        halfspaces=halfspaces,
        candidate_ids=list(skyline),
        extras={"skyline_size": float(len(skyline))},
    )
