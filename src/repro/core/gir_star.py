"""GIR* — the order-insensitive immutable region (Section 7.1).

GIR* is the maximal locus where the *composition* of the top-k result is
preserved, ignoring internal order; it encloses the order-sensitive GIR.
Definition 2 requires ``S(p_i, q') ≥ S(p, q')`` for every result record
``p_i`` and every non-result record ``p``.

Processing (per the paper):

* **result pruning** — a result record can be ignored if it lies strictly
  inside the convex hull of ``R`` or if it dominates another result record
  (anything overtaking it must first overtake the hull/dominated record).
  The survivors form ``R⁻``.
* each ``p_i ∈ R⁻`` yields a region ``GIR_i`` by running Phase 2 with
  ``p_i`` in the role of ``p_k``; then ``GIR* = ∩ GIR_i``.
* SP/CP compute the skyline (and hull) of the non-result records **once**
  and reuse it for every ``GIR_i``; FP maintains all the facet fans
  **concurrently** during a single drain of the retained BRS heap, pruning
  a node only when it is below every facet of every fan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.gir import GIRStats
from repro.core.phase2_cp import hull_of_skyline
from repro.core.phase2_fp import build_fan, refine_fans
from repro.core.phase2_sp import skyline_candidates
from repro.data.dataset import Dataset
from repro.geometry.convexhull import hull_vertex_ids
from repro.geometry.halfspace import Halfspace, separation_halfspace
from repro.geometry.polytope import Polytope
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun, brs_topk
from repro.query.topk import TopKResult
from repro.scoring import LinearScoring, ScoringFunction

__all__ = ["GIRStarResult", "compute_gir_star", "prune_result_records"]


@dataclass
class GIRStarResult:
    """The order-insensitive immutable region of a top-k query."""

    weights: np.ndarray
    topk: TopKResult
    halfspaces: list[Halfspace]
    polytope: Polytope
    method: str
    stats: GIRStats
    #: The pruned result set R⁻ actually used to bound the region.
    active_result_ids: tuple[int, ...] = ()

    def contains(self, q: np.ndarray, tol: float = 1e-9) -> bool:
        """Does ``q`` preserve the *composition* of the top-k result?"""
        return self.polytope.contains(q, tol=tol)

    def volume(self) -> float:
        return self.polytope.volume()


def prune_result_records(
    result_ids: tuple[int, ...], points: np.ndarray, points_g: np.ndarray
) -> list[int]:
    """The paper's ``R⁻``: result records that can actually bound GIR*.

    Discards records strictly inside the hull of ``R`` (in g-space, where
    scoring is linear) and records dominating at least one other result
    record (in data space, where dominance is defined).
    """
    ids = list(result_ids)
    if len(ids) == 1:
        return ids
    pts_g = points_g[np.asarray(ids, dtype=np.intp)]
    on_hull = hull_vertex_ids(pts_g)
    survivors = []
    for local, rid in enumerate(ids):
        if local not in on_hull:
            continue
        p = points[rid]
        dominates_other = False
        for other in ids:
            if other == rid:
                continue
            o = points[other]
            if (p >= o).all() and (p > o).any():
                dominates_other = True
                break
        if not dominates_other:
            survivors.append(rid)
    # R⁻ can never be empty: the record with the minimum score bound must
    # remain reachable. Degenerate pruning (all records dominate someone in
    # a chain) falls back to the hull records.
    if not survivors:
        survivors = [ids[local] for local in sorted(on_hull)]
    return survivors


def compute_gir_star(
    tree: RStarTree,
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    method: str = "fp",
    scorer: ScoringFunction | None = None,
    metered: bool = True,
    run: BRSRun | None = None,
) -> GIRStarResult:
    """Compute the order-insensitive GIR* (Definition 2)."""
    if method not in ("sp", "cp", "fp"):
        raise ValueError(f"unknown method {method!r}")
    points = data.points if isinstance(data, Dataset) else np.asarray(data, float)
    weights = np.asarray(weights, dtype=np.float64)
    scorer = scorer or LinearScoring(tree.d)
    points_g = scorer.transform(points)

    io_before = tree.store.stats.page_reads
    t0 = time.perf_counter()
    if run is None:
        run = brs_topk(tree, points, weights, k, scorer=scorer, metered=metered)
    t1 = time.perf_counter()
    io_after_topk = tree.store.stats.page_reads

    active = prune_result_records(run.result.ids, points, points_g)
    halfspaces: list[Halfspace] = []
    extras: dict[str, float] = {"active_result_records": float(len(active))}

    if method in ("sp", "cp"):
        skyline = skyline_candidates(tree, points, run, scorer, metered=metered)
        if method == "cp":
            candidates = hull_of_skyline(points_g, skyline)
            extras["hull_size"] = float(len(candidates))
        else:
            candidates = skyline
        extras["skyline_size"] = float(len(skyline))
        for pi in active:
            pi_g = points_g[pi]
            halfspaces.extend(
                separation_halfspace(pi_g, points_g[rid], pi, rid)
                for rid in candidates
            )
        total_candidates = len(candidates)
    else:
        lower_corner_g = scorer.transform_one(np.zeros(tree.d))
        fans = {
            pi: build_fan(
                pi, points, points_g, run.encountered, weights, lower_corner_g
            )
            for pi in active
        }
        fetched = refine_fans(
            tree, points, points_g, run, fans, scorer, metered=metered
        )
        extras["nodes_fetched_phase2"] = float(fetched)
        criticals_union: set[int] = set()
        for pi, fan in fans.items():
            pi_g = points_g[pi]
            crits = sorted(
                key for key in fan.critical_keys() if not isinstance(key, tuple)
            )
            criticals_union.update(crits)
            halfspaces.extend(
                separation_halfspace(pi_g, points_g[rid], pi, rid) for rid in crits
            )
        extras["fan_facets"] = float(sum(f.facet_count() for f in fans.values()))
        total_candidates = len(criticals_union)

    t2 = time.perf_counter()
    io_after_phase2 = tree.store.stats.page_reads

    box = Polytope.from_unit_box(tree.d)
    polytope = box.with_constraints(
        np.asarray([hs.normal for hs in halfspaces])
        if halfspaces
        else np.empty((0, tree.d))
    )
    stats = GIRStats(
        cpu_ms_topk=(t1 - t0) * 1e3,
        cpu_ms_phase1=0.0,
        cpu_ms_phase2=(t2 - t1) * 1e3,
        io_pages_topk=io_after_topk - io_before,
        io_pages_phase2=io_after_phase2 - io_after_topk,
        io_ms_per_page=tree.store.stats.latency_ms_per_page,
        phase2_candidates=total_candidates,
        extras=extras,
    )
    return GIRStarResult(
        weights=weights,
        topk=run.result,
        halfspaces=halfspaces,
        polytope=polytope,
        method=method,
        stats=stats,
        active_result_ids=tuple(active),
    )
