"""GIR* — the order-insensitive immutable region (Section 7.1).

GIR* is the maximal locus where the *composition* of the top-k result is
preserved, ignoring internal order; it encloses the order-sensitive GIR.
Definition 2 requires ``S(p_i, q') ≥ S(p, q')`` for every result record
``p_i`` and every non-result record ``p``.

Processing (per the paper):

* **result pruning** — a result record can be ignored if it lies strictly
  inside the convex hull of ``R`` or if it dominates another result record
  (anything overtaking it must first overtake the hull/dominated record).
  The survivors form ``R⁻``.
* each ``p_i ∈ R⁻`` yields a region ``GIR_i`` by running Phase 2 with
  ``p_i`` in the role of ``p_k``; then ``GIR* = ∩ GIR_i``.
* SP/CP compute the skyline (and hull) of the non-result records **once**
  and reuse it for every ``GIR_i``; FP maintains all the facet fans
  **concurrently** during a single drain of the retained BRS heap, pruning
  a node only when it is below every facet of every fan.

Like :func:`repro.core.gir.compute_gir`, the computation is staged over the
shared :class:`~repro.core.pipeline.ExecutionContext`: the standard
``retrieve`` stage, then the star-specific ``prune`` and ``phase2``
stages below, then assembly. GIR* has no Phase 1 — the ordering conditions
are deliberately dropped — so ``cpu_ms_phase1`` stays zero.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.gir import GIRStats
from repro.core.phase2_cp import hull_of_skyline
from repro.core.phase2_fp import build_fan, refine_fans
from repro.core.phase2_sp import skyline_candidates
from repro.core.pipeline import (
    ExecutionContext,
    assemble_polytope,
    stage_retrieve,
)
from repro.data.dataset import Dataset
from repro.geometry.convexhull import hull_vertex_ids
from repro.geometry.halfspace import Halfspace, separation_halfspace
from repro.geometry.polytope import Polytope
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun
from repro.query.topk import TopKResult
from repro.scoring import ScoringFunction
from repro.core.tolerances import MEMBERSHIP_TOL

__all__ = ["GIRStarResult", "compute_gir_star", "prune_result_records"]


@dataclass
class GIRStarResult:
    """The order-insensitive immutable region of a top-k query."""

    weights: np.ndarray
    topk: TopKResult
    halfspaces: list[Halfspace]
    polytope: Polytope
    method: str
    stats: GIRStats
    #: The pruned result set R⁻ actually used to bound the region.
    active_result_ids: tuple[int, ...] = ()

    def contains(self, q: np.ndarray, tol: float = MEMBERSHIP_TOL) -> bool:
        """Does ``q`` preserve the *composition* of the top-k result?"""
        return self.polytope.contains(q, tol=tol)

    def volume(self) -> float:
        return self.polytope.volume()


def prune_result_records(
    result_ids: tuple[int, ...], points: np.ndarray, points_g: np.ndarray
) -> list[int]:
    """The paper's ``R⁻``: result records that can actually bound GIR*.

    Discards records strictly inside the hull of ``R`` (in g-space, where
    scoring is linear) and records dominating at least one other result
    record (in data space, where dominance is defined).
    """
    ids = list(result_ids)
    if len(ids) == 1:
        return ids
    pts_g = points_g[np.asarray(ids, dtype=np.intp)]
    on_hull = hull_vertex_ids(pts_g)
    survivors = []
    for local, rid in enumerate(ids):
        if local not in on_hull:
            continue
        p = points[rid]
        dominates_other = False
        for other in ids:
            if other == rid:
                continue
            o = points[other]
            if (p >= o).all() and (p > o).any():
                dominates_other = True
                break
        if not dominates_other:
            survivors.append(rid)
    # R⁻ can never be empty: the record with the minimum score bound must
    # remain reachable. Degenerate pruning (all records dominate someone in
    # a chain) falls back to the hull records.
    if not survivors:
        survivors = [ids[local] for local in sorted(on_hull)]
    return survivors


def stage_star_prune(ctx: ExecutionContext, run: BRSRun) -> list[int]:
    """Result pruning: the R⁻ of records that can bound GIR*."""
    active = prune_result_records(run.result.ids, ctx.points, ctx.points_g)
    ctx.stats.extras["active_result_records"] = float(len(active))
    return active


def stage_star_phase2(
    ctx: ExecutionContext, run: BRSRun, active: list[int]
) -> list[Halfspace]:
    """Separation half-spaces of ``∩ GIR_i`` over every ``p_i ∈ R⁻``."""
    halfspaces: list[Halfspace] = []
    extras = ctx.stats.extras
    if ctx.method in ("sp", "cp"):
        skyline = skyline_candidates(
            ctx.tree, ctx.points, run, ctx.scorer, metered=ctx.metered
        )
        if ctx.method == "cp":
            candidates = hull_of_skyline(ctx.points_g, skyline)
            extras["hull_size"] = float(len(candidates))
        else:
            candidates = skyline
        extras["skyline_size"] = float(len(skyline))
        for pi in active:
            pi_g = ctx.points_g[pi]
            halfspaces.extend(
                separation_halfspace(pi_g, ctx.points_g[rid], pi, rid)
                for rid in candidates
            )
        ctx.stats.phase2_candidates = len(candidates)
    else:
        lower_corner_g = ctx.scorer.transform_one(np.zeros(ctx.d))
        fans = {
            pi: build_fan(
                pi, ctx.points, ctx.points_g, run.encountered, ctx.weights,
                lower_corner_g,
            )
            for pi in active
        }
        fetched = refine_fans(
            ctx.tree, ctx.points, ctx.points_g, run, fans, ctx.scorer,
            metered=ctx.metered,
        )
        extras["nodes_fetched_phase2"] = float(fetched)
        criticals_union: set[int] = set()
        for pi, fan in fans.items():
            pi_g = ctx.points_g[pi]
            crits = sorted(
                key for key in fan.critical_keys() if not isinstance(key, tuple)
            )
            criticals_union.update(crits)
            halfspaces.extend(
                separation_halfspace(pi_g, ctx.points_g[rid], pi, rid)
                for rid in crits
            )
        extras["fan_facets"] = float(sum(f.facet_count() for f in fans.values()))
        ctx.stats.phase2_candidates = len(criticals_union)
    return halfspaces


def compute_gir_star(
    tree: RStarTree,
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    method: str = "fp",
    scorer: ScoringFunction | None = None,
    metered: bool = True,
    run: BRSRun | None = None,
) -> GIRStarResult:
    """Compute the order-insensitive GIR* (Definition 2)."""
    ctx = ExecutionContext.create(
        tree, data, weights, k, method=method, scorer=scorer, metered=metered
    )
    run = stage_retrieve(ctx, run)

    io_before = tree.store.stats.page_reads
    t0 = time.perf_counter()
    active = stage_star_prune(ctx, run)
    halfspaces = stage_star_phase2(ctx, run, active)
    ctx.stats.cpu_ms_phase2 = (time.perf_counter() - t0) * 1e3
    ctx.stats.io_pages_phase2 = tree.store.stats.page_reads - io_before
    ctx.stats.io_ms_per_page = tree.store.stats.latency_ms_per_page

    return GIRStarResult(
        weights=ctx.weights,
        topk=run.result,
        halfspaces=halfspaces,
        polytope=assemble_polytope(ctx.d, halfspaces),
        method=ctx.method,
        stats=ctx.stats,
        active_result_ids=tuple(active),
    )
