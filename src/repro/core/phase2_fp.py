"""FP — Facet Pruning (Section 6), the paper's main contribution.

FP pins the sweeping hyperplane at the k-th result record ``p_k`` and asks
which non-result records bound its permissible rotations. Those are exactly
the records incident to the facets of ``CH' = hull({p_k} ∪ D\\R)`` that are
themselves incident to ``p_k`` — the *critical records*. FP never builds
``CH'``; it maintains only the incident-facet star (:class:`FacetFan`) in
two steps:

1. **memory step** — bootstrap the fan from the records ``T`` that BRS
   already fetched (minus those dominated by ``p_k``), seeding the initial
   simplex with the per-dimension maxima heuristic (Section 6.3.1) — or,
   in two dimensions, directly with the two extreme-angle records of the
   paper's angular sweep (Section 6.2). The axis projections of ``p_k``
   are appended as *virtual* seed points (footnote 6); their half-spaces
   are redundant inside the query space, so they never change the GIR.
2. **disk step** — drain the retained BRS search heap; an index node is
   pruned iff its MBB lies below every fan facet (the MBB then sits in the
   hull's tangent cone at ``p_k``, whose points induce only implied
   half-spaces), otherwise it is fetched and its children pushed / records
   tested against the fan.

Everything runs in g-space, so FP also covers the per-dimension monotone
functions of Section 7.2 (an extension beyond the paper, which only claims
SP for them; see DESIGN.md).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.phase1 import phase1_halfspaces
from repro.core.phase2 import Phase2Output
from repro.geometry.halfspace import separation_halfspace
from repro.geometry.incident_facets import FacetFan
from repro.geometry.polytope import Polytope
from repro.index.mbb import MBB
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun, make_heap_entry
from repro.scoring import ScoringFunction
from repro.core.tolerances import EXACT_TOL, NORM_FLOOR

__all__ = ["FPOptions", "phase2_fp", "build_fan", "refine_fans", "virtual_seeds"]


@dataclass(frozen=True)
class FPOptions:
    """Tuning knobs of FP (all correctness-preserving; used for ablations).

    Attributes
    ----------
    use_virtual_seeds:
        Seed the fan with the apex's axis projections (footnote 6). Off,
        the initial simplex is built from records only; results are
        identical, pruning near the query-space walls is weaker.
    prune_dominated_nodes:
        Skip heap nodes whose whole MBB is dominated by the apex (the
        node-level form of the paper's record dominance filter).
    tighten_with_phase1:
        Footnote 7: intersect the fetch criterion with the Phase-1 interim
        region — a node is fetched only if, for some vertex ``v`` of the
        interim GIR, a point of the node could outscore the apex under
        ``v``. Off by default (the paper describes it as an optional
        optimisation).
    """

    use_virtual_seeds: bool = True
    prune_dominated_nodes: bool = True
    tighten_with_phase1: bool = False


DEFAULT_FP_OPTIONS = FPOptions()


def phase1_vertex_directions(
    run: BRSRun, points_g: np.ndarray, d: int
) -> np.ndarray | None:
    """Vertices of the Phase-1 interim region, used by the footnote-7
    tightening. ``None`` disables tightening (degenerate interim region).

    A record (or MBB) can shrink the *final* GIR only if it outscores the
    apex somewhere in the interim region; since scores are linear in the
    weights, it suffices to check the region's vertices.
    """
    order = phase1_halfspaces(run.result, points_g)
    poly = Polytope.from_unit_box(d).with_constraints(
        np.asarray([h.normal for h in order]) if order else np.empty((0, d))
    )
    verts = poly.vertices()
    if verts.shape[0] == 0:
        return None
    return verts


def virtual_seeds(
    apex_g: np.ndarray, lower_corner_g: np.ndarray
) -> list[tuple[tuple[str, int], np.ndarray]]:
    """The axis projections of the apex (footnote 6), in g-space.

    Seed ``i`` keeps the apex's i-th g-coordinate and drops every other
    coordinate to the g-space lower corner, so the apex dominates it and
    its separation half-space is redundant inside the query space.
    """
    d = apex_g.shape[0]
    seeds = []
    for i in range(d):
        s = lower_corner_g.copy()
        s[i] = apex_g[i]
        seeds.append((("virtual", i), s))
    return seeds


def _order_candidates(
    cands: list[tuple[int, np.ndarray]], apex_g: np.ndarray, weights: np.ndarray
) -> list[tuple[int, np.ndarray]]:
    """Processing order for the memory step.

    d = 2: the paper's angular sweep — the minimum- and maximum-angle
    records around the apex come first (they *are* the interim facets, and
    every other record is then below both).

    d > 2: the per-dimension maxima heuristic — the d records with maximum
    value along each g-dimension come first, so early facets prune many of
    the remaining records immediately.
    """
    if len(cands) <= 2:
        return cands
    d = apex_g.shape[0]
    if d == 2:
        # Angle of (p - apex) within the half-plane strictly below the
        # sweeping line: basis (t, -q) with t ⟂ q.
        q = weights / max(np.linalg.norm(weights), NORM_FLOOR)
        t = np.array([-q[1], q[0]])
        first: list[int] = []
        angles = []
        for idx, (_, p) in enumerate(cands):
            v = p - apex_g
            angles.append(np.arctan2(max(float(v @ -q), 0.0), float(v @ t)))
        first = [int(np.argmin(angles)), int(np.argmax(angles))]
    else:
        pts = np.asarray([p for _, p in cands])
        first = list(dict.fromkeys(int(np.argmax(pts[:, j])) for j in range(d)))
    chosen = set(first)
    ordered = [cands[i] for i in first]
    ordered.extend(c for i, c in enumerate(cands) if i not in chosen)
    return ordered


def build_fan(
    apex_id: int,
    points: np.ndarray,
    points_g: np.ndarray,
    encountered: dict[int, np.ndarray],
    weights: np.ndarray,
    lower_corner_g: np.ndarray,
    use_virtual_seeds: bool = True,
) -> FacetFan:
    """Step 1 of FP: the fan over the in-memory records ``T``.

    Records dominated by the apex are discarded up front (they can never
    overtake it), matching Sections 6.2/6.3.1.
    """
    apex = points[apex_id]
    apex_g = points_g[apex_id]
    cand_ids = [rid for rid in encountered.keys() if rid != apex_id]
    # Dominance filter: drop records the apex dominates.
    kept: list[tuple[int, np.ndarray]] = []
    for rid in cand_ids:
        p = points[rid]
        if (apex >= p).all() and (apex > p).any():
            continue
        kept.append((rid, points_g[rid]))
    ordered = _order_candidates(kept, apex_g, weights)
    fan = FacetFan(apex_g)
    candidates = list(ordered)
    if use_virtual_seeds:
        candidates += virtual_seeds(apex_g, lower_corner_g)
    fan.bootstrap(candidates)
    return fan


def refine_fans(
    tree: RStarTree,
    points: np.ndarray,
    points_g: np.ndarray,
    run: BRSRun,
    fans: dict[int, FacetFan],
    scorer: ScoringFunction,
    metered: bool = True,
    options: FPOptions = DEFAULT_FP_OPTIONS,
) -> int:
    """Step 2 of FP: drain the retained BRS heap, refining every fan.

    A node is pruned only when its (g-space) MBB is below every facet of
    *every* fan — for the single-fan GIR this is the paper's Section 6.2/
    6.3.2 rule, and for GIR* the multi-fan rule of Section 7.1. Returns the
    number of nodes fetched from disk.
    """
    read = tree.fetch if metered else tree._node
    heap = list(run.heap)
    heapq.heapify(heap)
    exclude = set(run.result.ids)
    apexes = {apex_id: points[apex_id] for apex_id in fans}
    directions: np.ndarray | None = None
    apex_dir_scores: dict[int, np.ndarray] = {}
    if options.tighten_with_phase1:
        directions = phase1_vertex_directions(run, points_g, tree.d)
        if directions is not None:
            apex_dir_scores = {
                apex_id: directions @ points_g[apex_id] for apex_id in fans
            }
    fetched = 0
    while heap:
        entry = heapq.heappop(heap)
        top = entry.mbb.upper_corner()
        if options.prune_dominated_nodes and all(
            # A node whose entire box is dominated by every apex can only
            # yield half-spaces implied inside the query space (node-level
            # form of the Section 6.3.1 record dominance filter).
            (apex >= top).all() and (apex > top).any()
            for apex in apexes.values()
        ):
            continue
        mbb_g = MBB(
            scorer.transform_one(entry.mbb.lo), scorer.transform_one(entry.mbb.hi)
        )
        if directions is not None:
            # Footnote 7: fetch only if some point of the node could
            # outscore an apex somewhere in the Phase-1 interim region
            # (checked at the region's vertices; scores are linear there).
            node_best = directions @ mbb_g.hi
            if all(
                (node_best <= apex_dir_scores[apex_id] + EXACT_TOL).all()
                for apex_id in fans
            ):
                continue
        if not any(fan.mbb_sees(mbb_g) for fan in fans.values()):
            continue
        node = read(entry.node_id)
        fetched += 1
        if node.is_leaf:
            rids = [e.child_id for e in node.entries if e.child_id not in exclude]
            if rids:
                pts = points[np.asarray(rids, dtype=np.intp)]
                pts_g = points_g[np.asarray(rids, dtype=np.intp)]
                for apex_id, fan in fans.items():
                    apex = apexes[apex_id]
                    # Dominated records only yield implied half-spaces.
                    keep = ~kernels.dominated_mask(apex, pts)
                    idx = np.flatnonzero(keep)
                    fan.add_points(
                        [rids[i] for i in idx], [pts_g[i] for i in idx]
                    )
        else:
            for e in node.entries:
                heapq.heappush(
                    heap,
                    make_heap_entry(
                        e.mbb, e.child_id, node.level - 1, run.result.weights, scorer
                    ),
                )
    return fetched


def phase2_fp(
    tree: RStarTree,
    points: np.ndarray,
    points_g: np.ndarray,
    run: BRSRun,
    scorer: ScoringFunction,
    metered: bool = True,
    options: FPOptions = DEFAULT_FP_OPTIONS,
) -> Phase2Output:
    """Full FP Phase 2: memory step, disk step, half-space extraction."""
    pk = run.result.kth_id
    lower_corner_g = scorer.transform_one(np.zeros(tree.d))
    fan = build_fan(
        pk,
        points,
        points_g,
        run.encountered,
        run.result.weights,
        lower_corner_g,
        use_virtual_seeds=options.use_virtual_seeds,
    )
    fetched = refine_fans(
        tree, points, points_g, run, {pk: fan}, scorer, metered=metered,
        options=options,
    )
    pk_g = points_g[pk]
    criticals = sorted(
        key for key in fan.critical_keys() if not isinstance(key, tuple)
    )
    halfspaces = [
        separation_halfspace(pk_g, points_g[rid], pk, rid) for rid in criticals
    ]
    return Phase2Output(
        halfspaces=halfspaces,
        candidate_ids=list(criticals),
        extras={
            "fan_facets": float(fan.facet_count()),
            "critical_records": float(len(criticals)),
            "nodes_fetched_phase2": float(fetched),
            "fan_degenerate": float(fan.degenerate),
        },
    )
