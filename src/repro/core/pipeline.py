"""The staged GIR pipeline: ``retrieve → phase1 → phase2 → assemble``.

:func:`repro.core.gir.compute_gir` used to be a monolith; this module
breaks it into explicitly staged steps that share an
:class:`ExecutionContext` (dataset, tree, scorer, g-space points and the
accumulating :class:`GIRStats` meters). Each stage is reusable and
individually timeable, which is what lets the serving layer
(:mod:`repro.engine`) drive the compute path — e.g. resume Phase 2 from a
BRS run the application already has, or complete a partially-served cached
result — and what lets the bench harness attribute cost per stage.

Stage contract (all stages mutate only ``ctx.stats``):

* :func:`stage_retrieve`   — BRS top-k; charges ``cpu_ms_topk`` /
  ``io_pages_topk``. Accepts an existing :class:`~repro.query.brs.BRSRun`
  to resume from instead of searching again.
* :func:`stage_phase1`     — ordering half-spaces (Section 4); charges
  ``cpu_ms_phase1``.
* :func:`stage_phase2`     — separation half-spaces via SP/CP/FP
  (Sections 5-6); charges ``cpu_ms_phase2`` / ``io_pages_phase2``.
* :func:`stage_assemble`   — intersects everything with the unit box into
  the result polytope.

:func:`run_pipeline` chains the four; ``compute_gir`` is now a thin
wrapper over it with an unchanged signature.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.phase1 import phase1_halfspaces
from repro.core.phase2 import Phase2Output
from repro.core.phase2_cp import phase2_cp
from repro.core.phase2_fp import FPOptions, phase2_fp
from repro.core.phase2_sp import phase2_sp
from repro.data.dataset import Dataset
from repro.geometry.halfspace import Halfspace
from repro.geometry.polytope import Polytope
from repro.index.rtree import RStarTree
from repro.query.brs import BRSRun, brs_topk
from repro.query.topk import TopKResult
from repro.scoring import LinearScoring, ScoringFunction
from repro.core.tolerances import MEMBERSHIP_TOL

__all__ = [
    "PHASE2_METHODS",
    "GIRStats",
    "GIRResult",
    "ExecutionContext",
    "stage_retrieve",
    "stage_phase1",
    "stage_phase2",
    "stage_assemble",
    "run_pipeline",
]

PHASE2_METHODS = {"sp": phase2_sp, "cp": phase2_cp, "fp": phase2_fp}


@dataclass
class GIRStats:
    """Cost breakdown of one GIR computation."""

    cpu_ms_topk: float = 0.0
    cpu_ms_phase1: float = 0.0
    cpu_ms_phase2: float = 0.0
    io_pages_topk: int = 0
    io_pages_phase2: int = 0
    io_ms_per_page: float = 0.0
    phase2_candidates: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def cpu_ms_total(self) -> float:
        """CPU time of GIR computation proper (Phases 1+2, as the paper
        reports; top-k retrieval is a prerequisite common to all methods)."""
        return self.cpu_ms_phase1 + self.cpu_ms_phase2

    @property
    def io_pages_total(self) -> int:
        return self.io_pages_topk + self.io_pages_phase2

    @property
    def io_ms_phase2(self) -> float:
        """Simulated Phase-2 I/O time — the paper's I/O metric."""
        return self.io_pages_phase2 * self.io_ms_per_page


@dataclass
class GIRResult:
    """The global immutable region of a top-k query (Definition 1)."""

    weights: np.ndarray
    topk: TopKResult
    halfspaces: list[Halfspace]
    polytope: Polytope
    method: str
    stats: GIRStats
    #: Row index in ``polytope`` of the first half-space row (after the box).
    _hs_row_offset: int = 0

    # -- semantics ------------------------------------------------------------

    def contains(self, q: np.ndarray, tol: float = MEMBERSHIP_TOL) -> bool:
        """Does query vector ``q`` preserve the (ordered) top-k result?"""
        return self.polytope.contains(q, tol=tol)

    def contains_batch(self, Q: np.ndarray, tol: float = MEMBERSHIP_TOL) -> np.ndarray:
        """Vectorized :meth:`contains` over a ``(m, d)`` batch of query
        vectors; returns a boolean ``(m,)`` array."""
        return self.polytope.contains_batch(Q, tol=tol)

    def volume(self) -> float:
        return self.polytope.volume()

    def volume_ratio(self) -> float:
        """``vol(GIR) / vol(query space)`` — the robustness probability of a
        uniformly random query vector preserving the result (Section 1; the
        LIK measure of [30]). The query space is the unit box, so the ratio
        equals the volume."""
        return self.volume()

    def kth_score_margin(self, challenger_g: np.ndarray, kth_g: np.ndarray) -> float:
        """Region-wide k-th-score bound: the largest score gap
        ``S(challenger, q) − S(p_k, q)`` over all ``q`` in the region.

        Both points are given in g-space (for linear scoring, data space).
        Inside the GIR the ordered result — hence the identity of the k-th
        record — is fixed, so the gap is the linear objective
        ``(g(challenger) − g(p_k)) · q`` and its maximum over the polytope
        is one LP (:meth:`~repro.geometry.polytope.Polytope.maximize`).
        A non-positive margin certifies the challenger can *nowhere* in the
        region enter the cached top-k.
        """
        return self.polytope.maximize(
            np.asarray(challenger_g, dtype=np.float64)
            - np.asarray(kth_g, dtype=np.float64)
        )

    def admits_above_kth(
        self,
        challenger_g: np.ndarray,
        kth_g: np.ndarray,
        tol: float = MEMBERSHIP_TOL,
        tie_wins: bool = False,
    ) -> bool:
        """Can a record at ``challenger_g`` rank above the k-th result
        record somewhere in the region? (The insert-invalidation test.)

        ``tie_wins`` declares how exact score ties resolve: the serving
        stack ranks by ``(score, coord-sum, rid)`` descending, so a
        challenger that *ties* the k-th score still enters the top-k when
        its tie-break key is higher (e.g. an inserted duplicate of the
        k-th record — same point, fresh higher rid). With identical
        g-images the scores tie at *every* query vector, so the verdict is
        ``tie_wins`` outright. For distinct g-images, score ties at
        strictly positive query vectors require ``delta`` to have both
        signs — and then the strict-margin LP already flags the entry —
        so the margin test is decisive.

        Fast paths need no LP: with non-negative query weights a
        challenger dominated component-wise by ``p_k`` can never
        out-score it.
        """
        delta = np.asarray(challenger_g, dtype=np.float64) - np.asarray(
            kth_g, dtype=np.float64
        )
        if not delta.any():  # identical g-image: a tie everywhere
            return tie_wins
        if (delta <= 0).all():
            return False
        return self.kth_score_margin(challenger_g, kth_g) > tol

    def boundary_perturbations(self, tol: float = MEMBERSHIP_TOL):
        """Result changes at each bounding facet — see
        :func:`repro.core.perturbation.boundary_perturbations`."""
        from repro.core.perturbation import boundary_perturbations

        return boundary_perturbations(self, tol=tol)

    def lir_intervals(self) -> list[tuple[float, float]]:
        """Per-weight immutable intervals through the original query — the
        interactive projection of Section 7.3 (equals the LIRs of [24])."""
        return [
            self.polytope.axis_interval(axis, self.weights)
            for axis in range(self.polytope.d)
        ]

    @property
    def d(self) -> int:
        return int(self.weights.shape[0])

    def halfspace_rows(self) -> list[tuple[int, Halfspace]]:
        """(polytope row index, half-space) pairs for the GIR conditions."""
        return [
            (self._hs_row_offset + i, hs) for i, hs in enumerate(self.halfspaces)
        ]

    def summary(self) -> str:
        """Human-readable report of the region and its cost breakdown."""
        s = self.stats
        lines = [
            f"GIR of a top-{self.topk.k} query ({self.method.upper()}, d={self.d})",
            f"  result ids     : {list(self.topk.ids)}",
            f"  half-spaces    : {len(self.halfspaces)} "
            f"({sum(h.kind == 'order' for h in self.halfspaces)} order, "
            f"{sum(h.kind == 'separation' for h in self.halfspaces)} separation)",
            f"  volume ratio   : {self.volume_ratio():.3e}",
            f"  cpu            : topk {s.cpu_ms_topk:.1f} ms, "
            f"phase1+2 {s.cpu_ms_total:.1f} ms",
            f"  phase-2 I/O    : {s.io_pages_phase2} pages "
            f"(~{s.io_ms_phase2:.0f} ms at {s.io_ms_per_page:.0f} ms/page)",
            f"  candidates     : {s.phase2_candidates}",
        ]
        return "\n".join(lines)


@dataclass
class ExecutionContext:
    """Everything the pipeline stages share for one GIR computation.

    Built once per computation via :meth:`create` (which normalises the
    dataset, query vector and scorer and precomputes the g-space image of
    the points) and threaded through every stage. Stages communicate cost
    exclusively through :attr:`stats`, so a caller can time and charge each
    stage individually.
    """

    tree: RStarTree
    points: np.ndarray
    points_g: np.ndarray
    weights: np.ndarray
    k: int
    scorer: ScoringFunction
    method: str = "fp"
    metered: bool = True
    fp_options: FPOptions | None = None
    stats: GIRStats = field(default_factory=GIRStats)

    @classmethod
    def create(
        cls,
        tree: RStarTree,
        data: Dataset | np.ndarray,
        weights: np.ndarray,
        k: int,
        method: str = "fp",
        scorer: ScoringFunction | None = None,
        metered: bool = True,
        fp_options: FPOptions | None = None,
    ) -> "ExecutionContext":
        """Normalise raw arguments into a ready-to-run context."""
        if method not in PHASE2_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {sorted(PHASE2_METHODS)}"
            )
        points = data.points if isinstance(data, Dataset) else np.asarray(data, float)
        weights = np.asarray(weights, dtype=np.float64)
        scorer = scorer or LinearScoring(tree.d)
        return cls(
            tree=tree,
            points=points,
            points_g=scorer.transform(points),
            weights=weights,
            k=k,
            scorer=scorer,
            method=method,
            metered=metered,
            fp_options=fp_options,
        )

    @property
    def d(self) -> int:
        return self.tree.d


# -- stages -------------------------------------------------------------------


def stage_retrieve(ctx: ExecutionContext, run: BRSRun | None = None) -> BRSRun:
    """Top-k retrieval via BRS, or adoption of an existing run.

    When ``run`` is given (a result the application already retrieved, or a
    run shared across methods by the bench harness) it is reused untouched
    and the stage charges zero cost, exactly as the old monolith did.
    """
    io_before = ctx.tree.store.stats.page_reads
    t0 = time.perf_counter()
    if run is None:
        run = brs_topk(
            ctx.tree, ctx.points, ctx.weights, ctx.k,
            scorer=ctx.scorer, metered=ctx.metered,
        )
    ctx.stats.cpu_ms_topk = (time.perf_counter() - t0) * 1e3
    ctx.stats.io_pages_topk = ctx.tree.store.stats.page_reads - io_before
    return run


def stage_phase1(ctx: ExecutionContext, run: BRSRun) -> list[Halfspace]:
    """Ordering half-spaces from the result's internal score order."""
    t0 = time.perf_counter()
    halfspaces = phase1_halfspaces(run.result, ctx.points_g)
    ctx.stats.cpu_ms_phase1 = (time.perf_counter() - t0) * 1e3
    return halfspaces


def stage_phase2(ctx: ExecutionContext, run: BRSRun) -> Phase2Output:
    """Separation half-spaces via the context's SP/CP/FP method."""
    method_kwargs = {}
    if ctx.method == "fp" and ctx.fp_options is not None:
        method_kwargs["options"] = ctx.fp_options
    io_before = ctx.tree.store.stats.page_reads
    t0 = time.perf_counter()
    phase2: Phase2Output = PHASE2_METHODS[ctx.method](
        ctx.tree, ctx.points, ctx.points_g, run, ctx.scorer,
        metered=ctx.metered, **method_kwargs,
    )
    ctx.stats.cpu_ms_phase2 = (time.perf_counter() - t0) * 1e3
    ctx.stats.io_pages_phase2 = ctx.tree.store.stats.page_reads - io_before
    ctx.stats.phase2_candidates = len(phase2.candidate_ids)
    ctx.stats.extras = dict(phase2.extras)
    return phase2


def assemble_polytope(d: int, halfspaces: list[Halfspace]) -> Polytope:
    """Intersect the unit query box with a set of half-spaces."""
    box = Polytope.from_unit_box(d)
    return box.with_constraints(
        np.asarray([hs.normal for hs in halfspaces])
        if halfspaces
        else np.empty((0, d))
    )


def stage_assemble(
    ctx: ExecutionContext, run: BRSRun, halfspaces: list[Halfspace]
) -> GIRResult:
    """Build the final :class:`GIRResult` from the collected half-spaces."""
    ctx.stats.io_ms_per_page = ctx.tree.store.stats.latency_ms_per_page
    return GIRResult(
        weights=ctx.weights,
        topk=run.result,
        halfspaces=halfspaces,
        polytope=assemble_polytope(ctx.d, halfspaces),
        method=ctx.method,
        stats=ctx.stats,
        _hs_row_offset=2 * ctx.d,
    )


def run_pipeline(ctx: ExecutionContext, run: BRSRun | None = None) -> GIRResult:
    """Drive the full ``retrieve → phase1 → phase2 → assemble`` chain."""
    run = stage_retrieve(ctx, run)
    hs_order = stage_phase1(ctx, run)
    phase2 = stage_phase2(ctx, run)
    return stage_assemble(ctx, run, hs_order + phase2.halfspaces)
