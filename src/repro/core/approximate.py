"""Approximate sensitivity analysis for general scoring functions.

For scoring functions that are *not* of the per-dimension form
``Σ w_i g_i(p)``, the GIR's conditions no longer map to half-spaces: the
region is a general convex set whose exact representation "is
computationally expensive or not possible at all", for which the paper
points to Monte-Carlo approximation (Section 7.2). This module provides
that route:

* :class:`GeneralMonotoneScoring` — wraps an arbitrary black-box scoring
  callable ``f(points, weights)`` that is monotone in every attribute, so
  BRS/BBS still work (MBB top corners remain maxscore points) but no
  g-space exists;
* :func:`immutability_probability` — Monte-Carlo estimate of the paper's
  sensitivity measure, the probability that a uniformly random query
  vector reproduces the result (= the GIR volume ratio when the function
  happens to be linear);
* :func:`immutable_ball_radius` — Monte-Carlo estimate of the largest ball
  around the query preserving the result (the STB measure of [30] for
  arbitrary functions).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.query.linear_scan import scan_topk
from repro.scoring import ScoringFunction
from repro.core.tolerances import APPROX_TOLERANCE

__all__ = [
    "GeneralMonotoneScoring",
    "immutability_probability",
    "immutable_ball_radius",
]


class GeneralMonotoneScoring(ScoringFunction):
    """A black-box monotone scoring function ``f(points, weights)``.

    Monotone means non-decreasing in every attribute for every fixed
    weight vector, which keeps index-based top-k search correct. Because
    the function need not be linear in the weights, there is no g-space:
    :meth:`transform` raises, steering callers to the Monte-Carlo API.
    """

    def __init__(
        self,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        d: int,
        name: str = "general",
    ) -> None:
        super().__init__(d)
        self._fn = fn
        self.name = name

    def transform(self, points: np.ndarray) -> np.ndarray:
        raise TypeError(
            "general scoring functions have no per-dimension g-space; use "
            "repro.core.approximate for sensitivity analysis"
        )

    def score(self, points: np.ndarray, weights: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        out = np.asarray(self._fn(pts, np.asarray(weights, dtype=np.float64)))
        if out.shape != (pts.shape[0],):
            raise ValueError("scoring callable must return one score per point")
        return float(out[0]) if single else out


def immutability_probability(
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    scorer: ScoringFunction,
    samples: int = 2_000,
    rng: np.random.Generator | None = None,
    order_sensitive: bool = True,
) -> float:
    """Monte-Carlo sensitivity: ``P[random q' preserves the result]``.

    Draws ``samples`` query vectors uniformly from the query space and
    reports the fraction whose top-k equals the original (ordered, or as a
    set with ``order_sensitive=False``). For linear scoring this estimates
    exactly the GIR volume ratio of Figure 14.
    """
    points = data.points if isinstance(data, Dataset) else np.asarray(data, float)
    weights = np.asarray(weights, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    reference = scan_topk(points, weights, k, scorer=scorer)
    ref_ids = reference.ids
    ref_set = set(ref_ids)
    hits = 0
    for _ in range(samples):
        q = rng.random(weights.shape[0])
        got = scan_topk(points, q, k, scorer=scorer)
        if order_sensitive:
            hits += got.ids == ref_ids
        else:
            hits += set(got.ids) == ref_set
    return hits / samples


def immutable_ball_radius(
    data: Dataset | np.ndarray,
    weights: np.ndarray,
    k: int,
    scorer: ScoringFunction,
    directions: int = 64,
    tolerance: float = APPROX_TOLERANCE,
    rng: np.random.Generator | None = None,
) -> float:
    """Largest ball radius around ``weights`` preserving the result
    (approximately): per sampled direction, binary-search the distance at
    which the result first changes; return the minimum over directions.

    This generalises the STB measure of [30] to arbitrary scoring
    functions. It is an *upper* bound estimate — finer direction sampling
    can only shrink it.
    """
    points = data.points if isinstance(data, Dataset) else np.asarray(data, float)
    q = np.asarray(weights, dtype=np.float64)
    d = q.shape[0]
    rng = rng or np.random.default_rng(0)
    reference = scan_topk(points, q, k, scorer=scorer).ids

    def preserved_at(probe: np.ndarray) -> bool:
        if (probe < 0).any() or (probe > 1).any():
            return False
        return scan_topk(points, probe, k, scorer=scorer).ids == reference

    best = float(min(q.min(), (1.0 - q).min()))
    for _ in range(directions):
        v = rng.normal(size=d)
        v /= np.linalg.norm(v)
        lo, hi = 0.0, best
        if preserved_at(q + v * hi):
            continue  # this direction does not bind below the current best
        while hi - lo > tolerance:
            mid = (lo + hi) / 2
            if preserved_at(q + v * mid):
                lo = mid
            else:
                hi = mid
        best = min(best, lo)
        if best <= tolerance:
            break
    return max(best, 0.0)
