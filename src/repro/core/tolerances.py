"""The project's numeric tolerances, consolidated in one module.

Every floating-point comparison in this codebase that is *not* an
intentional bit-exact equality goes through a named constant defined
here. The ``numeric-safety`` rule of :mod:`repro.analysis` enforces
this statically: an inline literal like ``1e-9`` in a comparison or a
default argument anywhere else in ``src/`` is a finding, so a tolerance
cannot silently fork from the rest of the system (the grid prescreen's
zero-false-negative guarantee, for instance, is only sound because the
membership tolerance it must dominate is *this* :data:`MEMBERSHIP_TOL`,
not whatever a caller happened to type).

Grouping, loosest to tightest:

* :data:`APPROX_TOLERANCE` / :data:`MIN_GAIN_RADIUS` — coarse model
  parameters, not correctness tolerances;
* :data:`GRID_SAFE_TOL` / :data:`GRID_SLACK` — the admission grid's
  soundness boundary (slack must dominate ``tol * (1 + sqrt(d))``);
* :data:`CONTAINMENT_TOL` — LP-backed polytope containment slack
  (linprog answers are good to ~1e-9; one order looser stays safe);
* :data:`MEMBERSHIP_TOL` — the global half-space membership tolerance
  (norm-relative via ``Polytope.normalized_halfspaces``);
* :data:`PREDICATE_EPS` / :data:`DEGENERATE_RADIUS` — geometric
  predicate slack and the radius below which a region counts as empty;
* :data:`EXACT_TOL` / :data:`FACET_SIDE_TOL` / :data:`COEFFICIENT_EPS`
  — near-machine-epsilon guards for hull side tests, score sanity
  checks and treat-as-zero coefficient thresholds;
* :data:`NORM_FLOOR` — an underflow guard, not a tolerance: the
  smallest norm a direction vector is allowed to be scaled by.
"""

from __future__ import annotations

__all__ = [
    "MEMBERSHIP_TOL",
    "EXACT_TOL",
    "DEGENERATE_RADIUS",
    "CONTAINMENT_TOL",
    "COEFFICIENT_EPS",
    "FACET_SIDE_TOL",
    "PREDICATE_EPS",
    "GRID_SAFE_TOL",
    "GRID_SLACK",
    "SCREEN_SAFETY",
    "MIN_GAIN_RADIUS",
    "APPROX_TOLERANCE",
    "NORM_FLOOR",
    "LP_FTOL",
]

#: Global half-space membership tolerance: ``A_n @ x <= b_n + tol`` over
#: *unit-norm* rows. Shared by ``Polytope.contains``/``contains_batch``,
#: the stacked :class:`~repro.core.region_index.RegionIndex` kernels, GIR
#: containment, cache invalidation LPs and the unit-box bounds checks —
#: one value, so the vectorized and scalar membership paths agree
#: bit-for-bit in form.
MEMBERSHIP_TOL = 1e-9

#: Near-machine-epsilon slack for comparisons that should be exact up to
#: accumulated rounding: convex-hull side tests on normalized data, MBB
#: closed-box predicates, descending-score sanity checks, interval
#: consistency guards.
EXACT_TOL = 1e-12

#: Chebyshev radius below which a polytope is treated as degenerate /
#: empty (scipy's interior-point answers are reliable to ~1e-12; one
#: order of slack on top).
DEGENERATE_RADIUS = 1e-11

#: Slack for LP-backed polytope-in-polytope containment and feasibility
#: certificates (one order looser than :data:`MEMBERSHIP_TOL`: two LP
#: solves stack their errors).
CONTAINMENT_TOL = 1e-8

#: Coefficients with absolute value below this are treated as exactly
#: zero when reducing a half-space row to a 1-D interval bound.
COEFFICIENT_EPS = 1e-14

#: Side-of-hyperplane classification threshold of the incident-facet
#: fan (tighter than :data:`EXACT_TOL`: facet normals are unit-scaled
#: and the dot products are short).
FACET_SIDE_TOL = 1e-13

#: Shared slack of the exact geometric predicates
#: (:mod:`repro.geometry.predicates`).
PREDICATE_EPS = 1e-10

#: Largest membership tolerance the grid admission fast path is sound
#: for: cells are registered with :data:`GRID_SLACK` of relaxation,
#: which must dominate ``tol * (1 + sqrt(d))`` (the tolerance itself
#: plus the cushion of clipping a just-outside-the-box member into its
#: cell). Lookups with a larger ``tol`` skip the grid and run the exact
#: matvec.
GRID_SAFE_TOL = 1e-7

#: Per-row relaxation used when registering an entry's cells in the
#: grid signature. Soundness requires
#: ``GRID_SLACK >= GRID_SAFE_TOL * (1 + sqrt(d))`` for every supported
#: ``d`` (≤ 9 in the unit query box regime, so 1e-6 ≥ 4e-7 holds).
GRID_SLACK = 1e-6

#: Extra conservatism subtracted from the insert-prescreen's vertex
#: upper bound before an entry is declared undisturbable (vertex
#: enumeration is reliable to ~1e-12; this dominates it comfortably).
SCREEN_SAFETY = 1e-10

#: Floor on the Chebyshev-radius volume proxy of the cost-aware
#: eviction gain, so sliver/degenerate regions still carry a positive
#: gain and recency can order them. A model parameter, not a
#: correctness tolerance.
MIN_GAIN_RADIUS = 1e-3

#: Default termination tolerance of the approximate (sampling-based)
#: GIR variant. A model parameter, not a correctness tolerance.
APPROX_TOLERANCE = 1e-4

#: Underflow guard when normalizing direction vectors: the smallest
#: norm a vector may be divided by.
NORM_FLOOR = 1e-300

#: ``ftol`` handed to scipy's linprog/minimize when a tight solution is
#: needed (e.g. the visualization's interior-point refinement).
LP_FTOL = 1e-12
