"""Shared Phase-2 plumbing: the output contract of SP, CP and FP.

Phase 2 (Sections 5-6) shrinks the interim GIR so that no non-result record
can overtake the k-th result record ``p_k``. Each method returns the same
structure: the separation half-spaces it derived, the ids of the non-result
records it actually considered (the paper's pruning-effectiveness metric,
Figures 6 and 8), and method-specific diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.halfspace import Halfspace

__all__ = ["Phase2Output"]


@dataclass
class Phase2Output:
    """What a Phase-2 method hands back to the orchestrator."""

    halfspaces: list[Halfspace]
    candidate_ids: list[int]
    #: Method diagnostics, e.g. {"skyline_size": …} or {"fan_facets": …}.
    extras: dict[str, float] = field(default_factory=dict)
