"""Phase 1: the interim GIR from the result's internal score order.

Section 4: for result ``R = (p_1, …, p_k)`` the ``k − 1`` conditions
``S(p_i, q') ≥ S(p_{i+1}, q')`` each map to the half-space
``(g(p_i) − g(p_{i+1})) · q' ≥ 0`` in query space (``g`` is the identity for
linear scoring). Phase 1 is identical for all methods; the methods differ
only in Phase 2.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.halfspace import Halfspace, order_halfspace
from repro.query.topk import TopKResult

__all__ = ["phase1_halfspaces"]


def phase1_halfspaces(result: TopKResult, points_g: np.ndarray) -> list[Halfspace]:
    """Ordering half-spaces for the interim GIR.

    Parameters
    ----------
    result:
        The ordered top-k result.
    points_g:
        The dataset in g-space (``scorer.transform(points)``; the raw
        points for linear scoring).
    """
    out: list[Halfspace] = []
    ids = result.ids
    for i in range(len(ids) - 1):
        upper, lower = ids[i], ids[i + 1]
        out.append(order_halfspace(points_g[upper], points_g[lower], upper, lower))
    return out
