"""GIR visualisation aids (Section 7.3).

Being a d-dimensional polytope, the GIR cannot be shown directly for
``d > 2``. The paper proposes two devices, both implemented here:

* **MAH** — the maximum-volume axis-parallel hyper-rectangle that contains
  the query vector and lies inside the GIR (an instance of the bichromatic
  rectangle problem). Its per-axis sides give *fixed* slide-bar bounds
  (Figure 1(a)) valid as long as the query stays inside the MAH.
* **Interactive projection** — project the (possibly shifted) query onto
  the GIR along each axis, producing per-axis bounds that are maximal but
  must be recomputed as the user moves the query. These ranges equal the
  LIRs of [24].

The MAH is found by maximising ``Σ log(u_i − l_i)`` subject to linear
constraints: the max of ``a · x`` over a box is corner-separable
(``Σ_i max(a_i l_i, a_i u_i)``), so "every box corner satisfies ``a·x ≤ b``"
is a single linear constraint in ``(l, u)`` per GIR facet — a convex
program solved with SLSQP, with a pure-LP (max-perimeter) fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import LinearConstraint, linprog, minimize
from repro.core.tolerances import CONTAINMENT_TOL, EXACT_TOL, LP_FTOL, MEMBERSHIP_TOL

__all__ = ["AxisRectangle", "maximal_axis_rectangle", "interactive_projection"]

_GAP_FLOOR = EXACT_TOL


@dataclass(frozen=True)
class AxisRectangle:
    """Axis-parallel box ``[lo, hi]`` with convenience accessors."""

    lo: np.ndarray
    hi: np.ndarray

    def volume(self) -> float:
        return float(np.prod(np.maximum(self.hi - self.lo, 0.0)))

    def contains(self, x: np.ndarray, tol: float = MEMBERSHIP_TOL) -> bool:
        x = np.asarray(x, dtype=np.float64)
        return bool((x >= self.lo - tol).all() and (x <= self.hi + tol).all())

    def intervals(self) -> list[tuple[float, float]]:
        return [(float(l), float(h)) for l, h in zip(self.lo, self.hi)]


def _corner_constraint_matrix(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Linear map ``(l, u) → max over box corners of A x``.

    Row ``i`` of the returned pair ``(L, U)`` satisfies
    ``max_corner A_i·x = L_i·l + U_i·u`` with ``U = max(A, 0)``,
    ``L = min(A, 0)``.
    """
    return np.minimum(A, 0.0), np.maximum(A, 0.0)


def maximal_axis_rectangle(gir, shrink_start: float = 0.5) -> AxisRectangle:
    """The MAH: max-volume axis box inside the GIR containing the query.

    Parameters
    ----------
    gir:
        A :class:`~repro.core.gir.GIRResult` (or GIR*-result — anything
        with ``polytope`` and ``weights``).
    shrink_start:
        Fraction of the per-axis interactive-projection interval used as
        the optimiser's feasible starting box.
    """
    poly = gir.polytope
    q = np.asarray(gir.weights, dtype=np.float64)
    d = poly.d
    A, b = poly.A, poly.b
    L, U = _corner_constraint_matrix(A)

    # Feasible start: the interactive-projection box shrunk toward q.
    start_lo, start_hi = np.empty(d), np.empty(d)
    for axis in range(d):
        lo, hi = poly.axis_interval(axis, q)
        if not np.isfinite(lo) or not np.isfinite(hi):
            lo = hi = q[axis]
        start_lo[axis] = q[axis] - shrink_start * max(q[axis] - lo, 0.0)
        start_hi[axis] = q[axis] + shrink_start * max(hi - q[axis], 0.0)

    # Constraint matrix over the stacked variable z = (l, u).
    M = np.hstack([L, U])  # corner-max rows: M z <= b
    # l <= q, q <= u, l <= u encoded as linear rows.
    eye = np.eye(d)
    rows = [M]
    rhs = [b]
    rows.append(np.hstack([eye, np.zeros((d, d))]))  # l <= q
    rhs.append(q)
    rows.append(np.hstack([np.zeros((d, d)), -eye]))  # -u <= -q
    rhs.append(-q)
    rows.append(np.hstack([eye, -eye]))  # l - u <= 0
    rhs.append(np.zeros(d))
    A_ub = np.vstack(rows)
    b_ub = np.concatenate(rhs)

    def neg_log_volume(z: np.ndarray) -> float:
        gaps = np.maximum(z[d:] - z[:d], _GAP_FLOOR)
        return -float(np.sum(np.log(gaps)))

    def grad(z: np.ndarray) -> np.ndarray:
        gaps = np.maximum(z[d:] - z[:d], _GAP_FLOOR)
        g = np.empty(2 * d)
        g[:d] = 1.0 / gaps
        g[d:] = -1.0 / gaps
        return g

    def volume_of(z: np.ndarray) -> float:
        return float(np.prod(np.maximum(z[d:] - z[:d], 0.0)))

    # The per-axis intervals are individually feasible but their box need
    # not be (the corner-max constraints couple axes): shrink toward the
    # degenerate box {q} — always feasible for q inside the GIR — until the
    # start satisfies every constraint.
    z0 = np.concatenate([start_lo, start_hi])
    z_q = np.concatenate([q, q])
    t = 1.0
    # repro: allow[numeric-safety] -- display-only bisection floor (when to
    # give up shrinking the warm-start box), not a geometric tolerance
    while t > 1e-6 and not _box_feasible(z0, A_ub, b_ub):
        t *= 0.6
        z0 = z_q + t * (np.concatenate([start_lo, start_hi]) - z_q)
    if not _box_feasible(z0, A_ub, b_ub):
        z0 = z_q

    result = minimize(
        neg_log_volume,
        z0,
        jac=grad,
        constraints=[LinearConstraint(A_ub, -np.inf, b_ub)],
        method="SLSQP",
        options={"maxiter": 300, "ftol": LP_FTOL},
    )

    # Pick the best feasible candidate: the optimiser's answer, the shrunk
    # start, or the max-perimeter LP solution (corner-prone but feasible).
    candidates = [z0]
    if _box_feasible(result.x, A_ub, b_ub):
        candidates.append(result.x)
    c = np.concatenate([np.ones(d), -np.ones(d)])  # minimise Σ(l - u)
    lp = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=[(None, None)] * 2 * d, method="highs")
    if lp.success and _box_feasible(lp.x, A_ub, b_ub):
        candidates.append(lp.x)
    candidate = max(candidates, key=volume_of)
    lo, hi = candidate[:d], candidate[d:]
    return AxisRectangle(lo=np.minimum(lo, hi), hi=np.maximum(lo, hi))


def _box_feasible(z: np.ndarray, A_ub: np.ndarray, b_ub: np.ndarray) -> bool:
    return bool((A_ub @ z <= b_ub + CONTAINMENT_TOL).all())


def interactive_projection(gir, at: np.ndarray | None = None) -> list[tuple[float, float]]:
    """Per-axis permissible ranges of the (possibly shifted) query vector.

    Projects ``at`` (default: the original query) onto the GIR along each
    axis (Figure 13(b)). The returned intervals are maximal — they span the
    full extent of the GIR on each axis line — and match the LIRs of [24]
    when evaluated at the original query vector.
    """
    base = np.asarray(at if at is not None else gir.weights, dtype=np.float64)
    return [gir.polytope.axis_interval(axis, base) for axis in range(gir.polytope.d)]
