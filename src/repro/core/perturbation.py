"""Boundary perturbations: what the result becomes at each GIR facet.

Section 3.2: every bounding hyperplane of the GIR corresponds to one of the
original conditions, which implicitly determines the new top-k result if the
query shifts onto that boundary — either a *reorder* of two adjacent result
records (Phase-1 condition) or the *replacement* of the k-th record by a
specific non-result record (Phase-2 condition). Our algorithms identify the
records responsible for each bounding half-space along the way; this module
classifies which half-spaces actually bound the final region and spells out
the induced result change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.halfspace import Halfspace
from repro.core.tolerances import MEMBERSHIP_TOL

__all__ = ["Perturbation", "boundary_perturbations"]


@dataclass(frozen=True)
class Perturbation:
    """One facet of the GIR and the result change it encodes."""

    halfspace: Halfspace
    #: The top-k id sequence after crossing this facet.
    new_order: tuple[int, ...]
    description: str


def boundary_perturbations(gir, tol: float = MEMBERSHIP_TOL) -> list[Perturbation]:
    """Classify the GIR's bounding half-spaces and their result changes.

    Only non-redundant (facet-supporting) half-spaces are reported; the box
    constraints of the query space are skipped since touching them does not
    alter the result.
    """
    mask = gir.polytope.facet_mask(tol=tol)
    ids = list(gir.topk.ids)
    out: list[Perturbation] = []
    for row, hs in gir.halfspace_rows():
        if not mask[row] or hs.kind == "virtual":
            continue
        new_order = list(ids)
        if hs.kind == "order":
            i = new_order.index(hs.upper)
            assert new_order[i + 1] == hs.lower, "phase-1 pair out of order"
            new_order[i], new_order[i + 1] = new_order[i + 1], new_order[i]
        else:  # separation: hs.lower replaces p_k
            assert new_order[-1] == hs.upper, "separation facet not on p_k"
            new_order[-1] = hs.lower
        out.append(
            Perturbation(
                halfspace=hs,
                new_order=tuple(new_order),
                description=hs.describe(),
            )
        )
    return out
