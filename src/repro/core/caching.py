"""GIR-based top-k result caching (Section 1 application).

Previous top-k results are stored along with their GIRs. A new request
whose query vector falls inside a cached GIR can be answered without
touching the database:

* same or smaller ``k`` — inside the (order-sensitive) GIR the whole
  ordered list is immutable, so the first ``k'`` cached records are the
  exact answer;
* larger ``k`` — the cached records are still the correct highest-scoring
  prefix, which the cache returns immediately flagged *partial* (the paper
  cites progressive reporting [31] for this case), leaving the caller to
  compute the remaining records.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.gir import GIRResult

__all__ = ["CacheHit", "GIRCache"]


@dataclass(frozen=True)
class CacheHit:
    """Outcome of a successful cache lookup."""

    ids: tuple[int, ...]
    #: True when the request asked for more records than were cached; the
    #: ids are then the correct leading prefix of the answer.
    partial: bool
    #: Key of the cached entry that served the hit.
    entry_key: int


class GIRCache:
    """An LRU cache of (query, top-k result, GIR) triples."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, GIRResult] = OrderedDict()
        self._next_key = 0
        self.hits = 0
        self.partial_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, gir: GIRResult) -> int:
        """Cache a computed GIR; returns its entry key."""
        key = self._next_key
        self._next_key += 1
        self._entries[key] = gir
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return key

    def lookup(self, weights: np.ndarray, k: int) -> CacheHit | None:
        """Serve a query from cache if its vector lies in some cached GIR.

        Scans entries most-recently-used first; a hit refreshes the entry's
        recency. Returns ``None`` on a miss.
        """
        weights = np.asarray(weights, dtype=np.float64)
        for key in reversed(list(self._entries.keys())):
            gir = self._entries[key]
            if gir.weights.shape != weights.shape:
                continue
            if not gir.contains(weights):
                continue
            cached_ids = gir.topk.ids
            self._entries.move_to_end(key)
            if k <= len(cached_ids):
                self.hits += 1
                return CacheHit(ids=cached_ids[:k], partial=False, entry_key=key)
            self.hits += 1
            self.partial_hits += 1
            return CacheHit(ids=cached_ids, partial=True, entry_key=key)
        self.misses += 1
        return None

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "partial_hits": self.partial_hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }
