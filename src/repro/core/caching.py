"""GIR-based top-k result caching (Section 1 application).

Previous top-k results are stored along with their GIRs. A new request
whose query vector falls inside a cached GIR can be answered without
touching the database:

* same or smaller ``k`` — inside the (order-sensitive) GIR the whole
  ordered list is immutable, so the first ``k'`` cached records are the
  exact answer;
* larger ``k`` — the cached records are still the correct highest-scoring
  prefix, which the cache returns immediately flagged *partial* (the paper
  cites progressive reporting [31] for this case), leaving the caller to
  compute the remaining records. :class:`repro.engine.GIREngine` does
  exactly that: it resumes the compute pipeline and serves a complete
  answer instead of handing the prefix back to the user.

Hit accounting is non-overlapping: every lookup is exactly one of
``full_hits``, ``partial_hits`` or ``misses``.

Vectorized membership
---------------------

The cache keeps every entry's half-space rows stacked in a
:class:`~repro.core.region_index.RegionIndex` (one per query-space
dimensionality), so :meth:`GIRCache.lookup` answers "which cached regions
contain this vector?" with one matvec over *all* entries instead of a
Python loop of per-entry tests, and :meth:`GIRCache.lookup_batch` resolves
a whole request batch from a single matmul. :meth:`GIRCache.lookup_scan`
preserves the entry-by-entry reference path — same answers, same
accounting — for equivalence tests and the cache-scan microbenchmark.

Dynamic datasets
----------------

When the database changes under the cache, the GIR is precisely the tool
that decides *which* cached entries an update can disturb:

* an **insert** invalidates entry E only if the new record's score can
  exceed E's k-th score somewhere inside E's region — the
  halfspace-intersection test :func:`invalidated_by_insert` (one LP via
  :meth:`~repro.core.gir.GIRResult.admits_above_kth`). Before any LP
  runs, :meth:`GIRCache.prescreen_insert` screens the whole cache in one
  vectorized pass (vertex-set upper bounds, see
  :meth:`~repro.core.region_index.RegionIndex.prescreen_insert`), so the
  LP is spent only on entries the screen cannot clear;
* a **delete** invalidates E only if the deleted rid appears in E's
  result, or in the T-set of E's retained BRS run (whose resumed state
  would otherwise replay the dead record) —
  :func:`invalidated_by_delete`. Deleting any other record leaves the
  cached ordered top-k valid everywhere in the region.

The eviction mechanics live on :meth:`GIRCache.evict` /
:meth:`GIRCache.flush`; the *policy* (selective GIR test vs flush-on-write
baseline) is chosen by :class:`repro.engine.GIREngine`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import sanitize
from repro.core.gir import GIRResult
from repro.core.region_index import (
    RegionIndex,
    SCREEN_SAFE,
    SCREEN_TIE,
)
from repro.core.tolerances import MEMBERSHIP_TOL, MIN_GAIN_RADIUS

__all__ = [
    "CacheHit",
    "InsertPrescreen",
    "GIRCache",
    "invalidated_by_insert",
    "invalidated_by_delete",
    "apply_insert_invalidation",
    "apply_delete_invalidation",
]


def invalidated_by_insert(
    gir: GIRResult,
    point_g: np.ndarray,
    kth_g: np.ndarray,
    tol: float = MEMBERSHIP_TOL,
    tie_wins: bool = False,
) -> bool:
    """Does inserting a record with g-image ``point_g`` disturb ``gir``?

    True iff the new record can rank above the entry's k-th result record
    somewhere in the region (it would then enter the cached top-k for the
    queries that land there). ``kth_g`` is the g-image of the entry's k-th
    result record; ``tie_wins`` says whether the new record beats it on
    the ``(coord-sum, rid)`` tie-break when their scores tie exactly (an
    inserted duplicate always does — its rid is fresher).
    """
    return gir.admits_above_kth(point_g, kth_g, tol=tol, tie_wins=tie_wins)


def invalidated_by_delete(
    gir: GIRResult, rid: int, tset_ids: Iterable[int] | None = None
) -> bool:
    """Does deleting record ``rid`` disturb ``gir``?

    True iff ``rid`` is one of the entry's result records (the cached
    answer itself loses a member), or appears in the T-set of the entry's
    retained BRS run (``tset_ids``; resuming that run would replay the
    dead record). Deleting a record outside both sets cannot change the
    cached ordered top-k anywhere in the region: removing a non-member
    never alters a top-k answer, so the region merely becomes a valid
    under-approximation of the new (larger) GIR.
    """
    if rid in gir.topk.ids:
        return True
    return tset_ids is not None and rid in tset_ids


def apply_insert_invalidation(
    cache: "GIRCache",
    point_g: np.ndarray,
    new_sum: float,
    new_rid: int,
    kth_point,
    kth_g,
) -> tuple[int, int, int]:
    """Run the selective insert-invalidation policy over a whole cache.

    The one sequence both serving tiers share: vectorized prescreen →
    tie-break resolution of exact-tie entries → invalidation LP on the
    survivors → eviction. Returns ``(evicted, prescreen_screened,
    lps_run)``.

    Parameters
    ----------
    point_g:
        g-space image of the inserted record.
    new_sum / new_rid:
        The inserted record's ``(coord-sum, rid)`` tie-break key, in the
        rid space the cache's entries are keyed in (local rids for a
        shard's cache, global rids for the cluster-level cache). The sum
        must come from the *stored* row (unit-cube clipped), so shard and
        cluster tiers resolve exact ties identically.
    kth_point / kth_g:
        Accessors ``rid -> data-space row`` / ``rid -> g-image`` for an
        entry's k-th result record — how rows are fetched is the only
        thing that differs between the tiers.
    """
    prescreen = cache.prescreen_insert(point_g)

    def tie_wins(gir: GIRResult) -> bool:
        # Exact score ties resolve by (coord-sum, rid) descending; the
        # freshly inserted rid is always the highest.
        kth = gir.topk.kth_id
        return (new_sum, new_rid) > (float(kth_point(kth).sum()), kth)

    stale = [key for key in prescreen.ties if tie_wins(cache.entry(key))]
    lps = 0
    for key in prescreen.candidates:
        gir = cache.entry(key)
        lps += 1
        if invalidated_by_insert(
            gir, point_g, kth_g(gir.topk.kth_id), tie_wins=tie_wins(gir)
        ):
            stale.append(key)
    return cache.evict(stale), prescreen.screened, lps


def apply_delete_invalidation(
    cache: "GIRCache", rid: int, tset_of=None
) -> int:
    """Run the selective delete-invalidation policy over a whole cache.

    Evicts every entry :func:`invalidated_by_delete` flags — the rid is
    in the entry's cached result, or in the T-set of its retained search
    run — and returns the eviction count. ``tset_of`` is an optional
    ``entry key -> iterable of rids`` accessor for retained-run T-sets;
    leave it ``None`` for tiers that retain no runs (the cluster-level
    cache of merged answers).
    """
    stale = [
        key
        for key, gir in cache.items()
        if invalidated_by_delete(
            gir, rid, tset_ids=tset_of(key) if tset_of is not None else None
        )
    ]
    return cache.evict(stale)


@dataclass(frozen=True)
class CacheHit:
    """Outcome of a successful cache lookup."""

    ids: tuple[int, ...]
    #: True when the request asked for more records than were cached; the
    #: ids are then the correct leading prefix of the answer.
    partial: bool
    #: Key of the cached entry that served the hit.
    entry_key: int


@dataclass(frozen=True)
class InsertPrescreen:
    """Vectorized classification of the whole cache against one insert."""

    #: Entries the insert provably cannot disturb — no LP needed.
    safe: tuple[int, ...]
    #: Entries whose k-th record the insert ties at *every* query vector
    #: (identical g-image); the caller's tie-break rule decides, no LP.
    ties: tuple[int, ...]
    #: Entries the screen could not clear — run the exact LP test.
    candidates: tuple[int, ...]

    @property
    def screened(self) -> int:
        """Entries resolved without an LP."""
        return len(self.safe) + len(self.ties)


#: Floor on the Chebyshev-radius volume proxy, so sliver/degenerate
#: regions still carry a positive gain and recency can order them.
_MIN_RADIUS = MIN_GAIN_RADIUS


# repro: thread-owned[GIRCache] -- owned by one GIREngine; the router's serve lock serializes every path that reaches it
class GIRCache:
    """A capacity-bounded cache of (query, top-k result, GIR) triples.

    Capacity overflow is resolved by one of two eviction policies:

    * ``policy="lru"`` (default, the reference policy) — drop the least
      recently used entry;
    * ``policy="cost"`` — Greedy-Dual scoring: each entry carries a
      *gain* — its region-volume proxy (Chebyshev radius ** d, floored)
      times its recompute cost (``1 + io_pages_total`` of the original
      GIR computation) — and a *priority* ``clock_at_last_touch + gain``.
      Eviction drops the minimum-priority entry and advances the clock to
      the victim's priority, so untouched entries age relative to the
      clock exactly as in LRU, while big or expensive regions survive
      proportionally longer. Under a drifting hot spot this keeps the
      wide regions that will serve the *next* hot spot, where LRU churns
      them out with the small, momentarily-hot slivers.
    """

    def __init__(
        self,
        capacity: int = 128,
        policy: str = "lru",
        grid: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if policy not in ("lru", "cost"):
            raise ValueError(f"unknown eviction policy {policy!r}")
        self.capacity = capacity
        self.policy = policy
        #: Whether region indexes carry the grid admission prescreen.
        self.grid = bool(grid)
        self._entries: OrderedDict[int, GIRResult] = OrderedDict()
        self._next_key = 0
        #: One region index per query-space dimensionality.
        self._indexes: dict[int, RegionIndex] = {}
        #: Monotone recency stamps (mirror the OrderedDict order) so the
        #: vectorized lookup can break ties most-recently-used-first
        #: without walking the dict.
        self._stamps: dict[int, int] = {}
        self._tick = 0
        #: Greedy-Dual state (cost policy): inflation clock, memoized
        #: per-key raw gain (and its sum over live entries, for
        #: normalization), and priority = clock at last touch + shaped
        #: gain.
        self._clock = 0.0
        self._gain: dict[int, float] = {}
        self._gain_total = 0.0
        self._priority: dict[int, float] = {}
        self.full_hits = 0
        self.partial_hits = 0
        self.misses = 0
        self.subsumption_evictions = 0
        #: Inserts skipped because an existing same-``k`` entry's region
        #: already contains the new entry's query vector (the existing
        #: entry is refreshed instead).
        self.subsumption_skips = 0
        self.invalidation_evictions = 0
        #: Entries dropped by the LRU policy on capacity overflow.
        self.lru_evictions = 0
        #: Entries dropped by the cost-aware policy on capacity overflow.
        self.cost_evictions = 0

    @property
    def capacity_evictions(self) -> int:
        """Total capacity-overflow evictions across both policies."""
        return self.lru_evictions + self.cost_evictions

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Total lookups served from cache (full + partial)."""
        return self.full_hits + self.partial_hits

    # -- internal bookkeeping --------------------------------------------------

    def _touch(self, key: int) -> None:
        self._entries.move_to_end(key)
        self._tick += 1
        self._stamps[key] = self._tick
        if self.policy == "cost":
            self._priority[key] = self._priority_of(key)

    def _priority_of(self, key: int) -> float:
        """Greedy-Dual priority at the current clock.

        The raw gain is normalized by the mean gain of the live entries
        (so the value term is O(1) and the clock ages untouched entries at
        LRU speed regardless of data scale) and square-root-compressed
        (raw gains span orders of magnitude; uncompressed, a hot but
        small region would be evicted the moment it stops being the very
        last touch, which loses to LRU even on non-drifting skew)."""
        mean = self._gain_total / len(self._gain) if self._gain else 1.0
        rel = self._gain[key] / mean if mean > 0.0 else 1.0
        return self._clock + float(np.sqrt(rel))

    def _entry_gain(self, gir: GIRResult) -> float:
        """Greedy-Dual gain: region-volume proxy × recompute cost.

        The Chebyshev radius is memoized on the polytope; the ``d``-th
        power makes the proxy scale like a volume, and the floor keeps
        degenerate (empty-interior) regions at a small positive gain.
        """
        _center, radius = gir.polytope.chebyshev_center()
        if not np.isfinite(radius) or radius <= 0.0:
            radius = _MIN_RADIUS
        d = int(gir.weights.shape[0])
        volume_proxy = max(radius, _MIN_RADIUS) ** d
        recompute_cost = 1.0 + float(gir.stats.io_pages_total)
        return volume_proxy * recompute_cost

    def _register(
        self, key: int, gir: GIRResult, kth_g: np.ndarray | None
    ) -> None:
        self._entries[key] = gir
        self._tick += 1
        self._stamps[key] = self._tick
        if self.policy == "cost":
            gain = self._entry_gain(gir)
            self._gain[key] = gain
            self._gain_total += gain
            self._priority[key] = self._priority_of(key)
        d = int(gir.weights.shape[0])
        self._indexes.setdefault(
            d, RegionIndex(d, grid_cells=None if self.grid else 0)
        ).add(key, gir.polytope, kth_g=kth_g)

    def _forget_scoring(self, key: int) -> None:
        self._stamps.pop(key, None)
        gain = self._gain.pop(key, None)
        if gain is not None:
            self._gain_total -= gain
            if not self._gain:
                self._gain_total = 0.0
        self._priority.pop(key, None)

    def _unregister(self, key: int) -> bool:
        gir = self._entries.pop(key, None)
        if gir is None:
            return False
        self._forget_scoring(key)
        index = self._indexes.get(int(gir.weights.shape[0]))
        if index is not None:
            index.remove(key)
        return True

    def entry(self, key: int) -> GIRResult:
        """The cached entry under ``key`` (no recency touch)."""
        return self._entries[key]

    # -- writes ---------------------------------------------------------------

    @sanitize.mutates
    def insert(
        self,
        gir: GIRResult,
        kth_g: np.ndarray | None = None,
        subsume: bool = True,
    ) -> int:
        """Cache a computed GIR; returns its entry key.

        Subsumption is resolved in both directions. An existing same-``k``
        entry whose own query vector lies inside the new GIR is strictly
        subsumed: the GIR is the *maximal* region of the ordered result,
        and containing the old query vector at equal ``k`` means both
        entries certify the same ordered result — i.e. the same maximal
        region. The old entry is evicted rather than left to crowd the LRU
        with a redundant region. Conversely, when the *new* entry's query
        vector already lies inside an existing same-``k`` entry's region
        (and that entry was not itself just evicted as subsumed), the new
        entry is redundant: the insert is skipped and the existing entry's
        recency refreshed — its key is returned. Entries cached for a
        *different* ``k`` are kept either way: a deeper entry serves
        requests the new one cannot, and a shallower entry's region is
        typically *wider* (fewer constraints) and still serves traffic the
        new, tighter region misses.

        Both directions rest on regions being *maximal* for their ordered
        result. Callers caching **under-approximated** regions — the
        sharded cluster tier's merged entries — must pass
        ``subsume=False``: two such entries can certify the same ordered
        result under different, non-nested regions, so evicting (or
        skipping) one would silently shrink the cache's coverage.

        ``kth_g`` — the g-image of the entry's k-th result record — enables
        the vectorized insert-invalidation prescreen for this entry (see
        :meth:`prescreen_insert`); optional for read-only deployments.
        """
        stale: list[int] = []
        if subsume:
            k = gir.topk.k
            same_k = [
                key
                for key, entry in self._entries.items()
                if entry.topk.k == k
                and entry.weights.shape == gir.weights.shape
            ]
            if same_k:
                inside = gir.polytope.contains_batch(
                    np.stack([self._entries[key].weights for key in same_k])
                )
                stale = [key for key, flag in zip(same_k, inside) if flag]
            if not stale:
                # Reverse direction: is the new entry itself redundant?
                host = self._subsuming_host(gir, same_k)
                if host is not None:
                    self._touch(host)
                    self.subsumption_skips += 1
                    return host
        for key in stale:
            self._unregister(key)
        self.subsumption_evictions += len(stale)

        key = self._next_key
        self._next_key += 1
        self._register(key, gir, kth_g)
        if len(self._entries) > self.capacity:
            if self.policy == "cost":
                victim = min(self._priority, key=self._priority.__getitem__)
                # Advance the clock so entries untouched since before the
                # victim's last touch age out of the cache the way LRU
                # would age them.
                self._clock = self._priority[victim]
                self._unregister(victim)
                self.cost_evictions += 1
            else:
                oldest = next(iter(self._entries))
                self._unregister(oldest)
                self.lru_evictions += 1
        return key

    def _subsuming_host(
        self, gir: GIRResult, same_k: Sequence[int]
    ) -> int | None:
        """Most recent same-``k`` entry whose region contains ``gir``'s own
        query vector, or ``None``."""
        if not same_k:
            return None
        index = self._indexes.get(int(gir.weights.shape[0]))
        if index is None or not len(index):
            return None
        mask = index.membership(gir.weights)
        keys = index.keys()
        same_k_set = set(same_k)
        hosts = [
            keys[i] for i in np.nonzero(mask)[0] if keys[i] in same_k_set
        ]
        if not hosts:
            return None
        return max(hosts, key=self._stamps.__getitem__)

    # -- lookups --------------------------------------------------------------

    @sanitize.mutates  # a hit touches recency; every path bumps counters
    def lookup(
        self, weights: np.ndarray, k: int, full_only: bool = False
    ) -> CacheHit | None:
        """Serve a query from cache if its vector lies in some cached GIR.

        Membership of *all* entries is evaluated in one vectorized pass
        over the region index; a hit refreshes the entry's recency. A
        containing entry cached for a smaller ``k`` only serves a
        *partial* prefix, so a full-serving entry is preferred when any
        containing entry has ``cached k ≥ k``; among equally good
        candidates the most recently used wins (exactly the order the
        entry-by-entry scan of :meth:`lookup_scan` produces). Returns
        ``None`` on a miss.

        ``full_only`` makes a lookup that no entry can serve *in full*
        count as a miss (no partial hit, no recency touch) — the mode of
        callers that cannot complete a prefix, such as the sharded
        cluster tier, whose merged entries have no resumable search state.
        """
        weights = np.asarray(weights, dtype=np.float64)
        return self._resolve(self._members_of(weights), k, full_only=full_only)

    @sanitize.mutates
    def lookup_scan(self, weights: np.ndarray, k: int) -> CacheHit | None:
        """Entry-by-entry reference implementation of :meth:`lookup`.

        Scans entries most-recently-used first, one ``Polytope.contains``
        per entry — the pre-index serving path, kept for equivalence tests
        and as the baseline of the cache-scan microbenchmark. Answers and
        hit/miss accounting are identical to :meth:`lookup`.
        """
        weights = np.asarray(weights, dtype=np.float64)
        partial_key = None
        partial_ids: tuple[int, ...] = ()
        # OrderedDict supports reversed iteration natively; no key-list
        # materialisation. The in-loop _touch is safe because the scan
        # returns immediately after it.
        for key in reversed(self._entries):
            gir = self._entries[key]
            if gir.weights.shape != weights.shape:
                continue
            if not gir.contains(weights):
                continue
            cached_ids = gir.topk.ids
            if k <= len(cached_ids):
                self._touch(key)
                self.full_hits += 1
                return CacheHit(ids=cached_ids[:k], partial=False, entry_key=key)
            if partial_key is None or len(cached_ids) > len(partial_ids):
                partial_key, partial_ids = key, cached_ids
        if partial_key is not None:
            self._touch(partial_key)
            self.partial_hits += 1
            return CacheHit(ids=partial_ids, partial=True, entry_key=partial_key)
        self.misses += 1
        return None

    @sanitize.mutates
    def lookup_batch(
        self,
        weights_batch: np.ndarray,
        ks: int | Sequence[int],
        stop_after_non_full: bool = False,
        full_only: bool = False,
    ) -> list[CacheHit | None]:
        """Serve a whole batch of lookups from one membership matmul.

        ``weights_batch`` is ``(q, d)``; ``ks`` a scalar or per-query
        sequence. Results, recency refreshes and hit/miss accounting are
        exactly those of ``q`` sequential :meth:`lookup` calls (pure
        lookups never change membership, so the batched matrix stays valid
        throughout).

        With ``stop_after_non_full`` the batch stops — *after* accounting
        it — at the first lookup that is not a full hit, returning a
        possibly shorter list. The serving engine uses this to interleave
        pipeline computations (which mutate the cache) at exactly the
        positions a sequential run would.

        ``full_only`` is forwarded to the per-query resolution (see
        :meth:`lookup`): queries only a smaller-``k`` entry contains count
        as misses instead of partial hits.
        """
        W = np.asarray(weights_batch, dtype=np.float64)
        if W.ndim != 2:
            raise ValueError("weights_batch must have shape (q, d)")
        q = W.shape[0]
        ks_arr = np.broadcast_to(np.asarray(ks, dtype=np.int64), (q,))
        index = self._indexes.get(int(W.shape[1]))
        membership = None
        keys: list[int] = []
        if index is not None and len(index):
            membership = index.membership_batch(W)
            keys = index.keys()
        hits: list[CacheHit | None] = []
        for i in range(q):
            members = (
                [keys[j] for j in np.nonzero(membership[i])[0]]
                if membership is not None
                else []
            )
            hit = self._resolve(members, int(ks_arr[i]), full_only=full_only)
            hits.append(hit)
            if stop_after_non_full and (hit is None or hit.partial):
                break
        return hits

    def _members_of(self, weights: np.ndarray) -> list[int]:
        """Keys of all cached entries whose region contains ``weights``."""
        index = self._indexes.get(int(weights.shape[0]))
        if index is None or not len(index):
            return []
        mask = index.membership(weights)
        keys = index.keys()
        return [keys[i] for i in np.nonzero(mask)[0]]

    def _resolve(
        self, member_keys: Sequence[int], k: int, full_only: bool = False
    ) -> CacheHit | None:
        """Pick the serving entry among containing entries and account the
        outcome — the selection rule shared by every lookup flavour.
        ``full_only`` suppresses partial hits (counted as misses)."""
        best_full: tuple[int, int] | None = None  # (stamp, key)
        best_partial: tuple[int, int, int] | None = None  # (cached, stamp, key)
        for key in member_keys:
            cached = len(self._entries[key].topk.ids)
            stamp = self._stamps[key]
            if cached >= k:
                if best_full is None or stamp > best_full[0]:
                    best_full = (stamp, key)
            elif full_only:
                continue
            elif best_partial is None or (cached, stamp) > best_partial[:2]:
                best_partial = (cached, stamp, key)
        if best_full is not None:
            key = best_full[1]
            self._touch(key)
            self.full_hits += 1
            return CacheHit(
                ids=self._entries[key].topk.ids[:k], partial=False, entry_key=key
            )
        if best_partial is not None:
            key = best_partial[2]
            self._touch(key)
            self.partial_hits += 1
            return CacheHit(
                ids=self._entries[key].topk.ids, partial=True, entry_key=key
            )
        self.misses += 1
        return None

    def entry_keys(self) -> list[int]:
        """Keys of the currently cached entries (LRU order, oldest first)."""
        return list(self._entries)

    def items(self) -> Iterator[tuple[int, GIRResult]]:
        """(key, entry) pairs in LRU order, oldest first (no recency touch)."""
        return iter(list(self._entries.items()))

    # -- update-driven eviction ------------------------------------------------

    @sanitize.mutates  # the grid prescreen bumps probe counters
    def prescreen_insert(
        self, point_g: np.ndarray, tol: float = MEMBERSHIP_TOL
    ) -> InsertPrescreen:
        """Screen the whole cache against an inserted record's g-image.

        One vectorized pass per region index (see
        :meth:`~repro.core.region_index.RegionIndex.prescreen_insert`)
        partitions the entries into provably-undisturbed / exact-tie /
        LP-candidate sets; the caller runs
        :func:`invalidated_by_insert`'s LP only on the candidates.
        Entries indexed under a different dimensionality than ``point_g``
        (impossible through :class:`repro.engine.GIREngine`) are returned
        as candidates so no caller can silently skip them.
        """
        point_g = np.asarray(point_g, dtype=np.float64)
        d = int(point_g.shape[0])
        safe: list[int] = []
        ties: list[int] = []
        candidates: list[int] = []
        for dim, index in self._indexes.items():
            if not len(index):
                continue
            keys = np.asarray(index.keys())
            if dim != d:
                candidates.extend(keys.tolist())
                continue
            codes = index.prescreen_insert(point_g, tol=tol)
            safe.extend(keys[codes == SCREEN_SAFE].tolist())
            ties.extend(keys[codes == SCREEN_TIE].tolist())
            candidates.extend(
                keys[(codes != SCREEN_SAFE) & (codes != SCREEN_TIE)].tolist()
            )
        return InsertPrescreen(
            safe=tuple(safe), ties=tuple(ties), candidates=tuple(candidates)
        )

    @sanitize.mutates
    def evict(self, keys: Iterable[int]) -> int:
        """Drop the given entries (update invalidation); returns the number
        actually removed. Unknown keys are ignored. The region indexes are
        compacted once per dimensionality, not once per key."""
        by_dim: dict[int, list[int]] = {}
        removed = 0
        for key in keys:
            gir = self._entries.pop(key, None)
            if gir is None:
                continue
            removed += 1
            self._forget_scoring(key)
            by_dim.setdefault(int(gir.weights.shape[0]), []).append(key)
        for dim, dim_keys in by_dim.items():
            index = self._indexes.get(dim)
            if index is not None:
                index.remove_many(dim_keys)
        self.invalidation_evictions += removed
        return removed

    @sanitize.mutates
    def flush(self) -> int:
        """Drop every entry (the flush-on-write baseline); returns the count."""
        removed = len(self._entries)
        self._entries.clear()
        self._stamps.clear()
        self._gain.clear()
        self._gain_total = 0.0
        self._priority.clear()
        for index in self._indexes.values():
            index.clear()
        self.invalidation_evictions += removed
        return removed

    def grid_counters(self) -> tuple[int, int]:
        """Cheap ``(probes, negatives)`` totals of the grid prescreen —
        the tracing layer reads these around a lookup to attribute the
        prescreen's outcome to a span without paying for full
        :meth:`stats`."""
        probes = 0
        negatives = 0
        for index in self._indexes.values():
            if index.grid is not None:
                probes += index.grid.probes
                negatives += index.grid.negatives
        return probes, negatives

    def stats(self) -> dict[str, int]:
        grids = [
            index.grid_stats()
            for index in self._indexes.values()
            if index.grid is not None
        ]
        return {
            "hits": self.hits,
            "full_hits": self.full_hits,
            "partial_hits": self.partial_hits,
            "misses": self.misses,
            "subsumption_evictions": self.subsumption_evictions,
            "subsumption_skips": self.subsumption_skips,
            "invalidation_evictions": self.invalidation_evictions,
            "capacity_evictions": self.capacity_evictions,
            "lru_evictions": self.lru_evictions,
            "cost_evictions": self.cost_evictions,
            "entries": len(self._entries),
            "index_rows": sum(
                index.rows for index in self._indexes.values()
            ),
            "grid_probes": sum(g["probes"] for g in grids),
            "grid_negatives": sum(g["negatives"] for g in grids),
        }
