"""GIR-based top-k result caching (Section 1 application).

Previous top-k results are stored along with their GIRs. A new request
whose query vector falls inside a cached GIR can be answered without
touching the database:

* same or smaller ``k`` — inside the (order-sensitive) GIR the whole
  ordered list is immutable, so the first ``k'`` cached records are the
  exact answer;
* larger ``k`` — the cached records are still the correct highest-scoring
  prefix, which the cache returns immediately flagged *partial* (the paper
  cites progressive reporting [31] for this case), leaving the caller to
  compute the remaining records. :class:`repro.engine.GIREngine` does
  exactly that: it resumes the compute pipeline and serves a complete
  answer instead of handing the prefix back to the user.

Hit accounting is non-overlapping: every lookup is exactly one of
``full_hits``, ``partial_hits`` or ``misses``.

Dynamic datasets
----------------

When the database changes under the cache, the GIR is precisely the tool
that decides *which* cached entries an update can disturb:

* an **insert** invalidates entry E only if the new record's score can
  exceed E's k-th score somewhere inside E's region — the
  halfspace-intersection test :func:`invalidated_by_insert` (one LP via
  :meth:`~repro.core.gir.GIRResult.admits_above_kth`);
* a **delete** invalidates E only if the deleted rid appears in E's
  result, or in the T-set of E's retained BRS run (whose resumed state
  would otherwise replay the dead record) —
  :func:`invalidated_by_delete`. Deleting any other record leaves the
  cached ordered top-k valid everywhere in the region.

The eviction mechanics live on :meth:`GIRCache.evict` /
:meth:`GIRCache.flush`; the *policy* (selective GIR test vs flush-on-write
baseline) is chosen by :class:`repro.engine.GIREngine`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.core.gir import GIRResult

__all__ = [
    "CacheHit",
    "GIRCache",
    "invalidated_by_insert",
    "invalidated_by_delete",
]


def invalidated_by_insert(
    gir: GIRResult,
    point_g: np.ndarray,
    kth_g: np.ndarray,
    tol: float = 1e-9,
    tie_wins: bool = False,
) -> bool:
    """Does inserting a record with g-image ``point_g`` disturb ``gir``?

    True iff the new record can rank above the entry's k-th result record
    somewhere in the region (it would then enter the cached top-k for the
    queries that land there). ``kth_g`` is the g-image of the entry's k-th
    result record; ``tie_wins`` says whether the new record beats it on
    the ``(coord-sum, rid)`` tie-break when their scores tie exactly (an
    inserted duplicate always does — its rid is fresher).
    """
    return gir.admits_above_kth(point_g, kth_g, tol=tol, tie_wins=tie_wins)


def invalidated_by_delete(
    gir: GIRResult, rid: int, tset_ids: Iterable[int] | None = None
) -> bool:
    """Does deleting record ``rid`` disturb ``gir``?

    True iff ``rid`` is one of the entry's result records (the cached
    answer itself loses a member), or appears in the T-set of the entry's
    retained BRS run (``tset_ids``; resuming that run would replay the
    dead record). Deleting a record outside both sets cannot change the
    cached ordered top-k anywhere in the region: removing a non-member
    never alters a top-k answer, so the region merely becomes a valid
    under-approximation of the new (larger) GIR.
    """
    if rid in gir.topk.ids:
        return True
    return tset_ids is not None and rid in tset_ids


@dataclass(frozen=True)
class CacheHit:
    """Outcome of a successful cache lookup."""

    ids: tuple[int, ...]
    #: True when the request asked for more records than were cached; the
    #: ids are then the correct leading prefix of the answer.
    partial: bool
    #: Key of the cached entry that served the hit.
    entry_key: int


class GIRCache:
    """An LRU cache of (query, top-k result, GIR) triples."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, GIRResult] = OrderedDict()
        self._next_key = 0
        self.full_hits = 0
        self.partial_hits = 0
        self.misses = 0
        self.subsumption_evictions = 0
        self.invalidation_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Total lookups served from cache (full + partial)."""
        return self.full_hits + self.partial_hits

    def insert(self, gir: GIRResult) -> int:
        """Cache a computed GIR; returns its entry key.

        An existing same-``k`` entry whose own query vector lies inside the
        new GIR is strictly subsumed: the GIR is the *maximal* region of
        the ordered result, and containing the old query vector at equal
        ``k`` means both entries certify the same ordered result — i.e. the
        same maximal region. The old entry is evicted rather than left to
        crowd the LRU with a redundant region. Entries cached for a
        *different* ``k`` are kept either way: a deeper entry serves
        requests the new one cannot, and a shallower entry's region is
        typically *wider* (fewer constraints) and still serves traffic the
        new, tighter region misses.
        """
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.topk.k == gir.topk.k
            and entry.weights.shape == gir.weights.shape
            and gir.contains(entry.weights)
        ]
        for key in stale:
            del self._entries[key]
        self.subsumption_evictions += len(stale)

        key = self._next_key
        self._next_key += 1
        self._entries[key] = gir
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return key

    def lookup(self, weights: np.ndarray, k: int) -> CacheHit | None:
        """Serve a query from cache if its vector lies in some cached GIR.

        Scans entries most-recently-used first; a hit refreshes the entry's
        recency. A containing entry cached for a smaller ``k`` only serves
        a *partial* prefix, so the scan keeps going in case a deeper entry
        can serve the request fully, and falls back to the best partial
        prefix found. Returns ``None`` on a miss.
        """
        weights = np.asarray(weights, dtype=np.float64)
        partial_key = None
        partial_ids: tuple[int, ...] = ()
        # OrderedDict supports reversed iteration natively; no key-list
        # materialisation. The in-loop move_to_end is safe because the
        # scan returns immediately after it.
        for key in reversed(self._entries):
            gir = self._entries[key]
            if gir.weights.shape != weights.shape:
                continue
            if not gir.contains(weights):
                continue
            cached_ids = gir.topk.ids
            if k <= len(cached_ids):
                self._entries.move_to_end(key)
                self.full_hits += 1
                return CacheHit(ids=cached_ids[:k], partial=False, entry_key=key)
            if partial_key is None or len(cached_ids) > len(partial_ids):
                partial_key, partial_ids = key, cached_ids
        if partial_key is not None:
            self._entries.move_to_end(partial_key)
            self.partial_hits += 1
            return CacheHit(ids=partial_ids, partial=True, entry_key=partial_key)
        self.misses += 1
        return None

    def entry_keys(self) -> list[int]:
        """Keys of the currently cached entries (LRU order, oldest first)."""
        return list(self._entries)

    def items(self) -> Iterator[tuple[int, GIRResult]]:
        """(key, entry) pairs in LRU order, oldest first (no recency touch)."""
        return iter(list(self._entries.items()))

    # -- update-driven eviction ------------------------------------------------

    def evict(self, keys: Iterable[int]) -> int:
        """Drop the given entries (update invalidation); returns the number
        actually removed. Unknown keys are ignored."""
        removed = 0
        for key in keys:
            if self._entries.pop(key, None) is not None:
                removed += 1
        self.invalidation_evictions += removed
        return removed

    def flush(self) -> int:
        """Drop every entry (the flush-on-write baseline); returns the count."""
        removed = len(self._entries)
        self._entries.clear()
        self.invalidation_evictions += removed
        return removed

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "full_hits": self.full_hits,
            "partial_hits": self.partial_hits,
            "misses": self.misses,
            "subsumption_evictions": self.subsumption_evictions,
            "invalidation_evictions": self.invalidation_evictions,
            "entries": len(self._entries),
        }
