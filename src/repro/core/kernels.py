"""Compiled hot-loop kernels with pure-numpy fallbacks.

The serving hot path bottoms out in a handful of tiny dense loops: the
segmented membership reduction of :class:`~repro.core.region_index.RegionIndex`
(one matvec over all cached half-space rows plus a per-entry AND), the
facet-visibility tests inside the FP fan refinement
(:mod:`repro.core.phase2_fp` / :class:`~repro.geometry.incident_facets.FacetFan`)
and the grid-signature cell math of the cache admission prescreen. Each of
them has two implementations here:

* a **numpy fallback** — exactly the vectorized expressions the callers
  used inline before this module existed; always available;
* a **numba-jitted variant** — the same loop compiled with
  ``numba.njit(cache=True)``, which wins by fusing the matvec with the
  segment reduction (early exit per segment, no temporaries).

Selection happens **once at import time**: the jitted variants are active
iff ``numba`` is importable *and* the ``REPRO_NO_JIT`` environment
variable is unset/empty. :data:`ACTIVE_BACKEND` records the decision
(``"numba"`` / ``"numpy"``) so tests, benchmarks and bug reports can state
which code actually ran. ``fastmath`` stays **off** so the compiled loops
perform the same IEEE operations in the same order as the fallbacks —
the bit-equivalence contract ``tests/test_kernels.py`` enforces whenever
numba is present.

Every kernel is also exported under its implementation-specific name
(``*_numpy`` and, when numba is importable, ``*_numba``), so equivalence
tests and the admission benchmark can race both paths inside one process
regardless of which one is active.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "ACTIVE_BACKEND",
    "NUMBA_AVAILABLE",
    "JIT_DISABLED_BY_ENV",
    "segmented_membership",
    "segmented_membership_batch",
    "segmented_max",
    "above_mask",
    "any_above",
    "box_any_above",
    "dominated_mask",
    "segmented_membership_numpy",
    "segmented_membership_batch_numpy",
    "segmented_max_numpy",
    "above_mask_numpy",
    "any_above_numpy",
    "box_any_above_numpy",
    "dominated_mask_numpy",
]

#: True when ``REPRO_NO_JIT`` is set to a non-empty value — the escape
#: hatch that forces the numpy fallbacks even with numba installed.
JIT_DISABLED_BY_ENV = bool(os.environ.get("REPRO_NO_JIT", ""))

try:  # pragma: no cover - exercised only where numba is installed
    if JIT_DISABLED_BY_ENV:
        raise ImportError("jit disabled via REPRO_NO_JIT")
    import numba

    NUMBA_AVAILABLE = True
except ImportError:
    numba = None
    NUMBA_AVAILABLE = False


# -- numpy fallbacks ----------------------------------------------------------
#
# These are the reference semantics: byte-for-byte the expressions the
# callers inlined before this module existed.


def segmented_membership_numpy(
    A: np.ndarray, b: np.ndarray, offsets: np.ndarray, x: np.ndarray, tol: float
) -> np.ndarray:
    """Per-segment AND of ``A @ x <= b + tol`` over row segments.

    ``offsets`` has one more element than there are segments; segment ``i``
    owns rows ``offsets[i]:offsets[i+1]``. Returns a boolean array with one
    entry per segment.
    """
    ok = A @ x <= b + tol
    return np.logical_and.reduceat(ok, offsets[:-1])


def segmented_membership_batch_numpy(
    A: np.ndarray, b: np.ndarray, offsets: np.ndarray, X: np.ndarray, tol: float
) -> np.ndarray:
    """Batched :func:`segmented_membership_numpy`: ``X`` is ``(q, d)``,
    returns boolean ``(q, n_segments)``."""
    ok = X @ A.T <= b + tol
    return np.logical_and.reduceat(ok, offsets[:-1], axis=1)


def segmented_max_numpy(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment max of a stacked value vector (see membership for the
    segment convention)."""
    return np.maximum.reduceat(values, offsets[:-1])


def above_mask_numpy(
    normals: np.ndarray, offsets: np.ndarray, point: np.ndarray, eps: float
) -> np.ndarray:
    """Which facets (rows of ``normals`` / entries of ``offsets``) does
    ``point`` lie strictly above? The FP fan's per-point visibility test."""
    return normals @ point - offsets > eps


def any_above_numpy(
    points: np.ndarray, normals: np.ndarray, offsets: np.ndarray, eps: float
) -> np.ndarray:
    """Per-point: is the point above at least one facet? ``points`` is
    ``(m, d)``; the batched prefilter of ``FacetFan.add_points``."""
    return (points @ normals.T - offsets > eps).any(axis=1)


def box_any_above_numpy(
    pos: np.ndarray,
    neg: np.ndarray,
    offsets: np.ndarray,
    hi: np.ndarray,
    lo: np.ndarray,
    eps: float,
) -> bool:
    """Can any point of the box ``[lo, hi]`` lie above some facet?

    ``pos`` / ``neg`` are the clamped facet normals ``max(n, 0)`` /
    ``min(n, 0)`` — the max of a linear function over a box is
    corner-separable. This is the node-pruning test of FP's disk step.
    """
    best = pos @ hi + neg @ lo
    return bool((best - offsets > eps).any())


def dominated_mask_numpy(apex: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Which rows of ``points`` are dominated by ``apex`` (component-wise
    ``>=`` everywhere, ``>`` somewhere)? FP's record dominance filter."""
    return (apex >= points).all(axis=1) & (apex > points).any(axis=1)


# -- numba variants -----------------------------------------------------------

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def segmented_membership_numba(A, b, offsets, x, tol):
        n = offsets.shape[0] - 1
        d = A.shape[1]
        out = np.empty(n, dtype=np.bool_)
        for i in range(n):
            ok = True
            for r in range(offsets[i], offsets[i + 1]):
                acc = 0.0
                for j in range(d):
                    acc += A[r, j] * x[j]
                if not (acc <= b[r] + tol):
                    ok = False
                    break
            out[i] = ok
        return out

    @numba.njit(cache=True)
    def segmented_membership_batch_numba(A, b, offsets, X, tol):
        q = X.shape[0]
        n = offsets.shape[0] - 1
        d = A.shape[1]
        out = np.empty((q, n), dtype=np.bool_)
        for p in range(q):
            for i in range(n):
                ok = True
                for r in range(offsets[i], offsets[i + 1]):
                    acc = 0.0
                    for j in range(d):
                        acc += A[r, j] * X[p, j]
                    if not (acc <= b[r] + tol):
                        ok = False
                        break
                out[p, i] = ok
        return out

    @numba.njit(cache=True)
    def segmented_max_numba(values, offsets):
        n = offsets.shape[0] - 1
        out = np.empty(n, dtype=values.dtype)
        for i in range(n):
            best = values[offsets[i]]
            for r in range(offsets[i] + 1, offsets[i + 1]):
                if values[r] > best:
                    best = values[r]
            out[i] = best
        return out

    @numba.njit(cache=True)
    def above_mask_numba(normals, offsets, point, eps):
        m = normals.shape[0]
        d = normals.shape[1]
        out = np.empty(m, dtype=np.bool_)
        for i in range(m):
            acc = 0.0
            for j in range(d):
                acc += normals[i, j] * point[j]
            out[i] = acc - offsets[i] > eps
        return out

    @numba.njit(cache=True)
    def any_above_numba(points, normals, offsets, eps):
        m = points.shape[0]
        f = normals.shape[0]
        d = normals.shape[1]
        out = np.empty(m, dtype=np.bool_)
        for p in range(m):
            seen = False
            for i in range(f):
                acc = 0.0
                for j in range(d):
                    acc += points[p, j] * normals[i, j]
                if acc - offsets[i] > eps:
                    seen = True
                    break
            out[p] = seen
        return out

    @numba.njit(cache=True)
    def box_any_above_numba(pos, neg, offsets, hi, lo, eps):
        f = pos.shape[0]
        d = pos.shape[1]
        for i in range(f):
            acc = 0.0
            for j in range(d):
                acc += pos[i, j] * hi[j] + neg[i, j] * lo[j]
            if acc - offsets[i] > eps:
                return True
        return False

    @numba.njit(cache=True)
    def dominated_mask_numba(apex, points):
        m = points.shape[0]
        d = points.shape[1]
        out = np.empty(m, dtype=np.bool_)
        for p in range(m):
            all_ge = True
            any_gt = False
            for j in range(d):
                if apex[j] < points[p, j]:
                    all_ge = False
                    break
                if apex[j] > points[p, j]:
                    any_gt = True
            out[p] = all_ge and any_gt
        return out


# -- import-time selection ----------------------------------------------------

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    ACTIVE_BACKEND = "numba"
    segmented_membership = segmented_membership_numba
    segmented_membership_batch = segmented_membership_batch_numba
    segmented_max = segmented_max_numba
    above_mask = above_mask_numba
    any_above = any_above_numba
    box_any_above = box_any_above_numba
    dominated_mask = dominated_mask_numba
else:
    ACTIVE_BACKEND = "numpy"
    segmented_membership = segmented_membership_numpy
    segmented_membership_batch = segmented_membership_batch_numpy
    segmented_max = segmented_max_numpy
    above_mask = above_mask_numpy
    any_above = any_above_numpy
    box_any_above = box_any_above_numpy
    dominated_mask = dominated_mask_numpy


def backend_info() -> dict:
    """Provenance blob for benchmark reports: which kernels actually ran."""
    return {
        "active": ACTIVE_BACKEND,
        "numba_available": NUMBA_AVAILABLE,
        "jit_disabled_by_env": JIT_DISABLED_BY_ENV,
    }
