"""The paper's primary contribution: GIR computation.

Entry points:

* :func:`repro.core.gir.compute_gir` — order-sensitive GIR with method
  ``"sp"``, ``"cp"`` or ``"fp"`` (Sections 4-6);
* :func:`repro.core.gir_star.compute_gir_star` — order-insensitive GIR*
  (Section 7.1);
* :class:`repro.core.caching.GIRCache` — result caching application (§1);
* :mod:`repro.core.visualization` — MAH and interactive-projection bounds
  (Section 7.3);
* :mod:`repro.core.approximate` — Monte-Carlo sensitivity for scoring
  functions outside the half-space framework (Section 7.2).
"""

from repro.core.approximate import (
    GeneralMonotoneScoring,
    immutability_probability,
    immutable_ball_radius,
)
from repro.core.caching import GIRCache
from repro.core.gir import GIRResult, GIRStats, compute_gir
from repro.core.region_index import RegionIndex
from repro.core.gir_star import compute_gir_star
from repro.core.phase2_fp import FPOptions
from repro.core.perturbation import Perturbation, boundary_perturbations
from repro.core.visualization import interactive_projection, maximal_axis_rectangle

__all__ = [
    "compute_gir",
    "compute_gir_star",
    "GIRResult",
    "GIRStats",
    "GIRCache",
    "RegionIndex",
    "Perturbation",
    "boundary_perturbations",
    "maximal_axis_rectangle",
    "interactive_projection",
    "GeneralMonotoneScoring",
    "immutability_probability",
    "immutable_ball_radius",
    "FPOptions",
]
