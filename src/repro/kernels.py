"""Alias for :mod:`repro.core.kernels` — the compiled/fallback hot-loop
kernels of the serving path, importable as ``repro.kernels``.

``REPRO_NO_JIT=1`` in the environment forces the pure-numpy fallbacks even
when numba is installed; see the core module's docstring.
"""

from repro.core.kernels import *  # noqa: F401,F403
from repro.core.kernels import __all__, backend_info  # noqa: F401
