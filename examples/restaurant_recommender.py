"""The paper's motivating scenario: a restaurant recommendation service.

A HungryGoWhere/Yelp-style service rates restaurants on four factors —
food quality, ambience, value for money, service — and users ask for a
personalised top-10 with per-factor weights (Figure 1 of the paper). This
example shows how the GIR powers the three applications from the paper's
introduction:

1. **weight readjustment guidance** — slide-bar bounds within which moving
   a weight cannot change the recommendation, plus what the new top-10
   becomes at each tipping point;
2. **sensitivity analysis** — how robust the recommendation is, as the
   probability that a random weight setting produces the same list;
3. **simultaneous multi-weight changes** — something the LIRs of the
   earlier work [24] cannot certify, but the GIR can.

Run with:  python examples/restaurant_recommender.py
"""

import numpy as np

import repro

FACTORS = ["food quality", "ambience", "value", "service"]


def make_restaurant_data(n: int = 50_000, seed: int = 3) -> repro.Dataset:
    """Synthetic restaurant ratings: factor scores correlate through an
    underlying quality level, with per-factor idiosyncrasies (a cheap gem
    scores high on value but low on ambience, etc.)."""
    rng = np.random.default_rng(seed)
    quality = rng.beta(5, 2, size=(n, 1))  # most restaurants are decent
    idiosyncratic = rng.normal(0, 0.12, size=(n, 4))
    # Scale into the open interval so no two restaurants saturate at the
    # exact same corner rating (the paper assumes tie-free data).
    ratings = np.clip(0.08 + 0.8 * quality + idiosyncratic, 0.001, 0.999)
    return repro.Dataset(ratings, name="restaurants")


def main(n: int = 50_000) -> None:
    data = make_restaurant_data(n=n)
    tree = repro.bulk_load_str(data)

    # The user of Figure 1: weights (60, 50, 60, 70) on a 0-100 scale.
    weights = np.array([60, 50, 60, 70], dtype=float) / 100.0
    k = 10

    gir = repro.compute_gir(tree, data, weights, k, method="fp")
    print("Top-10 restaurants:", list(gir.topk.ids))
    print()

    # --- Application 1: slide-bar bounds (Figure 1(a)) ------------------
    print("Immutable range per slide-bar (0-100 scale):")
    for factor, w, (lo, hi) in zip(FACTORS, weights, gir.lir_intervals()):
        print(
            f"  {factor:<13} at {w * 100:5.1f}  "
            f"safe range [{lo * 100:6.2f}, {hi * 100:6.2f}]"
        )
    print()

    print("What happens at each tipping point:")
    for pert in gir.boundary_perturbations():
        print(f"  - {pert.description}")
        print(f"    new top-10: {list(pert.new_order)}")
    print()

    # --- Application 2: sensitivity of the recommendation ----------------
    ratio = gir.volume_ratio()
    print(f"Robustness: a uniformly random weight setting has probability "
          f"{ratio:.2e} of producing this exact ranked list.")
    stb = repro.stb_radius(data, weights, k)
    print(f"(For comparison, the STB ball of Soliman et al. has radius "
          f"{stb:.4f}; the GIR is the maximal region, STB a ball inside it.)")
    print()

    # --- Application 3: simultaneous multi-weight changes ----------------
    # LIRs only certify one-weight-at-a-time moves. The GIR certifies any
    # joint move: e.g. lower 'value' AND raise 'service' together.
    joint = weights + np.array([0.0, 0.0, -0.03, +0.04])
    inside = gir.contains(joint)
    print(f"Joint change value-3/service+4 keeps the top-10: {inside}")
    if inside:
        check = repro.scan_topk(data.points, joint, k)
        assert check.ids == gir.topk.ids
        print("  (verified by re-running the query)")

    # A fixed safe box for UIs that want static bounds (Figure 13(a)):
    mah = repro.maximal_axis_rectangle(gir)
    print("\nMaximum axis-parallel box inside the GIR (static UI bounds):")
    for factor, (lo, hi) in zip(FACTORS, mah.intervals()):
        print(f"  {factor:<13} [{lo * 100:6.2f}, {hi * 100:6.2f}]")


if __name__ == "__main__":
    import sys

    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
