"""Serving top-k traffic while the database changes underneath the cache.

The paper's Section 1 scenario assumes a static database, but real
catalogues churn: products appear and disappear between queries. The GIR
is exactly the tool that decides *which* cached results an update can
disturb — a new record invalidates a cached entry only if its score can
exceed the entry's k-th score somewhere inside the entry's region (one
halfspace-intersection LP), and a deleted record only matters if the entry
served it (or its retained search state saw it).

This example runs the same mixed read/write stream through two engines:

* ``invalidation="gir"``   — the selective, region-aware policy;
* ``invalidation="flush"`` — the classic flush-on-write baseline.

Both stay exactly correct (verified against a linear scan of the live
records after every update); the difference is how much of the cache — and
therefore how much of the hit rate — survives the churn.

Run with:  python examples/dynamic_engine.py
"""

import sys

import numpy as np

import repro
from repro.query.linear_scan import scan_topk


def main(n: int = 20_000, ops: int = 300) -> None:
    rng = np.random.default_rng(42)
    data = repro.independent(n=n, d=3, seed=4)
    k = 10

    # A Zipf-clustered read stream with update bursts blended in: ~20% of
    # operations insert a fresh record or delete a live one.
    workload = repro.mixed_workload(
        d=3, count=ops, base_n=n, k=k,
        update_fraction=0.2, insert_ratio=0.5,
        clusters=8, zipf_s=1.1, rng=rng,
    )
    print(
        f"mixed workload: {workload.reads} reads, "
        f"{workload.updates} updates over {n} records\n"
    )

    reports = {}
    engines = {}
    for policy in ("gir", "flush"):
        engine = repro.GIREngine(
            data, repro.bulk_load_str(data),
            cache_capacity=64, invalidation=policy,
        )
        reports[policy] = engine.run(workload)
        engines[policy] = engine
        print(f"--- invalidation = {policy!r} " + "-" * 40)
        print(reports[policy].summary())
        print()

    gir, flush = reports["gir"], reports["flush"]
    print("GIR-aware invalidation vs flush-on-write:")
    print(
        f"  cache evictions   : {gir.evictions_total} vs "
        f"{flush.evictions_total} "
        f"({gir.evictions_total / max(flush.evictions_total, 1):.0%} of baseline)"
    )
    print(
        f"  cache hit rate    : {gir.hit_rate:.1%} vs {flush.hit_rate:.1%}"
    )
    print(
        f"  pages / 1k queries: {gir.pages_per_1k_queries:.0f} vs "
        f"{flush.pages_per_1k_queries:.0f}"
    )

    # Correctness spot-check: the selectively-invalidated engine still
    # answers exactly like an exhaustive scan of the live records.
    engine = engines["gir"]
    exact = 0
    probes = 25
    for _ in range(probes):
        q = rng.random(3) * 0.8 + 0.1
        resp = engine.topk(q, k)
        truth = scan_topk(
            engine.points, q, k, live=engine.table.live_mask
        )
        exact += resp.ids == truth.ids
    print(f"\nspot check: {exact}/{probes} probe answers exact — "
          + ("all exact" if exact == probes else "MISMATCH"))


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    main(n=n, ops=220 if n < 20_000 else 300)
