"""GIR-based top-k result caching (Section 1, third application).

A server answering many users' top-k queries caches each computed result
together with its GIR. A new query whose weight vector falls inside a
cached GIR is served instantly — no index access at all. Users with
similar preferences thus share work.

This example simulates a query workload of "preference clusters" (groups
of users with similar taste) and reports hit rates and saved I/O.

Run with:  python examples/result_caching.py
"""

import numpy as np

import repro


def main(n: int = 30_000, workload: int = 400) -> None:
    rng = np.random.default_rng(9)
    data = repro.hotel_surrogate(n=n, seed=2)
    tree = repro.bulk_load_str(data)
    k = 10

    cache = repro.GIRCache(capacity=64)

    # Workload: 8 preference archetypes; each user is an archetype plus a
    # small personal tweak — the situation result caching exploits.
    archetypes = [rng.random(4) * 0.7 + 0.15 for _ in range(8)]
    queries = []
    for _ in range(workload):
        base = archetypes[rng.integers(len(archetypes))]
        queries.append(np.clip(base + rng.normal(0, 0.01, 4), 0.01, 1.0))

    served_from_cache = 0
    computed = 0
    io_pages_spent = 0
    for q in queries:
        hit = cache.lookup(q, k)
        if hit is not None:
            served_from_cache += 1
            continue
        tree.store.reset_meter()
        gir = repro.compute_gir(tree, data, q, k, method="fp")
        io_pages_spent += tree.store.stats.page_reads
        computed += 1
        cache.insert(gir)

    print(f"queries           : {len(queries)}")
    print(f"computed fresh    : {computed}")
    print(f"served from cache : {served_from_cache} "
          f"({100 * served_from_cache / len(queries):.1f}%)")
    print(f"I/O spent         : {io_pages_spent} pages "
          f"(~{io_pages_spent * 10 / 1000:.1f}s of disk time at 10ms/page)")
    print(f"cache entries     : {len(cache)}")
    print()

    # Sanity: spot-check that cached answers are exact.
    checked = 0
    for q in rng.permutation(queries)[:25]:
        hit = cache.lookup(q, k)
        if hit is not None and not hit.partial:
            assert hit.ids == repro.scan_topk(data.points, q, k).ids
            checked += 1
    print(f"verified {checked} cached answers against a full scan — all exact")

    # Progressive answering: a user of a cached entry asks for MORE results.
    q = queries[0]
    hit = cache.lookup(q, 25)
    if hit is not None and hit.partial:
        print(f"\nk=25 request served progressively: first {len(hit.ids)} "
              "records returned immediately from cache, remainder computed "
              "in the background (paper's progressive-reporting use case).")


if __name__ == "__main__":
    import sys

    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000)
