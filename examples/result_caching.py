"""GIR-based top-k result caching (Section 1, third application).

A server answering many users' top-k queries caches each computed result
together with its GIR. A new query whose weight vector falls inside a
cached GIR is served instantly — no index access at all. Users with
similar preferences thus share work.

The modern path is :class:`repro.GIREngine`: it owns the tree, dataset,
scorer and GIR cache, answers every request cache-first (partial hits are
*completed* by resuming computation, never returned half-done) and
accounts latency and I/O per request. For comparison, the second half of
this example replays the same workload through the original manual
cache-then-compute loop.

Run with:  python examples/result_caching.py
"""

import numpy as np

import repro


def main(n: int = 30_000, workload_len: int = 400) -> None:
    rng = np.random.default_rng(9)
    data = repro.hotel_surrogate(n=n, seed=2)
    tree = repro.bulk_load_str(data)
    k = 10

    # Workload: 8 preference archetypes with Zipf-distributed popularity;
    # each user is an archetype plus a small personal tweak — the
    # situation result caching exploits.
    workload = repro.zipf_clustered_workload(
        d=4, count=workload_len, k=k, clusters=8, zipf_s=1.1, spread=0.01,
        rng=rng,
    )

    # ---- engine path: cache-first serving with built-in accounting --------
    engine = repro.GIREngine(data, tree, cache_capacity=64)
    report = engine.run(workload)
    print("GIREngine serving the workload")
    print(report.summary())
    print(f"cache entries     : {len(engine.cache)}")
    print()

    # Sanity: spot-check that served answers are exact.
    checked = 0
    for req in list(rng.permutation(workload.requests))[:25]:
        resp = engine.topk(req.weights, k)
        assert resp.ids == repro.scan_topk(data.points, req.weights, k).ids
        checked += 1
    print(f"verified {checked} served answers against a full scan — all exact")
    print()

    # A user of a cached entry asks for MORE results: the engine completes
    # the answer by resuming computation (no half-done prefixes).
    deep = engine.topk(workload.requests[0].weights, 25)
    print(f"k=25 request after k={k} traffic: source={deep.source!r}, "
          f"{len(deep.ids)} records, {deep.pages_read} pages read")
    print()

    # ---- batched serving: the same workload as one matmul per batch --------
    # topk_batch / run(batch=True) evaluate whole request batches against
    # every cached region's stacked half-spaces at once (RegionIndex);
    # answers and hit/miss accounting are identical to the per-request
    # path — only the membership arithmetic is grouped differently.
    batched_engine = repro.GIREngine(
        data, repro.bulk_load_str(data), cache_capacity=64
    )
    batched_report = batched_engine.run(workload, batch=True)
    print("GIREngine serving the same workload batched (run(batch=True))")
    print(f"throughput        : {batched_report.throughput_qps:.0f} q/s "
          f"(sequential path above: {report.throughput_qps:.0f} q/s)")
    assert [r.ids for r in batched_report.responses] == [
        r.ids for r in report.responses
    ]
    print("batched responses identical to the per-request path")
    print()

    # ---- comparison: the original manual cache-then-compute loop ----------
    tree2 = repro.bulk_load_str(data)
    cache = repro.GIRCache(capacity=64)
    served_from_cache = 0
    computed = 0
    io_pages_spent = 0
    for req in workload:
        hit = cache.lookup(req.weights, k)
        if hit is not None and not hit.partial:
            served_from_cache += 1
            continue
        tree2.store.reset_meter()
        gir = repro.compute_gir(tree2, data, req.weights, k, method="fp")
        io_pages_spent += tree2.store.stats.page_reads
        computed += 1
        cache.insert(gir)

    print("Manual cache loop on the same workload (for comparison)")
    print(f"queries           : {len(workload)}")
    print(f"computed fresh    : {computed}")
    print(f"served from cache : {served_from_cache} "
          f"({100 * served_from_cache / len(workload):.1f}%)")
    print(f"I/O spent         : {io_pages_spent} pages "
          f"(~{io_pages_spent * 10 / 1000:.1f}s of disk time at 10ms/page)")
    print(f"cache entries     : {len(cache)}")


if __name__ == "__main__":
    import sys

    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000)
