"""Quickstart: compute a GIR and explore what it tells you.

Run with:  python examples/quickstart.py [n_records]
"""

import sys

import numpy as np

import repro


def main(n: int = 20_000) -> None:
    # 1. A dataset of n records with 4 attributes in [0, 1], indexed by
    #    an R*-tree over a simulated 4 KiB-page disk.
    data = repro.independent(n=n, d=4, seed=42)
    tree = repro.bulk_load_str(data)

    # 2. A top-10 query: the user weighs the four attributes.
    weights = np.array([0.60, 0.50, 0.60, 0.70])
    k = 10

    # 3. Compute the GIR with FP, the paper's fastest method.
    gir = repro.compute_gir(tree, data, weights, k, method="fp")

    print("Top-10 record ids :", list(gir.topk.ids))
    print("k-th record score :", f"{gir.topk.kth_score:.4f}")
    print()

    # 4. The GIR is the maximal region of weight vectors with this result.
    print("GIR half-spaces   :", len(gir.halfspaces))
    print("volume ratio      :", f"{gir.volume_ratio():.3e}",
          "(probability a random query vector gives the same result)")
    print("contains q        :", gir.contains(weights))

    nearby = weights + np.array([0.01, -0.01, 0.005, 0.0])
    print(f"contains q+delta  : {gir.contains(nearby)}  (delta = small nudge)")
    print()

    # 5. Per-weight immutable ranges (the slide-bar marks of Figure 1(a)).
    print("Per-weight immutable intervals (other weights fixed):")
    for axis, (lo, hi) in enumerate(gir.lir_intervals()):
        print(f"  w{axis + 1}: [{lo:.4f}, {hi:.4f}]   current = {weights[axis]:.2f}")
    print()

    # 6. What changes at each boundary of the region?
    print("Result perturbations at the GIR boundary:")
    for pert in gir.boundary_perturbations()[:6]:
        print(f"  - {pert.description}")
    print()

    # 7. Cost accounting, as the paper reports it.
    s = gir.stats
    print(f"cost: topk={s.cpu_ms_topk:.1f}ms cpu, "
          f"phase1+2={s.cpu_ms_total:.1f}ms cpu, "
          f"phase2 I/O={s.io_pages_phase2} pages "
          f"(~{s.io_ms_phase2:.0f}ms at {s.io_ms_per_page:.0f}ms/page), "
          f"candidates={s.phase2_candidates}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
