"""Sharded serving: a 4-shard cluster absorbing Zipf-clustered traffic.

One GIREngine caps out at one R*-tree and one cache. The sharded tier
(`repro.cluster.ShardedGIREngine`) partitions the records across N
independent shards — here with the kd-split partitioner, so each shard
owns a contiguous block of score space — fans every read out to all
shards, and merges the per-shard answers into the global top-k together
with a *merged stability region*: the intersection of the per-shard GIR
regions with the cross-shard merge-order half-spaces. Merged regions are
cached at the cluster level, so repeat traffic in a hot preference region
is served with zero fan-out and zero page reads.

The demo serves the same Zipf-clustered workload through a single engine
and through a 4-shard cluster — sequential fan-out, thread fan-out, and
process fan-out (``backend="process"``: one long-lived worker process per
shard, requests crossing the versioned wire format of
``repro.cluster.wire``, so CPU-bound phase-2 work escapes the GIL on
multi-core hosts) — verifies all answers are identical, and prints the
per-shard breakdowns.

Run with:  python examples/sharded_serving.py
"""

import sys

import repro
from repro.cluster import ShardedGIREngine


def main(n: int = 20_000, queries: int = 200) -> None:
    d, k = 3, 10
    data = repro.independent(n=n, d=d, seed=4)
    workload = repro.zipf_clustered_workload(
        d, queries, k=k, clusters=8, zipf_s=1.2, spread=0.02, rng=7
    )
    print(f"workload: {len(workload)} top-{k} queries over {n} records\n")

    single = repro.GIREngine(data, repro.bulk_load_str(data), cache_capacity=64)
    single_report = single.run(workload)
    print("--- single engine " + "-" * 44)
    print(single_report.summary())

    reports = {}
    configs = [
        ("sequential", dict(backend="inproc", parallel=False)),
        ("thread", dict(backend="inproc", parallel=True)),
        ("process", dict(backend="process", parallel=True)),
    ]
    for mode, knobs in configs:
        with ShardedGIREngine(
            data,
            shards=4,
            partitioner="kd",
            cache_capacity=64,
            cluster_cache_capacity=128,
            **knobs,
        ) as cluster:
            report = cluster.run(workload)
            reports[mode] = report
            print(f"\n--- 4-shard cluster ({mode} fan-out) " + "-" * 24)
            print(report.summary())

    for mode in reports:
        mismatches = sum(
            r.ids != s.ids
            for r, s in zip(reports[mode].responses, single_report.responses)
        )
        print(
            f"\n{mode:>10} fan-out vs single engine: "
            f"{len(single_report.responses) - mismatches}/"
            f"{len(single_report.responses)} identical"
            + (" — all exact" if mismatches == 0 else " — MISMATCH")
        )


if __name__ == "__main__":
    main(*(int(a) for a in sys.argv[1:3]))
