"""Sensitivity analysis across scoring functions and result sizes.

Decision-support angle (Section 1): alongside every recommendation, report
how robust it is. This example builds a small "dashboard" for the HOUSE
expenditure data: for several k and for both order-sensitive and
order-insensitive semantics, it reports

* the GIR volume ratio (probability a random weight vector reproduces the
  result),
* the STB ball radius (the earlier, weaker sensitivity measure),
* the number of binding conditions and which records they involve,

and renders a terminal-friendly view of the per-weight safe intervals.

Run with:  python examples/sensitivity_dashboard.py
"""

import numpy as np

import repro


def bar(lo: float, hi: float, q: float, width: int = 40) -> str:
    """ASCII slide-bar with the immutable range marked."""
    cells = [" "] * width
    a, b = int(lo * (width - 1)), int(hi * (width - 1))
    for i in range(a, b + 1):
        cells[i] = "="
    cells[int(q * (width - 1))] = "Q"
    return "0[" + "".join(cells) + "]1"


def main(n: int = 40_000) -> None:
    data = repro.house_surrogate(n=n, seed=5)
    tree = repro.bulk_load_str(data)
    attrs = ["gas", "electricity", "water", "heating", "insurance", "tax"]
    weights = np.array([0.5, 0.7, 0.3, 0.6, 0.4, 0.55])

    print(f"Sensitivity dashboard — HOUSE* ({n} records, 6 attributes)")
    print("query weights:", dict(zip(attrs, weights.tolist())))
    print()

    header = f"{'k':>4} | {'GIR ratio':>11} | {'GIR* ratio':>11} | {'STB radius':>10} | binding"
    print(header)
    print("-" * len(header))
    for k in (5, 10, 20):
        gir = repro.compute_gir(tree, data, weights, k, method="fp")
        star = repro.compute_gir_star(tree, data, weights, k, method="fp")
        stb = repro.stb_radius(data, weights, k)
        binding = len(gir.boundary_perturbations())
        print(
            f"{k:>4} | {gir.volume_ratio():>11.3e} | {star.volume():>11.3e} "
            f"| {stb:>10.4f} | {binding} facets"
        )
    print()

    k = 10
    gir = repro.compute_gir(tree, data, weights, k, method="fp")
    print(f"Per-weight immutable ranges at k={k} (Q marks current weight):")
    for name, w, (lo, hi) in zip(attrs, weights, gir.lir_intervals()):
        print(f"  {name:<12} {bar(lo, hi, w)}  [{lo:.3f}, {hi:.3f}]")
    print()

    # Which records sit on the boundary — the "one step away" alternatives.
    print("Records one tipping-point away from entering/reordering the result:")
    seen = set()
    for pert in gir.boundary_perturbations():
        rid = pert.halfspace.lower
        if rid in seen:
            continue
        seen.add(rid)
        kind = "would enter at rank k" if pert.halfspace.kind == "separation" else "would swap ranks"
        print(f"  record {rid:>6}: {kind}")
    print()

    # Same dashboard under a non-linear scoring function (Section 7.2).
    gir_nl = repro.compute_gir(tree, data, weights, k, method="sp",
                               scorer=repro.polynomial_scoring([2, 2, 1, 1, 1, 3]))
    print("Under a polynomial scoring function (Section 7.2):")
    print(f"  volume ratio {gir_nl.volume_ratio():.3e}; "
          f"top-k changes: {gir_nl.topk.ids != gir.topk.ids}")


if __name__ == "__main__":
    import sys

    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40_000)
