"""Figure 8: FP's pruning effectiveness.

Regenerates the total facet count of ``CH'`` (8a) and the count of facets
incident to ``p_k`` (8b). The paper's headline: FP needs to maintain only a
vanishing fraction of the hull.
"""

import pytest

from repro.bench.figures import figure_08


@pytest.mark.benchmark(group="figure-08")
def test_figure_08(benchmark, scale, emit):
    results = benchmark.pedantic(figure_08, args=(scale,), rounds=1, iterations=1)
    emit(results)
    total, incident = results[0], results[1]
    for row_all, row_inc in zip(total.rows, incident.rows):
        d = row_all[0]
        for fam_idx in range(3):
            all_facets = row_all[2 + fam_idx]
            inc_facets = row_inc[1 + 2 * fam_idx]
            # Incident facets are a small fraction of the full hull's.
            assert inc_facets <= all_facets
            if d >= 3:
                assert inc_facets < 0.5 * all_facets
    # Incident facet count grows with d (drives Figure 14's volume decay).
    ind_series = [row[1] for row in incident.rows]
    assert ind_series[-1] > ind_series[0]
