"""Figure 15: CPU and I/O time of SP/CP/FP versus dimensionality.

The paper's headline comparison: FP outperforms SP and CP in all cases,
with especially large I/O margins. Charts are per synthetic family.
"""


import pytest

from repro.bench.figures import figure_15


@pytest.mark.benchmark(group="figure-15")
def test_figure_15(benchmark, scale, emit):
    results = benchmark.pedantic(figure_15, args=(scale,), rounds=1, iterations=1)
    emit(results)
    by_name = {r.figure: r for r in results}
    for family in ("IND", "ANTI"):
        io = by_name[f"15-{family}-io"]
        for row in io.rows:
            d, cp, sp, fp = row
            # FP's I/O never exceeds SP/CP's (they share the BBS scan).
            assert fp <= sp + 1e-9
        cpu = by_name[f"15-{family}-cpu"]
        # Aggregate CPU comparison (per-cell noise is possible at smoke
        # scale; the sums reflect the chart's ordering).
        total_fp = sum(r[3] for r in cpu.rows)
        total_sp = sum(r[2] for r in cpu.rows)
        assert total_fp < total_sp
