"""Figure 6: pruning effectiveness of SP and CP.

Regenerates the cardinality of the skyline ``SL`` (6a) and of ``SL ∩ CH``
(6b) versus dimensionality, and asserts the paper's qualitative shape:
ANTI ≫ IND ≫ COR, and CP's candidate set is a subset of SP's.
"""

import pytest

from repro.bench.figures import figure_06


@pytest.mark.benchmark(group="figure-06")
def test_figure_06(benchmark, scale, emit):
    results = benchmark.pedantic(figure_06, args=(scale,), rounds=1, iterations=1)
    emit(results)
    sl, ch = results[0], results[1]
    for row_sl, row_ch in zip(sl.rows, ch.rows):
        d, ind, cor, anti = row_sl
        # Paper shape: anti-correlated skylines dwarf correlated ones.
        assert anti > ind > cor
        # CP keeps a subset of SP's candidates.
        for v_sl, v_ch in zip(row_sl[1:], row_ch[1:]):
            if v_ch == v_ch:  # skip NaN (d above the CP cap)
                assert v_ch <= v_sl + 1e-9
    # Skyline width grows with dimensionality (per family).
    for col in (1, 3):
        series = [row[col] for row in sl.rows]
        assert series[-1] > series[0]
