"""Update throughput: the serving layer under a mixed read/write stream.

Not a paper figure — this benchmarks the dynamic scenario Section 1
implies: a ``GIREngine`` absorbing Zipf-clustered query traffic while the
database changes underneath it. The same workload is served under
GIR-aware selective cache invalidation and under the flush-on-write
baseline; after every update batch, answers are checked against an
exhaustive linear scan of the live records. Emits the JSON report next to
this file so successive runs can be diffed.
"""

import json
from pathlib import Path

import pytest

from repro.bench.engine_bench import UpdateBenchConfig, run_update_benchmark

REPORT_PATH = Path(__file__).resolve().parent / "engine_updates_pytest.json"


@pytest.mark.benchmark(group="engine")
def test_engine_updates(benchmark):
    config = UpdateBenchConfig(n=3_000, d=3, k=8, ops=120, update_fraction=0.2)
    payload = benchmark.pedantic(
        run_update_benchmark,
        kwargs={"config": config, "out_path": REPORT_PATH},
        rounds=1,
        iterations=1,
    )
    print()
    print(json.dumps(payload, indent=2))

    assert payload["workload"]["reads"] + payload["workload"]["updates"] == 120
    assert payload["workload"]["updates"] > 0
    for policy in ("gir", "flush"):
        stats = payload["policies"][policy]
        # After every update batch the engine's answers matched the
        # exhaustive linear-scan ground truth over live records.
        assert stats["ground_truth_checks"] > 0
        assert stats["ground_truth_mismatches"] == 0
        assert stats["updates"] == payload["workload"]["updates"]
    # The selective policy must evict strictly fewer entries than
    # flush-on-write on the Zipf-clustered workload (both in the JSON).
    assert payload["gir_evictions"] < payload["flush_evictions"]
    assert payload["gir_evicts_fewer"] is True
    # The vectorized prescreen must clear cache entries without an LP on
    # this update stream, and never run more LPs than screened+run total.
    assert payload["gir_prescreen_screened"] > 0
    gir_stats = payload["policies"]["gir"]
    assert gir_stats["prescreen_screened"] == payload["gir_prescreen_screened"]
    assert gir_stats["prescreen_lps"] == payload["gir_prescreen_lps"]

    saved = json.loads(REPORT_PATH.read_text())
    assert saved["gir_evictions"] == payload["gir_evictions"]
    assert saved["config"]["ops"] == 120
