"""Ablation benchmark: FP's design choices (DESIGN.md §3).

Not a paper figure — this quantifies the individual contributions of FP's
ingredients: virtual seed points, dominance node pruning, and the optional
footnote-7 tightening with the Phase-1 region.
"""

import pytest

from repro.bench.figures import figure_ablation


@pytest.mark.benchmark(group="ablation")
def test_fp_ablation(benchmark, scale, emit):
    results = benchmark.pedantic(figure_ablation, args=(scale,), rounds=1, iterations=1)
    emit(results)
    io = results[0]
    for row in io.rows:
        d, default, no_seeds, no_dom, tighten = row
        # The footnote-7 tightening can only reduce page reads.
        assert tighten <= default + 1e-9
        # Disabling dominance pruning can only increase page reads.
        assert no_dom >= default - 1e-9
