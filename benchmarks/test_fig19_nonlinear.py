"""Figure 19: SP under non-linear monotone scoring functions (HOTEL*).

The paper's finding: SP's cost is essentially independent of the scoring
family, because BBS dominance pruning is function-agnostic and the number
of half-spaces to intersect stays comparable.
"""

import pytest

from repro.bench.figures import figure_19


@pytest.mark.benchmark(group="figure-19")
def test_figure_19(benchmark, scale, emit):
    results = benchmark.pedantic(figure_19, args=(scale,), rounds=1, iterations=1)
    emit(results)
    cpu, io = results[0], results[1]
    for row in io.rows:
        k, poly, mixed, linear = row
        # I/O within a small factor across scoring families (paper: equal
        # up to noise, since the BBS scan is function-independent).
        hi, lo = max(row[1:]), max(min(row[1:]), 1e-9)
        assert hi / lo < 3.0
    for row in cpu.rows:
        hi, lo = max(row[1:]), max(min(row[1:]), 1e-9)
        assert hi / lo < 10.0  # same order of magnitude
