"""Shared fixtures for the benchmark suite.

Benchmarks run at the ``smoke`` scale so ``pytest benchmarks/
--benchmark-only`` terminates in minutes; the standalone harness
(``python -m repro.bench``) regenerates the figures at larger scales.
Each benchmark prints the paper-style table it produced, so the bench run
itself documents the reproduced series.
"""

from __future__ import annotations

import pytest

from repro.bench.config import SCALES


@pytest.fixture(scope="session")
def scale():
    return SCALES["smoke"]


def _emit(results) -> None:
    """Print the figure tables produced inside a benchmark."""
    from repro.bench.reporting import format_table

    for res in results:
        print()
        print(format_table(res.title, res.headers, res.rows))


@pytest.fixture(scope="session")
def emit():
    """Fixture handing benchmarks the table printer (avoids importing the
    benchmarks directory as a package, which plain ``pytest benchmarks/``
    does not put on sys.path)."""
    return _emit
