"""Figure 16: effect of dataset cardinality (IND, d=4).

The paper's finding: FP scales much better with n — its I/O advantage over
SP/CP grows with cardinality.
"""

import pytest

from repro.bench.figures import figure_16


@pytest.mark.benchmark(group="figure-16")
def test_figure_16(benchmark, scale, emit):
    results = benchmark.pedantic(figure_16, args=(scale,), rounds=1, iterations=1)
    emit(results)
    cpu, io = results[0], results[1]
    for row in io.rows:
        n, cp, sp, fp = row
        assert fp <= sp + 1e-9
    # I/O cost grows with n for SP/CP; FP stays far below at the top end.
    assert io.rows[-1][2] > io.rows[0][2] * 0.5
    assert io.rows[-1][3] < io.rows[-1][2]
    # CPU: FP at the largest n beats SP (paper: 2.8-16.5x).
    assert cpu.rows[-1][3] < cpu.rows[-1][2]
