"""Figure 17: effect of k on the real-data surrogates (HOTEL*, HOUSE*)."""

import pytest

from repro.bench.figures import figure_17


@pytest.mark.benchmark(group="figure-17")
def test_figure_17(benchmark, scale, emit):
    results = benchmark.pedantic(figure_17, args=(scale,), rounds=1, iterations=1)
    emit(results)
    by_name = {r.figure: r for r in results}
    for ds in ("HOTEL", "HOUSE"):
        io = by_name[f"17-{ds}-io"]
        for row in io.rows:
            k, cp, sp, fp = row
            # SP and CP share the same BBS I/O (footnote 9 of the paper).
            assert cp == pytest.approx(sp)
            assert fp <= sp + 1e-9
        cpu = by_name[f"17-{ds}-cpu"]
        # CPU time grows with k overall (larger T; more phase-1 planes).
        assert sum(cpu.rows[-1][1:]) > 0
