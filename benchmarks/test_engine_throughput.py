"""Engine throughput: the serving layer under a Zipf-clustered stream.

Not a paper figure — this benchmarks the system of Section 1: a
``GIREngine`` absorbing query traffic, serving repeats from cached GIRs.
Emits the JSON report (hit rate, p50/p95 latency, pages per 1k queries)
next to this file so successive runs can be diffed.
"""

import json
from pathlib import Path

import pytest

from repro.bench.engine_bench import EngineBenchConfig, run_engine_benchmark

REPORT_PATH = Path(__file__).resolve().parent / "engine_throughput_pytest.json"


@pytest.mark.benchmark(group="engine")
def test_engine_throughput(benchmark):
    config = EngineBenchConfig(n=4_000, d=3, k=10, queries=150, clusters=6)
    payload = benchmark.pedantic(
        run_engine_benchmark,
        kwargs={"config": config, "out_path": REPORT_PATH},
        rounds=1,
        iterations=1,
    )
    print()
    print(json.dumps(payload, indent=2))

    assert payload["queries"] == 150
    assert 0.0 <= payload["hit_rate"] <= 1.0
    assert payload["latency_p50_ms"] <= payload["latency_p95_ms"]
    assert payload["pages_per_1k_queries"] >= 0
    # Zipf-clustered traffic must actually exercise the cache.
    assert payload["full_hits"] > 0

    # Cache-scan section: at 128 cached entries the batched lookup must
    # answer identically to the per-entry scan and beat it (CI gates on
    # the same fields in the uploaded JSON).
    cache_scan = payload["cache_scan"]
    assert cache_scan["entries"] == 128
    assert cache_scan["answers_match"]
    assert cache_scan["speedup"] > 1.0
    assert cache_scan["speedup_vectorized"] > 1.0

    # Cache-admission section: the grid-signature prescreen must reject
    # certain misses ≥5× faster than the per-entry scan at 128 entries
    # with byte-identical answers on every path (grid / no-grid / scan,
    # active kernels / numpy fallbacks), and the cost-aware eviction
    # policy must match LRU's hit rate on the stationary Zipf stream and
    # strictly beat it once the hot spot drifts.
    admission = payload["cache_admission"]
    assert admission["entries"] == 128
    assert admission["miss_speedup_vs_scan"] >= 5.0
    assert admission["miss_answers_match"]
    assert admission["answers_match"]
    assert admission["kernels_match_fallback"]
    assert admission["grid_negative_rate"] > 0.5
    eviction = admission["eviction"]
    assert eviction["zipf"]["cost"]["hit_rate"] >= eviction["zipf"]["lru"]["hit_rate"]
    assert eviction["drift"]["cost"]["hit_rate"] > eviction["drift"]["lru"]["hit_rate"]
    # The policies actually evicted through their own counters.
    assert eviction["drift"]["cost"]["cost_evictions"] > 0
    assert eviction["drift"]["cost"]["lru_evictions"] == 0
    assert eviction["drift"]["lru"]["lru_evictions"] > 0

    saved = json.loads(REPORT_PATH.read_text())
    assert saved["hit_rate"] == payload["hit_rate"]
    assert saved["config"]["queries"] == 150
    assert saved["cache_admission"]["miss_speedup_vs_scan"] >= 5.0
