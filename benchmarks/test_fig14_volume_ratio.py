"""Figure 14: the GIR-volume sensitivity measure.

Regenerates the ratio of GIR volume to query-space volume versus d
(synthetic families, 14a) and versus k (real-data surrogates, 14b), and
asserts the paper's shapes: exponential decay with d, COR largest,
decreasing in k.
"""

import math

import pytest

from repro.bench.figures import figure_14


@pytest.mark.benchmark(group="figure-14")
def test_figure_14(benchmark, scale, emit):
    results = benchmark.pedantic(figure_14, args=(scale,), rounds=1, iterations=1)
    emit(results)
    by_d, by_k = results[0], results[1]

    # 14(a): volume ratio decays steeply with d; COR is the largest family.
    for col in (1, 2, 3):
        series = [row[col] for row in by_d.rows]
        assert series[-1] < series[0]
    for row in by_d.rows:
        d, ind, cor, anti = row
        assert cor >= ind * 0.5  # COR consistently at/above IND (paper: above)

    # 14(b): larger k ⇒ more ordering constraints ⇒ smaller GIR.
    for col in (1, 2):
        series = [row[col] for row in by_k.rows if not math.isnan(row[col])]
        assert series[-1] < series[0]
