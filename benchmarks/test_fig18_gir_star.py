"""Figure 18: order-insensitive GIR*, effect of cardinality (IND, d=4).

Same trends as Figure 16, at uniformly higher cost since several result
records must be defended against the non-results (Section 7.1).
"""

import pytest

from repro.bench.figures import figure_16, figure_18


@pytest.mark.benchmark(group="figure-18")
def test_figure_18(benchmark, scale, emit):
    results = benchmark.pedantic(figure_18, args=(scale,), rounds=1, iterations=1)
    emit(results)
    cpu, io = results[0], results[1]
    for row in io.rows:
        n, cp, sp, fp = row
        assert fp <= sp + 1e-9

    # GIR* costs at least as much as the order-sensitive GIR (more
    # defenders per query) — compare SP CPU at the largest n.
    plain = figure_16(scale, seed=7)  # same seed as figure_18 uses
    assert cpu.rows[-1][2] >= 0.5 * plain[0].rows[-1][2]
