"""Tests for the synthetic generators and real-data surrogates."""

import numpy as np
import pytest

from repro.data.real import HOTEL_N, HOUSE_N, hotel_surrogate, house_surrogate
from repro.data.synthetic import anticorrelated, correlated, independent, make_synthetic


class TestIndependent:
    def test_shape_and_range(self):
        ds = independent(500, 3, seed=1)
        assert ds.n == 500 and ds.d == 3
        assert ds.points.min() >= 0.0 and ds.points.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(independent(50, 2, seed=4).points, independent(50, 2, seed=4).points)

    def test_seeds_differ(self):
        assert not np.array_equal(independent(50, 2, seed=4).points, independent(50, 2, seed=5).points)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            independent(0, 3)
        with pytest.raises(ValueError):
            independent(10, 0)

    def test_roughly_uniform_mean(self):
        ds = independent(20_000, 2, seed=2)
        assert abs(ds.points.mean() - 0.5) < 0.02


class TestCorrelated:
    def test_positive_pairwise_correlation(self):
        ds = correlated(10_000, 3, seed=3)
        corr = np.corrcoef(ds.points.T)
        off_diag = corr[np.triu_indices(3, k=1)]
        assert (off_diag > 0.8).all()

    def test_range(self):
        ds = correlated(5_000, 4, seed=3)
        assert ds.points.min() >= 0.0 and ds.points.max() <= 1.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            correlated(100, 2, spread=-0.1)
        with pytest.raises(ValueError):
            correlated(100, 2, level_sigma=0.0)


class TestAnticorrelated:
    def test_negative_pairwise_correlation(self):
        ds = anticorrelated(10_000, 2, seed=3)
        corr = np.corrcoef(ds.points.T)[0, 1]
        assert corr < -0.3

    def test_sum_concentrated(self):
        """ANTI coordinate sums concentrate far more tightly than IND's."""
        d = 4
        anti = anticorrelated(5_000, d, seed=3)
        ind = independent(5_000, d, seed=3)
        assert anti.points.sum(axis=1).std() < 0.6 * ind.points.sum(axis=1).std()
        assert abs(anti.points.sum(axis=1).mean() - d / 2) < 0.15 * d

    def test_one_dimensional_fallback(self):
        ds = anticorrelated(100, 1, seed=3)
        assert ds.d == 1

    def test_wide_skyline(self):
        """ANTI must produce far more skyline records than COR (Figure 6)."""
        from repro.query.linear_scan import scan_skyline

        anti = anticorrelated(2_000, 3, seed=5)
        cor = correlated(2_000, 3, seed=5)
        assert len(scan_skyline(anti.points)) > 5 * len(scan_skyline(cor.points))


class TestDispatch:
    @pytest.mark.parametrize("family", ["IND", "COR", "ANTI", "ind", "AnTi"])
    def test_known_families(self, family):
        ds = make_synthetic(family, 100, 2, seed=0)
        assert ds.n == 100

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown synthetic family"):
            make_synthetic("ZIPF", 100, 2)


class TestRealSurrogates:
    def test_house_shape(self):
        ds = house_surrogate(n=2_000, seed=1)
        assert ds.d == 6
        assert ds.n == 2_000

    def test_house_default_cardinality_matches_paper(self):
        assert HOUSE_N == 315_265

    def test_hotel_default_cardinality_matches_paper(self):
        assert HOTEL_N == 418_843

    def test_hotel_shape(self):
        ds = hotel_surrogate(n=2_000, seed=1)
        assert ds.d == 4
        assert ds.n == 2_000

    def test_house_positive_correlation(self):
        """Expenditures correlate through household affluence."""
        ds = house_surrogate(n=20_000, seed=1)
        corr = np.corrcoef(ds.points.T)
        off_diag = corr[np.triu_indices(6, k=1)]
        assert off_diag.mean() > 0.2

    def test_hotel_price_tracks_stars(self):
        ds = hotel_surrogate(n=20_000, seed=1)
        stars, price = ds.points[:, 0], ds.points[:, 1]
        assert np.corrcoef(stars, price)[0, 1] > 0.4

    def test_surrogates_normalised(self):
        for ds in (house_surrogate(n=500), hotel_surrogate(n=500)):
            assert ds.points.min() >= 0.0 and ds.points.max() <= 1.0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            house_surrogate(n=0)
        with pytest.raises(ValueError):
            hotel_surrogate(n=-5)
