"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset


class TestConstruction:
    def test_basic(self):
        ds = Dataset([[0.1, 0.2], [0.3, 0.4]])
        assert ds.n == 2
        assert ds.d == 2
        assert len(ds) == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="lie in"):
            Dataset([[0.1, 1.5]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="lie in"):
            Dataset([[-0.2, 0.5]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            Dataset(np.empty((0, 3)))

    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError, match="non-empty"):
            Dataset(np.empty((3, 0)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            Dataset(np.array([0.1, 0.2]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            Dataset([[0.1, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            Dataset([[0.1, float("inf")]])

    def test_points_are_immutable(self):
        ds = Dataset([[0.1, 0.2]])
        with pytest.raises(ValueError):
            ds.points[0, 0] = 0.9

    def test_input_array_not_aliased(self):
        raw = np.array([[0.1, 0.2]])
        ds = Dataset(raw)
        raw[0, 0] = 0.9
        assert ds.points[0, 0] == 0.1

    def test_tiny_numerical_overshoot_is_clipped(self):
        ds = Dataset([[1.0 + 1e-12, 0.0 - 1e-12]])
        assert ds.points.max() <= 1.0
        assert ds.points.min() >= 0.0


class TestAccessors:
    def test_record_and_getitem(self):
        ds = Dataset([[0.1, 0.2], [0.3, 0.4]])
        assert np.allclose(ds.record(1), [0.3, 0.4])
        assert np.allclose(ds[0], [0.1, 0.2])

    def test_scores(self):
        ds = Dataset([[0.5, 1.0], [1.0, 0.0]])
        scores = ds.scores(np.array([0.2, 0.6]))
        assert np.allclose(scores, [0.7, 0.2])

    def test_scores_shape_mismatch(self):
        ds = Dataset([[0.5, 1.0]])
        with pytest.raises(ValueError, match="weight vector"):
            ds.scores(np.array([0.2, 0.6, 0.1]))


class TestFromRaw:
    def test_minmax_normalisation(self):
        ds = Dataset.from_raw(np.array([[10.0, -5.0], [20.0, 5.0]]))
        assert np.allclose(ds.points, [[0.0, 0.0], [1.0, 1.0]])

    def test_constant_attribute_maps_to_half(self):
        ds = Dataset.from_raw(np.array([[3.0, 1.0], [3.0, 2.0]]))
        assert np.allclose(ds.points[:, 0], 0.5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            Dataset.from_raw(np.array([1.0, 2.0]))


class TestSubset:
    def test_subset_renumbers(self):
        ds = Dataset([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
        sub = ds.subset(np.array([2, 0]))
        assert sub.n == 2
        assert np.allclose(sub[0], [0.5, 0.6])
        assert np.allclose(sub[1], [0.1, 0.2])

    def test_subset_name(self):
        ds = Dataset([[0.1, 0.2]], name="base")
        assert "base" in ds.subset(np.array([0])).name
