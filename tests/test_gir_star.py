"""Tests for the order-insensitive GIR* (Section 7.1)."""

import numpy as np
import pytest

from repro.baselines.exhaustive import exhaustive_gir
from repro.core.gir import compute_gir
from repro.core.gir_star import compute_gir_star, prune_result_records
from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk
from repro.scoring import LinearScoring
from tests.conftest import random_query

METHODS = ["sp", "cp", "fp"]


def assert_same_region(a, b, msg=""):
    assert a.polytope.contains_polytope(b.polytope), f"{msg}: first ⊉ second"
    assert b.polytope.contains_polytope(a.polytope), f"{msg}: second ⊉ first"


class TestResultPruning:
    def test_dominators_pruned(self):
        # p0 dominates p1 => p0 prunable; p1, p2 survive.
        pts = np.array([[0.9, 0.9], [0.8, 0.8], [0.95, 0.1], [0.1, 0.2]])
        g = LinearScoring(2).transform(pts)
        surv = prune_result_records((0, 1, 2), pts, g)
        assert 0 not in surv
        assert set(surv) == {1, 2}

    def test_inner_hull_records_pruned(self):
        # p2 inside hull of {p0, p1, p3}: prunable.
        pts = np.array([[0.9, 0.1], [0.1, 0.9], [0.5, 0.52], [0.6, 0.6]])
        g = pts.copy()
        surv = prune_result_records((0, 1, 2, 3), pts, g)
        assert 2 not in surv

    def test_singleton_result(self):
        pts = np.array([[0.5, 0.5], [0.1, 0.1]])
        assert prune_result_records((0,), pts, pts) == [0]


@pytest.mark.parametrize("method", METHODS)
class TestAgainstOracle:
    def test_matches_exhaustive(self, small_ind_2d, rng, method):
        data, tree = small_ind_2d
        for _ in range(3):
            q = random_query(rng, 2)
            star = compute_gir_star(tree, data, q, 5, method=method)
            oracle = exhaustive_gir(data, q, 5, order_sensitive=False)
            assert_same_region(star, oracle, f"star-{method}")

    def test_matches_exhaustive_4d(self, small_ind_4d, rng, method):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        star = compute_gir_star(tree, data, q, 6, method=method)
        oracle = exhaustive_gir(data, q, 6, order_sensitive=False)
        assert_same_region(star, oracle, f"star-{method}-4d")

    def test_anti(self, small_anti_3d, rng, method):
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        star = compute_gir_star(tree, data, q, 8, method=method)
        oracle = exhaustive_gir(data, q, 8, order_sensitive=False)
        assert_same_region(star, oracle, f"star-{method}-anti")


class TestSemantics:
    def test_gir_star_contains_gir(self, small_ind_4d, rng):
        """Definition 2 is looser than Definition 1: GIR ⊆ GIR*."""
        data, tree = small_ind_4d
        for _ in range(3):
            q = random_query(rng, 4)
            gir = compute_gir(tree, data, q, 6, method="fp")
            star = compute_gir_star(tree, data, q, 6, method="fp")
            assert star.polytope.contains_polytope(gir.polytope)
            assert star.volume() >= gir.volume() - 1e-12

    def test_sampled_vectors_preserve_composition(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        star = compute_gir_star(tree, data, q, 5, method="fp")
        comp = set(star.topk.ids)
        for q2 in star.polytope.sample(40, rng):
            if (q2 <= 1e-9).all():
                continue
            assert set(scan_topk(data.points, q2, 5).ids) == comp

    def test_order_may_change_inside_star(self, rng):
        """Find a case where GIR* strictly exceeds GIR (order flips)."""
        data = independent(300, 2, seed=51)
        tree = bulk_load_str(data)
        found = False
        for _ in range(20):
            q = random_query(rng, 2)
            gir = compute_gir(tree, data, q, 5)
            star = compute_gir_star(tree, data, q, 5)
            if star.volume() > gir.volume() * (1 + 1e-6) + 1e-12:
                found = True
                break
        assert found, "GIR* never exceeded GIR across 20 queries"

    def test_methods_agree(self, small_anti_3d, rng):
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        vols = [
            compute_gir_star(tree, data, q, 5, method=m).volume() for m in METHODS
        ]
        assert max(vols) - min(vols) <= 1e-12 + 1e-6 * max(vols)

    def test_query_inside(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        assert compute_gir_star(tree, data, q, 6).contains(q)

    def test_active_result_ids_subset(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        star = compute_gir_star(tree, data, q, 10)
        assert set(star.active_result_ids) <= set(star.topk.ids)

    def test_unknown_method(self, small_ind_2d):
        data, tree = small_ind_2d
        with pytest.raises(ValueError):
            compute_gir_star(tree, data, np.array([0.5, 0.5]), 5, method="zz")
