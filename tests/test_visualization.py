"""Tests for GIR visualisation aids (MAH and interactive projection)."""

import numpy as np
import pytest

from repro.baselines.lir import lir_intervals_scan
from repro.core.gir import compute_gir
from repro.core.visualization import interactive_projection, maximal_axis_rectangle
from repro.query.linear_scan import scan_topk
from tests.conftest import random_query


class TestMAH:
    def test_contains_query(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        gir = compute_gir(tree, data, q, 5)
        mah = maximal_axis_rectangle(gir)
        assert mah.contains(q)

    def test_inside_gir(self, small_ind_4d, rng):
        """Every corner of the MAH must satisfy all GIR constraints."""
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6)
        mah = maximal_axis_rectangle(gir)
        d = 4
        for bits in range(2**d):
            corner = np.array(
                [mah.lo[i] if bits & (1 << i) else mah.hi[i] for i in range(d)]
            )
            assert gir.contains(corner, tol=1e-7), corner

    def test_positive_volume_for_interior_query(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        gir = compute_gir(tree, data, q, 5)
        if gir.polytope.chebyshev_center()[1] > 1e-6:
            assert maximal_axis_rectangle(gir).volume() > 0

    def test_result_stable_across_mah(self, small_ind_2d, rng):
        """Sampled vectors inside the MAH preserve the top-k (MAH ⊆ GIR)."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        k = 5
        gir = compute_gir(tree, data, q, k)
        mah = maximal_axis_rectangle(gir)
        for _ in range(30):
            probe = mah.lo + rng.random(2) * (mah.hi - mah.lo)
            if probe.max() <= 1e-9:
                continue
            assert scan_topk(data.points, probe, k).ids == gir.topk.ids

    def test_intervals_accessor(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        gir = compute_gir(tree, data, random_query(rng, 2), 5)
        ivs = maximal_axis_rectangle(gir).intervals()
        assert len(ivs) == 2
        for lo, hi in ivs:
            assert lo <= hi


class TestInteractiveProjection:
    def test_matches_lir_scan_at_query(self, small_ind_2d, rng):
        """Section 7.3: the projections at q equal the LIRs of [24]."""
        data, tree = small_ind_2d
        for _ in range(3):
            q = random_query(rng, 2)
            gir = compute_gir(tree, data, q, 5)
            proj = interactive_projection(gir)
            scan = lir_intervals_scan(data, q, 5)
            for (a, b), (c, d_) in zip(proj, scan):
                assert a == pytest.approx(c, abs=1e-9)
                assert b == pytest.approx(d_, abs=1e-9)

    def test_matches_lir_scan_4d(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 8)
        proj = interactive_projection(gir)
        scan = lir_intervals_scan(data, q, 8)
        for (a, b), (c, d_) in zip(proj, scan):
            assert a == pytest.approx(c, abs=1e-9)
            assert b == pytest.approx(d_, abs=1e-9)

    def test_intervals_contain_current_weight(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6)
        for axis, (lo, hi) in enumerate(interactive_projection(gir)):
            assert lo - 1e-9 <= q[axis] <= hi + 1e-9

    def test_reprojection_after_shift(self, small_ind_2d, rng):
        """Shift q inside the GIR; new projections still bracket it."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        gir = compute_gir(tree, data, q, 5)
        samples = gir.polytope.sample(5, rng)
        for q2 in samples:
            for axis, (lo, hi) in enumerate(interactive_projection(gir, at=q2)):
                assert lo - 1e-7 <= q2[axis] <= hi + 1e-7

    def test_interval_edges_preserve_result(self, small_ind_2d, rng):
        """Weights moved to just inside an interval edge keep the result."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        k = 5
        gir = compute_gir(tree, data, q, k)
        for axis, (lo, hi) in enumerate(interactive_projection(gir)):
            for edge in (lo, hi):
                probe = q.copy()
                probe[axis] = np.clip(edge, 0, 1)
                probe[axis] = q[axis] + (probe[axis] - q[axis]) * (1 - 1e-9)
                assert scan_topk(data.points, probe, k).ids == gir.topk.ids
