"""Tests for the baselines: exhaustive GIR, STB ball, scanned LIRs."""

import numpy as np
import pytest

from repro.baselines.exhaustive import exhaustive_gir
from repro.baselines.lir import lir_intervals_scan
from repro.baselines.stb import stb_radius
from repro.core.gir import compute_gir
from repro.query.linear_scan import scan_topk
from tests.conftest import random_query


class TestExhaustive:
    def test_query_inside(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        assert exhaustive_gir(data, q, 5).contains(q)

    def test_halfspace_counts(self, small_ind_2d, rng):
        """Exactly n − 1 conditions: k − 1 order + (n − k) separation."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        ex = exhaustive_gir(data, q, 5)
        kinds = [h.kind for h in ex.halfspaces]
        assert kinds.count("order") == 4
        assert kinds.count("separation") == data.n - 5
        assert len(ex.halfspaces) == data.n - 1

    def test_order_insensitive_counts(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        ex = exhaustive_gir(data, q, 5, order_sensitive=False)
        kinds = [h.kind for h in ex.halfspaces]
        assert kinds.count("order") == 0
        assert kinds.count("separation") == 5 * (data.n - 5)

    def test_sampled_vectors_preserve_result(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        ex = exhaustive_gir(data, q, 5)
        for q2 in ex.polytope.sample(20, rng):
            if (q2 <= 1e-9).all():
                continue
            assert scan_topk(data.points, q2, 5).ids == ex.topk.ids


class TestSTB:
    def test_ball_inside_gir(self, small_ind_2d, rng):
        """STB ⊆ GIR: every point within the radius preserves the result."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        r = stb_radius(data, q, 5)
        assert r > 0
        ref = scan_topk(data.points, q, 5).ids
        for _ in range(50):
            direction = rng.normal(size=2)
            direction /= np.linalg.norm(direction)
            probe = q + direction * r * 0.999
            if (probe < 0).any() or (probe > 1).any():
                continue
            assert scan_topk(data.points, probe, 5).ids == ref

    def test_radius_is_tight(self, small_ind_2d, rng):
        """Some direction at (1+ε)·r changes the result or exits the space."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        k = 5
        r = stb_radius(data, q, k)
        ref = scan_topk(data.points, q, k).ids
        changed = False
        for angle in np.linspace(0, 2 * np.pi, 720, endpoint=False):
            probe = q + np.array([np.cos(angle), np.sin(angle)]) * r * 1.01
            if (probe < 0).any() or (probe > 1).any():
                changed = True  # ball clipped by the query-space wall
                break
            if scan_topk(data.points, probe, k).ids != ref:
                changed = True
                break
        assert changed

    def test_radius_at_most_chebyshev_diameter(self, small_ind_4d, rng):
        """The q-centred ball cannot beat the largest inscribed ball."""
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6)
        _, cheb_r = gir.polytope.chebyshev_center()
        assert stb_radius(data, q, 6) <= cheb_r + 1e-9

    def test_matches_min_slack_of_gir(self, small_ind_2d, rng):
        """STB radius == min normalised slack over the GIR's constraints."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        gir = compute_gir(tree, data, q, 5, method="sp")
        r = stb_radius(data, q, 5)
        norms = np.linalg.norm(gir.polytope.A, axis=1)
        slack = (gir.polytope.b - gir.polytope.A @ q) / norms
        assert r == pytest.approx(float(slack.min()), abs=1e-9)


class TestLIRScan:
    def test_intervals_bracket_query(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        for axis, (lo, hi) in enumerate(lir_intervals_scan(data, q, 6)):
            assert lo - 1e-9 <= q[axis] <= hi + 1e-9

    def test_interior_preserves_result(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        k = 5
        ref = scan_topk(data.points, q, k).ids
        for axis, (lo, hi) in enumerate(lir_intervals_scan(data, q, k)):
            for t in np.linspace(lo + 1e-9, hi - 1e-9, 7):
                probe = q.copy()
                probe[axis] = t
                assert scan_topk(data.points, probe, k).ids == ref

    def test_outside_changes_result(self, small_ind_2d, rng):
        """Just past a non-trivial LIR edge the result must change."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        k = 5
        ref = scan_topk(data.points, q, k).ids
        for axis, (lo, hi) in enumerate(lir_intervals_scan(data, q, k)):
            for edge, step in ((lo, -1e-6), (hi, 1e-6)):
                probe_val = edge + step
                if not 0.0 < probe_val < 1.0:
                    continue  # interval clipped by query space: nothing out there
                probe = q.copy()
                probe[axis] = probe_val
                assert scan_topk(data.points, probe, k).ids != ref
