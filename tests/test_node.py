"""Tests for node layout and entry semantics."""

import numpy as np
import pytest

from repro.index.mbb import MBB
from repro.index.node import Node, NodeEntry, node_capacities


class TestNodeEntry:
    def test_leaf_entry_point_accessor(self):
        p = np.array([0.3, 0.7])
        e = NodeEntry(MBB.of_point(p), 42)
        assert np.array_equal(e.point, p)
        assert e.child_id == 42


class TestNode:
    def test_leaf_flag(self):
        assert Node(0, level=0).is_leaf
        assert not Node(0, level=1).is_leaf

    def test_mbb_union_of_entries(self):
        node = Node(0, level=0)
        node.entries.append(NodeEntry(MBB.of_point(np.array([0.1, 0.8])), 0))
        node.entries.append(NodeEntry(MBB.of_point(np.array([0.6, 0.2])), 1))
        box = node.mbb()
        assert np.allclose(box.lo, [0.1, 0.2])
        assert np.allclose(box.hi, [0.6, 0.8])

    def test_mbb_of_empty_node_raises(self):
        with pytest.raises(ValueError, match="no entries"):
            Node(0, level=0).mbb()

    def test_len(self):
        node = Node(0, level=0)
        node.entries.append(NodeEntry(MBB.of_point(np.array([0.1, 0.8])), 0))
        assert len(node) == 1


class TestCapacityArithmetic:
    def test_internal_capacity_below_leaf(self):
        """Internal entries store a full MBB, so fan-out is smaller."""
        for d in range(2, 9):
            leaf, internal = node_capacities(4096, d)
            assert internal <= leaf

    def test_scaling_with_page_size(self):
        small_leaf, _ = node_capacities(2048, 4)
        big_leaf, _ = node_capacities(8192, 4)
        assert big_leaf > 2 * small_leaf * 0.9  # roughly proportional
