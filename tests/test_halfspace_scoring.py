"""Tests for half-space provenance and scoring functions."""

import numpy as np
import pytest

from repro.geometry.halfspace import Halfspace, order_halfspace, separation_halfspace
from repro.scoring import (
    LinearScoring,
    MonotoneScoring,
    mixed_scoring,
    polynomial_scoring,
)


class TestHalfspace:
    def test_order_halfspace_normal(self):
        hs = order_halfspace(np.array([0.6, 0.5]), np.array([0.5, 0.48]), 1, 2)
        assert np.allclose(hs.normal, [0.1, 0.02])
        assert hs.kind == "order"
        assert (hs.upper, hs.lower) == (1, 2)

    def test_separation_halfspace(self):
        hs = separation_halfspace(np.array([0.6, 0.5]), np.array([0.7, 0.1]), 4, 9)
        assert np.allclose(hs.normal, [-0.1, 0.4])
        assert hs.kind == "separation"

    def test_virtual_flag(self):
        hs = separation_halfspace(
            np.array([0.6, 0.5]), np.array([0.6, 0.0]), 4, None, virtual=True
        )
        assert hs.kind == "virtual"
        assert "boundary" in hs.describe()

    def test_satisfied_and_slack(self):
        hs = order_halfspace(np.array([1.0, 0.0]), np.array([0.0, 1.0]), 0, 1)
        assert hs.satisfied(np.array([0.7, 0.3]))
        assert not hs.satisfied(np.array([0.3, 0.7]))
        assert hs.slack(np.array([0.7, 0.3])) == pytest.approx(0.4)

    def test_paper_example_figure3(self):
        """The running example of Figure 3: half-plane coefficients."""
        p1, p2 = np.array([0.54, 0.5]), np.array([0.5, 0.48])
        p3, p4 = np.array([0.52, 0.35]), np.array([0.4, 0.4])
        assert np.allclose(order_halfspace(p1, p2, 1, 2).normal, [0.04, 0.02])
        assert np.allclose(order_halfspace(p2, p3, 2, 3).normal, [-0.02, 0.13])
        assert np.allclose(order_halfspace(p3, p4, 3, 4).normal, [0.12, -0.05])

    def test_describe_kinds(self):
        o = order_halfspace(np.array([1.0, 0.0]), np.array([0.0, 1.0]), 3, 7)
        s = separation_halfspace(np.array([1.0, 0.0]), np.array([0.0, 1.0]), 3, 7)
        assert "reorder" in o.describe()
        assert "replaces" in s.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Halfspace(normal=np.array([1.0]), kind="nonsense", upper=0, lower=1)

    def test_normal_immutable(self):
        hs = order_halfspace(np.array([1.0, 0.0]), np.array([0.0, 1.0]), 0, 1)
        with pytest.raises(ValueError):
            hs.normal[0] = 5.0


class TestLinearScoring:
    def test_identity_transform(self, rng):
        pts = rng.random((10, 3))
        scorer = LinearScoring(3)
        assert np.array_equal(scorer.transform(pts), pts)

    def test_score_matches_dot(self, rng):
        pts = rng.random((10, 3))
        w = rng.random(3)
        assert np.allclose(LinearScoring(3).score(pts, w), pts @ w)

    def test_single_point_score(self):
        assert LinearScoring(2).score(np.array([0.5, 0.5]), np.array([1.0, 1.0])) == 1.0


class TestMonotoneScoring:
    def test_polynomial_paper_function(self):
        """Figure 19's polynomial: w1x1^4 + w2x2^3 + w3x3^2 + w4x4."""
        scorer = polynomial_scoring([4, 3, 2, 1])
        p = np.array([0.5, 0.5, 0.5, 0.5])
        w = np.ones(4)
        expected = 0.5**4 + 0.5**3 + 0.5**2 + 0.5
        assert scorer.score(p, w) == pytest.approx(expected)

    def test_mixed_function(self):
        scorer = mixed_scoring()
        p = np.array([0.5, 0.5, 0.5, 0.5])
        w = np.ones(4)
        expected = 0.25 + np.exp(0.5) + np.log1p(0.5) + np.sqrt(0.5)
        assert scorer.score(p, w) == pytest.approx(expected)

    def test_rejects_decreasing_component(self):
        with pytest.raises(ValueError, match="monotone"):
            MonotoneScoring([lambda x: -x, lambda x: x])

    def test_rejects_nonelementwise_component(self):
        with pytest.raises(ValueError, match="elementwise"):
            MonotoneScoring([lambda x: np.array([1.0]), lambda x: x])

    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ValueError):
            polynomial_scoring([2, 0])

    def test_monotonicity_preserves_dominance_order(self, rng):
        """p dominates p' ⇒ g(p) dominates-or-equals g(p')."""
        scorer = mixed_scoring()
        p = rng.random(4)
        q = np.clip(p - rng.random(4) * 0.3, 0, 1)
        gp, gq = scorer.transform_one(p), scorer.transform_one(q)
        assert (gp >= gq - 1e-12).all()

    def test_score_linear_in_weights(self, rng):
        """S(p, q) = w · g(p): doubling weights doubles scores."""
        scorer = polynomial_scoring([2, 3])
        pts = rng.random((5, 2))
        w = rng.random(2)
        assert np.allclose(scorer.score(pts, 2 * w), 2 * scorer.score(pts, w))
