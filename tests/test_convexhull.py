"""Tests for the from-scratch incremental convex hull (vs scipy's qhull)."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull

from repro.geometry.convexhull import (
    DegenerateInputError,
    IncrementalHull,
    hull_vertex_ids,
    qhull_facet_count,
)


def qhull_vertices(points: np.ndarray) -> set[int]:
    return set(int(v) for v in ConvexHull(points).vertices)


class TestIncrementalHull2D:
    def test_square(self):
        pts = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [0.5, 0.5]], dtype=float)
        hull = IncrementalHull(pts)
        assert hull.vertex_ids() == {0, 1, 2, 3}
        assert hull.facet_count() == 4

    def test_interior_points_excluded(self, rng):
        pts = np.vstack([np.array([[0, 0], [4, 0], [0, 4], [4, 4.0]]), rng.random((50, 2)) + 1.0])
        hull = IncrementalHull(pts)
        assert hull.vertex_ids() == {0, 1, 2, 3}

    @pytest.mark.parametrize("n", [10, 60, 200])
    def test_matches_qhull_random(self, rng, n):
        pts = rng.random((n, 2))
        hull = IncrementalHull(pts)
        assert hull.vertex_ids() == qhull_vertices(pts)

    def test_contains(self, rng):
        pts = rng.random((60, 2))
        hull = IncrementalHull(pts)
        assert hull.contains(pts.mean(axis=0))
        assert not hull.contains(np.array([5.0, 5.0]))


class TestIncrementalHullHighD:
    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_matches_qhull(self, rng, d):
        pts = rng.random((80, d))
        hull = IncrementalHull(pts)
        assert hull.vertex_ids() == qhull_vertices(pts)

    def test_simplex_plus_interior(self, rng):
        d = 3
        corners = np.vstack([np.zeros(d), np.eye(d) * 3])
        interior = rng.dirichlet(np.ones(d + 1), size=30) @ corners
        pts = np.vstack([corners, interior * 0.9 + 0.05])
        hull = IncrementalHull(pts)
        assert hull.vertex_ids() == {0, 1, 2, 3}

    def test_facet_count_cube(self):
        """A 3-cube hull has 12 simplicial facets (2 triangles per face)."""
        corners = np.array(
            [[x, y, z] for x in (0, 1) for y in (0, 1) for z in (0, 1)], dtype=float
        )
        hull = IncrementalHull(corners)
        assert hull.vertex_ids() == set(range(8))
        assert hull.facet_count() == 12

    def test_every_point_below_every_facet(self, rng):
        """Hull validity: no input point lies strictly above any facet."""
        pts = rng.random((60, 3))
        hull = IncrementalHull(pts)
        for facet in hull.facets.values():
            assert (pts @ facet.normal <= facet.offset + 1e-9).all()


class TestDegenerate:
    def test_too_few_points(self):
        with pytest.raises(DegenerateInputError):
            IncrementalHull(np.array([[0.0, 0.0], [1.0, 1.0]]))

    def test_collinear(self):
        pts = np.array([[0, 0], [1, 1], [2, 2], [3, 3]], dtype=float)
        with pytest.raises(DegenerateInputError):
            IncrementalHull(pts)

    def test_coplanar_in_3d(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]], dtype=float)
        with pytest.raises(DegenerateInputError):
            IncrementalHull(pts)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            IncrementalHull(np.array([[0.0], [1.0], [2.0]]))


class TestQhullHelpers:
    def test_vertex_ids_match_qhull(self, rng):
        pts = rng.random((100, 3))
        assert hull_vertex_ids(pts) == qhull_vertices(pts)

    def test_small_input_returns_all(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert hull_vertex_ids(pts) == {0, 1}

    def test_degenerate_fallback_returns_all(self):
        pts = np.array([[0, 0], [1, 1], [2, 2], [3, 3], [4, 4]], dtype=float)
        got = hull_vertex_ids(pts)
        assert got == {0, 1, 2, 3, 4}  # safe over-approximation

    def test_facet_count_square(self):
        pts = np.array([[0, 0], [1, 0], [0, 1], [1, 1]], dtype=float)
        assert qhull_facet_count(pts) == 4

    def test_facet_counts_agree_with_own_hull(self, rng):
        pts = rng.random((50, 3))
        own = IncrementalHull(pts).facet_count()
        qh = qhull_facet_count(pts)
        # qhull merges coplanar facets only with default options on random
        # data both counts are simplicial and equal.
        assert own == qh
