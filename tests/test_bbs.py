"""Tests for BBS skyline computation."""

import numpy as np
import pytest

from repro.data.synthetic import anticorrelated, correlated, independent
from repro.index.bulkload import bulk_load_str
from repro.query.bbs import bbs_skyline, skyline_of_points
from repro.query.brs import brs_topk
from repro.query.linear_scan import scan_skyline
from tests.conftest import random_query


class TestInMemorySkyline:
    def test_simple(self):
        pts = np.array([[0.9, 0.1], [0.1, 0.9], [0.5, 0.5], [0.2, 0.2]])
        got = skyline_of_points(pts, [0, 1, 2, 3])
        assert set(got) == {0, 1, 2}

    def test_empty(self):
        assert skyline_of_points(np.empty((0, 2)), []) == []

    def test_subset_ids(self):
        pts = np.array([[0.9, 0.1], [0.1, 0.9], [0.95, 0.95], [0.05, 0.05]])
        got = skyline_of_points(pts, [0, 1, 3])  # exclude dominator 2
        assert set(got) == {0, 1}

    def test_matches_scan_random(self, rng):
        pts = rng.random((300, 3))
        got = set(skyline_of_points(pts, list(range(300))))
        assert got == scan_skyline(pts)

    def test_duplicates_both_kept(self):
        """Records equal in all dimensions do not dominate each other."""
        pts = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert set(skyline_of_points(pts, [0, 1])) == {0, 1}


class TestBBSFresh:
    @pytest.mark.parametrize("gen", [independent, anticorrelated, correlated])
    def test_matches_scan(self, gen, rng):
        data = gen(600, 3, seed=21)
        tree = bulk_load_str(data)
        got = bbs_skyline(tree, data.points, weights=np.ones(3))
        assert set(got) == scan_skyline(data.points)

    def test_with_exclusions(self, rng):
        data = independent(500, 2, seed=22)
        tree = bulk_load_str(data)
        exclude = set(range(0, 50))
        got = bbs_skyline(tree, data.points, weights=np.ones(2), exclude=exclude)
        assert set(got) == scan_skyline(data.points, exclude=exclude)
        assert not (set(got) & exclude)

    def test_requires_weights_without_run(self, small_ind_2d):
        data, tree = small_ind_2d
        with pytest.raises(ValueError, match="weights"):
            bbs_skyline(tree, data.points)


class TestBBSResume:
    """The paper's variant: resume from the BRS run (Section 5.1)."""

    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_skyline_of_nonresult_records(self, small_ind_4d, rng, k):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        run = brs_topk(tree, data.points, q, k)
        got = bbs_skyline(tree, data.points, run=run)
        expected = scan_skyline(data.points, exclude=set(run.result.ids))
        assert set(got) == expected

    def test_anti_skyline_resume(self, small_anti_3d, rng):
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        run = brs_topk(tree, data.points, q, 10)
        got = bbs_skyline(tree, data.points, run=run)
        assert set(got) == scan_skyline(data.points, exclude=set(run.result.ids))

    def test_zero_weight_query_resume(self, small_ind_2d):
        """Maxscore ordering stays dominance-compatible with zero weights."""
        data, tree = small_ind_2d
        q = np.array([0.7, 0.0])
        run = brs_topk(tree, data.points, q, 5)
        got = bbs_skyline(tree, data.points, run=run)
        assert set(got) == scan_skyline(data.points, exclude=set(run.result.ids))

    def test_resume_does_not_refetch_encountered(self, small_ind_2d, rng):
        """Resuming charges strictly fewer page reads than a fresh BBS."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        run = brs_topk(tree, data.points, q, 20, metered=False)

        tree.store.reset_meter()
        bbs_skyline(tree, data.points, run=run)
        resumed = tree.store.stats.page_reads

        tree.store.reset_meter()
        bbs_skyline(
            tree, data.points, weights=q, exclude=set(run.result.ids)
        )
        fresh = tree.store.stats.page_reads
        assert resumed <= fresh

    def test_run_heap_not_consumed(self, small_ind_2d, rng):
        """bbs_skyline drains a copy; the BRS run stays reusable."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        run = brs_topk(tree, data.points, q, 5)
        before = len(run.heap)
        bbs_skyline(tree, data.points, run=run)
        assert len(run.heap) == before
