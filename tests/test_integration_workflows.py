"""End-to-end integration tests combining several subsystems,
mirroring how the examples (and a real service) would use the library."""

import numpy as np
import pytest

from repro.core.caching import GIRCache
from repro.core.gir import compute_gir
from repro.core.gir_star import compute_gir_star
from repro.core.visualization import interactive_projection, maximal_axis_rectangle
from repro.data.real import hotel_surrogate, house_surrogate
from repro.data.synthetic import anticorrelated, correlated, independent
from repro.index.bulkload import bulk_load_str
from repro.index.rtree import RStarTree
from repro.query.brs import brs_topk
from repro.query.linear_scan import scan_topk
from repro.scoring import polynomial_scoring
from tests.conftest import random_query


class TestServiceWorkflow:
    """A recommendation service: query → GIR → UI bounds → cache → reuse."""

    def test_full_pipeline_hotel(self, rng):
        data = hotel_surrogate(n=5_000, seed=4)
        tree = bulk_load_str(data)
        cache = GIRCache()
        q = random_query(rng, 4)
        k = 10

        gir = compute_gir(tree, data, q, k, method="fp")
        assert gir.contains(q)

        # UI bounds are consistent: MAH ⊆ per-axis projections.
        mah = maximal_axis_rectangle(gir)
        proj = interactive_projection(gir)
        for (mlo, mhi), (plo, phi) in zip(mah.intervals(), proj):
            assert plo - 1e-7 <= mlo and mhi <= phi + 1e-7

        # Cache round-trip.
        cache.insert(gir)
        hit = cache.lookup(q, k)
        assert hit is not None and hit.ids == gir.topk.ids

        # Perturbation previews are consistent with reality.
        perts = gir.boundary_perturbations()
        assert all(len(p.new_order) == k for p in perts)

    def test_dynamic_index_workflow(self, rng):
        """Insert-built tree + deletions: the GIR machinery is agnostic."""
        pts = independent(600, 3, seed=6).points
        tree = RStarTree(3, leaf_capacity=16, internal_capacity=16)
        for rid, p in enumerate(pts):
            tree.insert(p, rid)
        q = random_query(rng, 3)
        gir = compute_gir(tree, pts, q, 5, method="fp")
        ref = scan_topk(pts, q, 5)
        assert gir.topk.ids == ref.ids
        for q2 in gir.polytope.sample(10, rng):
            if (q2 <= 1e-9).all():
                continue
            assert scan_topk(pts, q2, 5).ids == gir.topk.ids

    def test_gir_invalidation_after_update(self, rng):
        """After inserting a strong record, recomputation must reflect it.

        (The paper treats the dataset as static; this documents the
        recompute-on-update contract.)"""
        data = independent(500, 2, seed=8)
        tree = bulk_load_str(data)
        q = np.array([0.7, 0.6])
        gir_before = compute_gir(tree, data, q, 5)

        # Insert a record that immediately becomes the top-1.
        new_point = np.array([0.99, 0.99])
        tree.insert(new_point, 500)
        pts = np.vstack([data.points, new_point[None, :]])
        gir_after = compute_gir(tree, pts, q, 5)
        assert 500 in gir_after.topk.ids
        assert gir_after.topk.ids != gir_before.topk.ids


class TestCrossFamilyConsistency:
    @pytest.mark.parametrize("gen", [independent, correlated, anticorrelated])
    def test_volume_monotone_in_k(self, gen, rng):
        """More result records ⇒ more constraints ⇒ (weakly) smaller GIR."""
        data = gen(1_500, 3, seed=10)
        tree = bulk_load_str(data)
        q = random_query(rng, 3)
        vol_small = compute_gir(tree, data, q, 3).volume()
        vol_large = compute_gir(tree, data, q, 12).volume()
        assert vol_large <= vol_small + 1e-12

    def test_star_volume_monotone_in_k_house(self, rng):
        data = house_surrogate(n=3_000, seed=12)
        tree = bulk_load_str(data)
        q = random_query(rng, 6)
        v1 = compute_gir_star(tree, data, q, 3).volume()
        v2 = compute_gir_star(tree, data, q, 10).volume()
        assert v2 <= v1 + 1e-12

    def test_shared_brs_run_across_methods(self, rng):
        """One BRS run can back all three methods plus GIR*."""
        data = independent(1_200, 3, seed=14)
        tree = bulk_load_str(data)
        q = random_query(rng, 3)
        run = brs_topk(tree, data.points, q, 8)
        vols = set()
        for m in ("sp", "cp", "fp"):
            vols.add(round(compute_gir(tree, data, q, 8, method=m, run=run).volume(), 12))
        assert len(vols) == 1
        star = compute_gir_star(tree, data, q, 8, run=run)
        assert star.volume() >= vols.pop() - 1e-12

    def test_nonlinear_end_to_end_cache(self, rng):
        """Caching works for non-linear scoring too (same contains test)."""
        data = hotel_surrogate(n=3_000, seed=16)
        tree = bulk_load_str(data)
        scorer = polynomial_scoring([4, 3, 2, 1])
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 5, method="sp", scorer=scorer)
        cache = GIRCache()
        cache.insert(gir)
        hit = cache.lookup(q, 5)
        assert hit is not None
        assert hit.ids == scan_topk(data.points, q, 5, scorer=scorer).ids
