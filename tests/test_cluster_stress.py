"""Concurrency stress: racing reads vs routed writes on the sharded tier.

The serve lock makes every router operation atomic, so a concurrent
history must be *linearizable*: each read observes exactly the state
after some prefix of the write sequence. The test races reader threads
(``topk`` / ``topk_batch``) against a writer applying routed
``insert`` / ``delete`` ops, tags every read with the write-epoch it
observed, then replays the same write sequence sequentially on a fresh
cluster and checks each recorded answer against the sequential engine's
answer at that epoch: the rid sequence must be **bit-identical**, the
scores within the tier-wide serving-path bound (``rtol=0, atol=1e-12``
— a cache hit returns stored bits, a recompute freshly merged ones).

Epoch tagging uses the started/done counter pair: the writer bumps
``started`` before an op and ``done`` after it; a read that saw
``done == a`` before and ``started == b`` after is untorn iff ``a == b``
(no write overlapped it), and then it observed exactly ``a`` writes.
Torn reads are discarded — their ordering is genuinely ambiguous.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cluster import ShardedGIREngine
from repro.data.synthetic import independent
from repro.engine.workload import Request

N, D, K = 400, 3, 5
SHARDS = 2
WRITES = 30


@pytest.fixture(scope="module")
def data():
    return independent(N, D, seed=23)


@pytest.fixture(scope="module")
def write_ops(data):
    """A deterministic mixed write sequence: inserts of fresh points and
    deletes of (still-live) seed rids, interleaved."""
    rng = np.random.default_rng(77)
    ops = []
    deletable = list(rng.choice(N, size=WRITES // 2, replace=False))
    for i in range(WRITES):
        if i % 2 == 0 and deletable:
            ops.append(("delete", int(deletable.pop())))
        else:
            ops.append(("insert", rng.random(D)))
    return ops


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(99)
    return [rng.random(D) + 0.05 for _ in range(12)]


def apply_op(engine, op):
    kind, arg = op
    if kind == "insert":
        engine.insert(arg)
    else:
        engine.delete(arg)


class TestRacingReadsVsRoutedWrites:
    def _race(self, data, write_ops, queries, batch: bool):
        observations = []  # (epoch, query_index, ids, scores)
        obs_lock = threading.Lock()
        started = 0
        done = 0
        stop = threading.Event()
        errors: list[BaseException] = []

        with ShardedGIREngine(
            data, shards=SHARDS, partitioner="round_robin", parallel=True
        ) as engine:
            # Warm the cluster cache so racing reads are mostly fast
            # cache hits — slow cold GIR computations would overlap
            # every write and leave no untorn observation.
            for q in queries:
                engine.topk(q, K)

            def writer():
                nonlocal started, done
                try:
                    for op in write_ops:
                        started += 1
                        apply_op(engine, op)
                        done += 1
                        # Yield so reads can land between writes.
                        time.sleep(0.003)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                finally:
                    stop.set()

            def read_once(i: int) -> None:
                if batch:
                    idxs = [(i + j) % len(queries) for j in range(3)]
                    a = done
                    resps = engine.topk_batch(
                        [Request(weights=queries[q], k=K) for q in idxs]
                    )
                    b = started
                    if a == b:
                        with obs_lock:
                            for q, r in zip(idxs, resps):
                                observations.append(
                                    (a, q, r.ids, r.scores)
                                )
                else:
                    q = i % len(queries)
                    a = done
                    r = engine.topk(queries[q], K)
                    b = started
                    if a == b:
                        with obs_lock:
                            observations.append((a, q, r.ids, r.scores))

            def reader(offset: int):
                i = offset
                try:
                    while not stop.is_set():
                        read_once(i)
                        i += 1
                    # One post-quiescence read: the writer is done, so
                    # this is untorn by construction and guarantees the
                    # final epoch is always represented.
                    read_once(i)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            readers = [
                threading.Thread(target=reader, args=(off,))
                for off in (0, 5)
            ]
            w = threading.Thread(target=writer)
            for t in readers:
                t.start()
            w.start()
            w.join()
            for t in readers:
                t.join()

        assert errors == [], errors
        assert observations, "no untorn read observed any epoch"
        return observations

    def _replay_and_check(self, data, write_ops, queries, observations):
        by_epoch: dict[int, list] = {}
        for epoch, q, ids, scores in observations:
            by_epoch.setdefault(epoch, []).append((q, ids, scores))

        with ShardedGIREngine(
            data, shards=SHARDS, partitioner="round_robin", parallel=False
        ) as reference:
            applied = 0
            for epoch in sorted(by_epoch):
                while applied < epoch:
                    apply_op(reference, write_ops[applied])
                    applied += 1
                for q, ids, scores in by_epoch[epoch]:
                    ref = reference.topk(queries[q], K)
                    assert ref.ids == ids, (
                        f"epoch {epoch}, query {q}: racing answer "
                        f"{ids} != sequential replay {ref.ids}"
                    )
                    # Scores carry the tier-wide serving-path bound
                    # (tests/test_cluster.py): a cache hit returns the
                    # stored bits, a recompute the freshly merged ones —
                    # identical rid order, <= 1 ulp apart in score.
                    np.testing.assert_allclose(
                        np.asarray(ref.scores),
                        np.asarray(scores),
                        rtol=0,
                        atol=1e-12,
                    )

    def test_topk_matches_sequential_replay(self, data, write_ops, queries):
        obs = self._race(data, write_ops, queries, batch=False)
        self._replay_and_check(data, write_ops, queries, obs)

    def test_topk_batch_matches_sequential_replay(
        self, data, write_ops, queries
    ):
        obs = self._race(data, write_ops, queries, batch=True)
        self._replay_and_check(data, write_ops, queries, obs)

    def test_reads_observe_intermediate_epochs(self, data, write_ops, queries):
        # The race is only meaningful if reads actually interleave with
        # the write sequence rather than all landing before or after it.
        obs = self._race(data, write_ops, queries, batch=False)
        epochs = {epoch for epoch, *_ in obs}
        assert any(0 < e < WRITES for e in epochs) or len(epochs) > 1, (
            f"reads never interleaved with writes (epochs seen: "
            f"{sorted(epochs)}); the stress test is vacuous"
        )
