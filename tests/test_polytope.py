"""Tests for H-representation polytopes."""

import numpy as np
import pytest

from repro.geometry.polytope import Polytope


class TestUnitBox:
    def test_volume(self):
        for d in (2, 3, 4, 5):
            assert Polytope.from_unit_box(d).volume() == pytest.approx(1.0, rel=1e-9)

    def test_contains(self):
        box = Polytope.from_unit_box(3)
        assert box.contains(np.array([0.5, 0.5, 0.5]))
        assert box.contains(np.array([0.0, 1.0, 0.5]))
        assert not box.contains(np.array([1.1, 0.5, 0.5]))

    def test_chebyshev_center(self):
        centre, radius = Polytope.from_unit_box(2).chebyshev_center()
        assert np.allclose(centre, [0.5, 0.5])
        assert radius == pytest.approx(0.5)

    def test_vertices(self):
        verts = Polytope.from_unit_box(2).vertices()
        expected = {(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)}
        assert {tuple(np.round(v, 9)) for v in verts} == expected


class TestNormalizedMembership:
    def test_rescaled_region_same_membership(self):
        """Scaling every row of (A, b) leaves membership unchanged: the
        tolerance is norm-relative, not absolute."""
        box = Polytope.from_unit_box(3)
        scale = 1e6
        scaled = Polytope(box.A * scale, box.b * scale)
        rng = np.random.default_rng(4)
        for _ in range(200):
            x = rng.uniform(-0.2, 1.2, 3)
            assert box.contains(x) == scaled.contains(x)

    def test_rescaled_facet_point_stays_member(self):
        """A point a hair outside a facet (within tolerance) is a member
        regardless of row scale — the absolute-tolerance bug rejected it
        once the row was rescaled."""
        box = Polytope.from_unit_box(2)
        x = np.array([1.0 + 5e-10, 0.5])  # violates w1 <= 1 by 5e-10 < tol
        assert box.contains(x)
        scaled = Polytope(box.A * 1e6, box.b * 1e6)
        # Raw slack is now 5e-4 >> tol; the relative test still accepts.
        assert scaled.contains(x)
        clearly_out = np.array([1.1, 0.5])
        assert not box.contains(clearly_out)
        assert not scaled.contains(clearly_out)

    def test_tiny_norm_row_not_overpermissive(self):
        """A near-zero-norm row (nearly coincident records) must not accept
        points far beyond its facet just because the raw slack is tiny."""
        # Row 1e-9 * (x1 - x2) <= 0, i.e. x1 <= x2 — raw violations of this
        # row sit below an absolute 1e-9 tolerance even for points deep in
        # the wrong half-space.
        poly = Polytope.from_unit_box(2).with_constraints(
            np.array([[-1e-9, 1e-9]])
        )
        inside = np.array([0.3, 0.5])
        outside = np.array([0.5, 0.3])  # raw violation 2e-10, real one 0.2
        assert poly.contains(inside)
        assert not poly.contains(outside)

    def test_contains_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        normals = rng.normal(size=(4, 3))
        poly = Polytope.from_unit_box(3).with_constraints(normals)
        X = rng.uniform(-0.2, 1.2, size=(300, 3))
        batch = poly.contains_batch(X)
        assert batch.shape == (300,)
        assert batch.dtype == bool
        for x, flag in zip(X, batch):
            assert flag == poly.contains(x)

    def test_contains_batch_rejects_bad_shape(self):
        poly = Polytope.from_unit_box(3)
        with pytest.raises(ValueError):
            poly.contains_batch(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            poly.contains_batch(np.zeros(3))

    def test_normalized_halfspaces_cached_and_unit(self):
        poly = Polytope.from_unit_box(4)
        A_n, b_n = poly.normalized_halfspaces()
        assert np.allclose(np.linalg.norm(A_n, axis=1), 1.0)
        again = poly.normalized_halfspaces()
        assert again[0] is A_n and again[1] is b_n


class TestWithConstraints:
    def test_halfplane_cuts_volume(self):
        # w1 >= w2 cuts the unit square in half.
        poly = Polytope.from_unit_box(2).with_constraints(np.array([[1.0, -1.0]]))
        assert poly.volume() == pytest.approx(0.5, rel=1e-9)

    def test_cone_wedge_volume(self):
        # w2 <= 2*w1 and w2 >= w1/2: wedge of the unit square.
        normals = np.array([[2.0, -1.0], [-0.5, 1.0]])
        poly = Polytope.from_unit_box(2).with_constraints(normals)
        # Area = 1 - (area above w2=2w1) - (area below w2=w1/2) = 1 - 1/4 - 1/4
        assert poly.volume() == pytest.approx(0.5 + 0.25 - 0.25, rel=1e-6)

    def test_empty_intersection(self):
        # w1 >= w2 + impossible offset via two contradictory cones is not
        # expressible through the origin; use opposite strict halves meeting
        # only on a line => zero volume.
        normals = np.array([[1.0, -1.0], [-1.0, 1.0]])
        poly = Polytope.from_unit_box(2).with_constraints(normals)
        assert poly.volume() == 0.0
        assert poly.is_empty()

    def test_no_constraints_copy(self):
        box = Polytope.from_unit_box(2)
        poly = box.with_constraints(np.empty((0, 2)))
        assert poly.volume() == pytest.approx(1.0)

    def test_row_identity_preserved(self):
        box = Polytope.from_unit_box(2)
        poly = box.with_constraints(np.array([[1.0, -1.0]]))
        assert poly.m == box.m + 1
        assert np.allclose(poly.A[-1], [-1.0, 1.0])  # stored as -normal


class TestAxisInterval:
    def test_box_interval(self):
        box = Polytope.from_unit_box(2)
        lo, hi = box.axis_interval(0, np.array([0.3, 0.7]))
        assert (lo, hi) == (0.0, 1.0)

    def test_constrained_interval(self):
        # w1 >= w2 with base (0.8, 0.4): w1 ranges in [0.4, 1].
        poly = Polytope.from_unit_box(2).with_constraints(np.array([[1.0, -1.0]]))
        lo, hi = poly.axis_interval(0, np.array([0.8, 0.4]))
        assert lo == pytest.approx(0.4)
        assert hi == pytest.approx(1.0)

    def test_line_missing_region(self):
        poly = Polytope.from_unit_box(2).with_constraints(np.array([[1.0, -1.0]]))
        lo, hi = poly.axis_interval(1, np.array([0.1, 0.9]))  # base outside
        assert hi == pytest.approx(0.1)  # w2 <= w1 = 0.1

    def test_wrong_base_shape(self):
        with pytest.raises(ValueError):
            Polytope.from_unit_box(2).axis_interval(0, np.array([0.5]))


class TestFacetMask:
    def test_redundant_constraint_detected(self):
        # w1 >= w2 twice: only one row (plus box rows) is a facet.
        normals = np.array([[1.0, -1.0], [1.0, -1.0], [3.0, -3.0]])
        poly = Polytope.from_unit_box(2).with_constraints(normals)
        mask = poly.facet_mask()
        hs_rows = mask[4:]
        assert hs_rows.sum() <= 1  # duplicates of one plane: at most one kept

    def test_all_box_facets_in_plain_box(self):
        mask = Polytope.from_unit_box(2).facet_mask()
        assert mask.all()

    def test_loose_constraint_not_facet(self):
        # w1 >= w2 - 5 is implied by the box; normal picked accordingly is
        # the cone (1, -0.01): nearly all of the square satisfies it but it
        # still cuts a sliver => facet. Use a constraint fully outside: the
        # box rows already bound w's, so  w1 + w2 >= -1  is never tight.
        poly = Polytope(
            np.vstack([Polytope.from_unit_box(2).A, -np.array([[1.0, 1.0]])]),
            np.concatenate([Polytope.from_unit_box(2).b, [1.0]]),
        )
        assert not poly.facet_mask()[-1]


class TestContainsPolytope:
    def test_box_contains_wedge(self):
        box = Polytope.from_unit_box(2)
        wedge = box.with_constraints(np.array([[1.0, -1.0]]))
        assert box.contains_polytope(wedge)
        assert not wedge.contains_polytope(box)

    def test_self_containment(self):
        poly = Polytope.from_unit_box(3).with_constraints(np.array([[1.0, -0.5, 0.0]]))
        assert poly.contains_polytope(poly)

    def test_empty_contained_in_anything(self):
        empty = Polytope.from_unit_box(2).with_constraints(
            np.array([[1.0, -1.0], [-1.0, 1.0], [0.0, 1.0]])
        )
        # w1 = w2 and w2 <= 0 line segment: no interior.
        assert empty.is_empty()
        assert Polytope.from_unit_box(2).contains_polytope(empty)


class TestSampling:
    def test_samples_inside(self, rng):
        poly = Polytope.from_unit_box(3).with_constraints(
            np.array([[1.0, -1.0, 0.0], [0.0, 1.0, -1.0]])
        )
        pts = poly.sample(100, rng)
        assert pts.shape == (100, 3)
        for p in pts:
            assert poly.contains(p, tol=1e-8)

    def test_empty_region_samples_nothing(self):
        empty = Polytope.from_unit_box(2).with_constraints(
            np.array([[1.0, -1.0], [-1.0, 1.0], [0.0, 1.0]])
        )
        assert empty.sample(10).shape[0] == 0


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Polytope(np.eye(2), np.ones(3))

    def test_slacks(self):
        box = Polytope.from_unit_box(2)
        s = box.slacks(np.array([0.25, 0.5]))
        assert s.min() == pytest.approx(0.25)
