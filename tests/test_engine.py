"""Tests for the GIREngine serving layer and workload generators."""

import numpy as np
import pytest

from repro.data.synthetic import independent
from repro.engine import (
    GIREngine,
    Request,
    Workload,
    percentile,
    drifting_zipf_workload,
    uniform_workload,
    zipf_clustered_workload,
)
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk
from tests.conftest import random_query


@pytest.fixture(scope="module")
def served_setup():
    data = independent(900, 3, seed=41)
    tree = bulk_load_str(data)
    return data, tree


class TestCacheFirstServing:
    def test_full_hit_zero_page_reads(self, served_setup, rng):
        data, tree = served_setup
        engine = GIREngine(data, tree)
        q = random_query(rng, 3)
        first = engine.topk(q, 10)
        assert first.source == "computed"
        assert first.pages_read > 0 and first.gir_stats is not None
        second = engine.topk(q, 10)
        assert second.source == "cache"
        assert second.pages_read == 0
        assert second.gir_stats is None
        assert second.ids == first.ids

    def test_full_hit_scores_are_for_probe_weights(self, served_setup, rng):
        """A hit inside the GIR keeps the ids but rescoring uses the
        probe's own weights, so the reported scores are exact."""
        data, tree = served_setup
        engine = GIREngine(data, tree)
        q = random_query(rng, 3)
        engine.topk(q, 10)
        gir = engine.cache._entries[0]
        for probe in gir.polytope.sample(4, rng):
            if (probe <= 1e-9).all():
                continue
            resp = engine.topk(probe, 10)
            assert resp.source == "cache" and resp.pages_read == 0
            expected = scan_topk(data.points, probe, 10)
            assert resp.ids == expected.ids
            assert np.allclose(resp.scores, expected.scores)

    def test_partial_hit_completed(self, served_setup, rng):
        data, tree = served_setup
        engine = GIREngine(data, tree)
        q = random_query(rng, 3)
        engine.topk(q, 5)
        deeper = engine.topk(q, 14)
        assert deeper.source == "completed"
        assert len(deeper.ids) == 14
        assert deeper.ids == scan_topk(data.points, q, 14).ids
        # Completion RESUMED the retained BRS run rather than re-searching.
        assert engine.resumed_completions == 1
        # The deeper GIR is cached: asking again is now a pure hit.
        again = engine.topk(q, 14)
        assert again.source == "cache" and again.pages_read == 0

    def test_partial_hit_resume_skips_retrieval_io(self, served_setup, rng):
        """Completing a partial hit re-reads none of the pages the original
        search fetched; a cold engine answering the same deep request pays
        the full retrieval."""
        data, tree = served_setup
        warm = GIREngine(data, tree)
        q = random_query(rng, 3)
        warm.topk(q, 5)
        completed = warm.topk(q, 14)
        cold = GIREngine(data, tree)
        fresh = cold.topk(q, 14)
        assert completed.gir_stats.io_pages_topk < fresh.gir_stats.io_pages_topk

    def test_retain_runs_disabled_still_correct(self, served_setup, rng):
        data, tree = served_setup
        engine = GIREngine(data, tree, retain_runs=False)
        q = random_query(rng, 3)
        engine.topk(q, 5)
        deeper = engine.topk(q, 14)
        assert deeper.source == "completed"
        assert deeper.ids == scan_topk(data.points, q, 14).ids
        assert engine.resumed_completions == 0

    def test_smaller_k_is_full_hit(self, served_setup, rng):
        data, tree = served_setup
        engine = GIREngine(data, tree)
        q = random_query(rng, 3)
        engine.topk(q, 12)
        resp = engine.topk(q, 4)
        assert resp.source == "cache" and resp.pages_read == 0
        assert resp.ids == scan_topk(data.points, q, 4).ids

    def test_engine_builds_tree_when_omitted(self):
        data = independent(300, 2, seed=5)
        engine = GIREngine(data)
        resp = engine.topk([0.5, 0.6], 5)
        assert resp.ids == scan_topk(data.points, np.array([0.5, 0.6]), 5).ids


class TestBatchAccounting:
    def test_report_consistent_with_per_request_stats(self, served_setup, rng):
        data, tree = served_setup
        engine = GIREngine(data, tree)
        workload = zipf_clustered_workload(3, 60, k=8, clusters=4, rng=rng)
        report = engine.run(workload)

        assert report.total == 60
        assert report.full_hits + report.completed_partials + report.computed == 60
        # Page accounting: the report total is exactly the sum of the
        # requests' own meters, and matches the pipelines' GIRStats.
        assert report.pages_read_total == sum(r.pages_read for r in report.responses)
        assert report.pages_read_total == sum(
            r.gir_stats.io_pages_total
            for r in report.responses
            if r.gir_stats is not None
        )
        for r in report.responses:
            if r.source == "cache":
                assert r.pages_read == 0 and r.gir_stats is None
            else:
                assert r.gir_stats is not None
        # Engine/cache counters line up with the report's split.
        stats = engine.stats()
        assert stats["requests_served"] == 60
        assert stats["full_hits"] == report.full_hits
        assert stats["partial_hits"] == report.completed_partials
        assert stats["misses"] == report.computed

    def test_report_aggregates(self, served_setup, rng):
        data, tree = served_setup
        engine = GIREngine(data, tree)
        report = engine.run(uniform_workload(3, 25, k=6, rng=rng))
        d = report.to_dict()
        for key in (
            "hit_rate", "latency_p50_ms", "latency_p95_ms",
            "pages_per_1k_queries", "throughput_qps", "queries",
        ):
            assert key in d
        assert 0.0 <= d["hit_rate"] <= 1.0
        assert d["latency_p50_ms"] <= d["latency_p95_ms"]
        assert d["queries"] == 25
        assert report.summary()  # renders without error

    def test_empty_workload_reports_zeros(self, served_setup):
        data, tree = served_setup
        engine = GIREngine(data, tree)
        report = engine.run([])
        d = report.to_dict()
        assert d["queries"] == 0
        assert d["hit_rate"] == 0.0
        assert d["latency_p50_ms"] == 0.0 and d["latency_p95_ms"] == 0.0
        assert d["pages_per_1k_queries"] == 0.0
        assert report.summary()

    def test_run_accepts_plain_request_list(self, served_setup, rng):
        data, tree = served_setup
        engine = GIREngine(data, tree)
        q = random_query(rng, 3)
        report = engine.run([Request(weights=q, k=5)] * 3)
        assert report.total == 3 and report.full_hits == 2


class TestWorkloadGenerators:
    def test_uniform_shapes_and_interior(self, rng):
        wl = uniform_workload(4, 50, k=7, rng=rng)
        assert isinstance(wl, Workload) and len(wl) == 50
        for req in wl:
            assert req.k == 7 and req.weights.shape == (4,)
            assert (req.weights > 0).all() and (req.weights <= 1).all()

    def test_zipf_clustered_interior_and_skew(self):
        rng = np.random.default_rng(3)
        wl = zipf_clustered_workload(3, 300, clusters=5, zipf_s=1.5, rng=rng)
        assert len(wl) == 300
        arr = np.stack([req.weights for req in wl])
        assert (arr >= 0.01).all() and (arr <= 1.0).all()
        # Clustered: far fewer distinct neighbourhoods than queries.
        rounded = {tuple(np.round(w, 1)) for w in arr}
        assert len(rounded) < 60

    def test_zipf_rejects_bad_clusters(self):
        with pytest.raises(ValueError, match="positive"):
            zipf_clustered_workload(3, 10, clusters=0)

    def test_drifting_zipf_hot_spot_moves(self):
        """The head archetype of the first phase goes cold in later phases
        (up to the carryover fraction), so phase-wise traffic centroids
        actually move."""
        rng = np.random.default_rng(11)
        wl = drifting_zipf_workload(
            3, 400, clusters=6, zipf_s=1.3, phases=4, carryover=0.2, rng=rng
        )
        assert isinstance(wl, Workload) and len(wl) == 400
        assert wl.kind == "drifting_zipf"
        assert wl.params["phases"] == 4.0
        arr = np.stack([req.weights for req in wl])
        assert (arr >= 0.01).all() and (arr <= 1.0).all()
        per_phase = np.split(arr, 4)
        centroids = np.stack([p.mean(axis=0) for p in per_phase])
        # At least one phase boundary shifts the centroid by more than the
        # within-cluster spread (the ranking was re-dealt).
        jumps = np.linalg.norm(np.diff(centroids, axis=0), axis=1)
        assert jumps.max() > 0.05

    def test_drifting_zipf_validation(self):
        with pytest.raises(ValueError, match="phases"):
            drifting_zipf_workload(3, 10, phases=0)
        with pytest.raises(ValueError, match="carryover"):
            drifting_zipf_workload(3, 10, carryover=1.5)
        with pytest.raises(ValueError, match="positive"):
            drifting_zipf_workload(3, 10, clusters=0)

    def test_drifting_zipf_seed_deterministic(self):
        a = drifting_zipf_workload(3, 60, rng=5)
        b = drifting_zipf_workload(3, 60, rng=5)
        np.testing.assert_array_equal(
            np.stack([r.weights for r in a]), np.stack([r.weights for r in b])
        )

    def test_percentile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 1) == 1.0
        with pytest.raises(ValueError):
            percentile([], 50)


class TestGeneratorRngUnification:
    """Every generator accepts an int seed or a Generator interchangeably."""

    def test_uniform_seed_equals_generator(self):
        a = uniform_workload(3, 20, k=5, rng=42)
        b = uniform_workload(3, 20, k=5, rng=np.random.default_rng(42))
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.weights, rb.weights)

    def test_zipf_seed_equals_generator(self):
        a = zipf_clustered_workload(3, 30, clusters=4, rng=7)
        b = zipf_clustered_workload(
            3, 30, clusters=4, rng=np.random.default_rng(7)
        )
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.weights, rb.weights)

    def test_mixed_seed_equals_generator(self):
        from repro.engine import DeleteOp, InsertOp, mixed_workload

        a = mixed_workload(3, 40, base_n=200, k=5, rng=11)
        b = mixed_workload(
            3, 40, base_n=200, k=5, rng=np.random.default_rng(11)
        )
        assert len(a) == len(b)
        for oa, ob in zip(a, b):
            assert type(oa) is type(ob)
            if isinstance(oa, Request):
                assert np.array_equal(oa.weights, ob.weights)
            elif isinstance(oa, InsertOp):
                assert np.array_equal(oa.point, ob.point)
            elif isinstance(oa, DeleteOp):
                assert oa.rid == ob.rid

    def test_numpy_integer_seed_accepted(self):
        wl = uniform_workload(2, 3, rng=np.int64(5))
        ref = uniform_workload(2, 3, rng=5)
        for ra, rb in zip(wl, ref):
            assert np.array_equal(ra.weights, rb.weights)

    def test_generator_instance_not_reseeded(self):
        from repro.engine import as_generator

        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_bad_rng_type_rejected(self):
        from repro.engine import as_generator

        with pytest.raises(TypeError, match="int seed"):
            as_generator("not-a-seed")


class TestInputValidation:
    """topk/insert reject malformed input with a clear ValueError instead
    of an opaque downstream geometry failure."""

    @pytest.fixture(scope="class")
    def engine(self):
        data = independent(300, 3, seed=9)
        return GIREngine(data, bulk_load_str(data))

    def test_wrong_dimension_rejected(self, engine):
        with pytest.raises(ValueError, match=r"shape \(3,\)"):
            engine.topk(np.array([0.5, 0.5]), 5)

    def test_nan_weights_rejected(self, engine):
        with pytest.raises(ValueError, match="finite"):
            engine.topk(np.array([0.5, np.nan, 0.5]), 5)

    def test_inf_weights_rejected(self, engine):
        with pytest.raises(ValueError, match="finite"):
            engine.topk(np.array([0.5, np.inf, 0.5]), 5)

    def test_all_nonpositive_weights_rejected(self, engine):
        with pytest.raises(ValueError, match="positive entry"):
            engine.topk(np.zeros(3), 5)

    def test_negative_weights_rejected(self, engine):
        with pytest.raises(ValueError, match="non-negative"):
            engine.topk(np.array([0.5, -0.1, 0.5]), 5)

    def test_batch_validates_too(self, engine):
        reqs = [Request(weights=np.array([0.5, 0.4, 0.6]), k=3)]
        bad = Request.__new__(Request)  # bypass Request's own checks
        object.__setattr__(bad, "weights", np.array([0.5, 0.4]))
        object.__setattr__(bad, "k", 3)
        with pytest.raises(ValueError, match="shape"):
            engine.topk_batch(reqs + [bad])

    def test_batch_validates_before_serving_anything(self, engine):
        """A malformed request anywhere in the batch fails the whole call
        up front — no prefix is served, no counters move (a mid-batch
        abort would leave the caller unable to tell what took effect)."""
        bad = Request.__new__(Request)
        object.__setattr__(bad, "weights", np.array([0.5, np.nan, 0.6]))
        object.__setattr__(bad, "k", 3)
        reqs = [
            Request(weights=np.array([0.5, 0.4, 0.6]), k=3)
            for _ in range(5)
        ] + [bad]
        served_before = engine.requests_served
        stats_before = engine.cache.stats()
        with pytest.raises(ValueError, match="finite"):
            engine.topk_batch(reqs)
        assert engine.requests_served == served_before
        assert engine.cache.stats() == stats_before

    def test_insert_wrong_dimension_rejected(self, engine):
        with pytest.raises(ValueError, match=r"shape \(3,\)"):
            engine.insert(np.array([0.5, 0.5, 0.5, 0.5]))

    def test_insert_nan_rejected(self, engine):
        with pytest.raises(ValueError, match="finite"):
            engine.insert(np.array([0.5, np.nan, 0.5]))

    def test_rejected_insert_leaves_engine_intact(self, engine):
        live_before = engine.n_live
        tree_size = engine.tree.size
        with pytest.raises(ValueError):
            engine.insert(np.array([np.nan, 0.5, 0.5]))
        assert engine.n_live == live_before
        assert engine.tree.size == tree_size
        # Still fully serviceable after the rejection.
        resp = engine.topk(np.array([0.5, 0.4, 0.6]), 4)
        assert len(resp.ids) == 4
