"""Tests for the FP facet fan (incident-facet maintenance).

The defining property (Section 6.1): the fan's critical records must carry
the same constraint information as the full hull ``CH' = hull({apex} ∪ P)``
— i.e. the normal cone of the apex computed from fan vertices equals the
one computed from all of ``P``.
"""

import numpy as np
import pytest
from scipy.spatial import ConvexHull

from repro.geometry.incident_facets import FacetFan, FanError
from repro.index.mbb import MBB


def make_apex_and_points(rng, n, d):
    """Random points plus an apex that beats them all under weights w."""
    w = rng.random(d) * 0.8 + 0.2
    pts = rng.random((n, d)) * 0.8
    apex = np.full(d, 0.95)
    assert (pts @ w < apex @ w).all()
    return apex, pts, w


def incident_vertices_via_qhull(apex, pts) -> set[int]:
    """Oracle: indices of points on CH' facets incident to the apex."""
    all_pts = np.vstack([apex[None, :], pts])
    hull = ConvexHull(all_pts)
    out: set[int] = set()
    for simplex in hull.simplices:
        if 0 in simplex:
            out |= {int(v) - 1 for v in simplex if v != 0}
    return out


class TestFanBasics:
    def test_initial_simplex_facets(self, rng):
        apex, pts, w = make_apex_and_points(rng, 3, 3)
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(pts)])
        assert fan.facet_count() == 3  # star of a simplex apex
        assert fan.critical_keys() == {0, 1, 2}

    def test_interior_point_ignored(self, rng):
        apex = np.array([1.0, 1.0, 1.0])
        base = np.eye(3) * 0.8
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(base)])
        assert not fan.add_point(99, np.array([0.2, 0.2, 0.2]))
        assert 99 not in fan.critical_keys()

    def test_extending_point_updates_fan(self):
        apex = np.array([1.0, 1.0, 1.0])
        base = np.eye(3) * 0.5
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(base)])
        assert fan.add_point(99, np.array([0.9, 0.05, 0.05]))
        assert 99 in fan.critical_keys()

    def test_degenerate_candidates_keep_all(self):
        """Candidates spanning < d dims fall back to keeping everything."""
        apex = np.array([1.0, 1.0, 1.0])
        flat = [(0, np.array([0.5, 0.5, 0.0])), (1, np.array([0.6, 0.4, 0.0]))]
        fan = FacetFan(apex)
        fan.bootstrap(flat)
        assert fan.degenerate
        assert fan.critical_keys() == {0, 1}
        assert fan.sees(np.array([0.1, 0.1, 0.1]))  # everything is critical

    def test_add_before_bootstrap_raises(self):
        fan = FacetFan(np.array([1.0, 1.0]))
        with pytest.raises(FanError, match="bootstrap"):
            fan.add_point(0, np.array([0.5, 0.5]))

    def test_rejects_tiny_apex(self):
        with pytest.raises(ValueError):
            FacetFan(np.array([1.0]))


class TestFanMatchesFullHull:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    @pytest.mark.parametrize("n", [30, 120])
    def test_criticals_match_qhull_incident_vertices(self, rng, d, n):
        apex, pts, w = make_apex_and_points(rng, n, d)
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(pts)])
        assert not fan.degenerate
        expected = incident_vertices_via_qhull(apex, pts)
        assert fan.critical_keys() == expected

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_insertion_order_invariance(self, rng, d):
        apex, pts, w = make_apex_and_points(rng, 60, d)
        orders = [np.arange(60), np.arange(60)[::-1], rng.permutation(60)]
        results = []
        for order in orders:
            fan = FacetFan(apex)
            fan.bootstrap([(int(i), pts[i]) for i in order])
            results.append(fan.critical_keys())
        assert results[0] == results[1] == results[2]

    def test_normal_cone_property(self, rng):
        """q' satisfying all fan constraints ⇒ apex beats every point."""
        d = 4
        apex, pts, w = make_apex_and_points(rng, 100, d)
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(pts)])
        crits = sorted(fan.critical_keys())
        normals = np.array([apex - pts[c] for c in crits])
        for _ in range(200):
            q = rng.random(d)
            if (normals @ q >= 0).all():
                assert (pts @ q <= apex @ q + 1e-9).all()


class TestMBBInteraction:
    def test_mbb_below_all_facets_unseen(self):
        apex = np.array([1.0, 1.0])
        fan = FacetFan(apex)
        fan.bootstrap([(0, np.array([0.9, 0.1])), (1, np.array([0.1, 0.9]))])
        inside = MBB(np.array([0.1, 0.1]), np.array([0.3, 0.3]))
        assert not fan.mbb_sees(inside)

    def test_mbb_crossing_facet_seen(self):
        apex = np.array([1.0, 1.0])
        fan = FacetFan(apex)
        fan.bootstrap([(0, np.array([0.6, 0.1])), (1, np.array([0.1, 0.6]))])
        crossing = MBB(np.array([0.5, 0.5]), np.array([0.95, 0.95]))
        assert fan.mbb_sees(crossing)

    def test_mbb_see_is_sound_for_corners(self, rng):
        """If no corner of the MBB is above any facet, mbb_sees is False."""
        d = 3
        apex, pts, w = make_apex_and_points(rng, 50, d)
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(pts)])
        for _ in range(50):
            lo = rng.random(d) * 0.5
            hi = lo + rng.random(d) * 0.3
            box = MBB(lo, hi)
            corners = np.array(
                [[lo[i] if bit & (1 << i) else hi[i] for i in range(d)] for bit in range(2**d)]
            )
            any_corner_seen = any(fan.sees(c) for c in corners)
            assert fan.mbb_sees(box) == any_corner_seen


class TestFanErrorConditions:
    def test_point_above_apex_breaks_fan(self):
        """A point scoring above the apex violates the precondition."""
        apex = np.array([0.5, 0.5])
        fan = FacetFan(apex)
        fan.bootstrap([(0, np.array([0.45, 0.1])), (1, np.array([0.1, 0.45]))])
        with pytest.raises(FanError, match="hull vertex"):
            fan.add_point(99, np.array([0.9, 0.9]))
