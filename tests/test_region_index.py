"""Tests for the vectorized region-membership index."""

import numpy as np
import pytest

from repro.core.caching import GIRCache, invalidated_by_insert
from repro.core.gir import compute_gir
from repro.core.region_index import (
    RegionIndex,
    SCREEN_LP,
    SCREEN_SAFE,
    SCREEN_TIE,
)
from repro.data.synthetic import independent
from repro.geometry.polytope import Polytope
from repro.index.bulkload import bulk_load_str
from tests.conftest import random_query


def random_region(rng, d: int, cuts: int = 3) -> Polytope:
    """A random cone-through-origin ∩ unit box (the GIR shape)."""
    normals = rng.normal(size=(cuts, d))
    return Polytope.from_unit_box(d).with_constraints(normals)


@pytest.fixture(scope="module")
def indexed_setup():
    data = independent(700, 3, seed=23)
    tree = bulk_load_str(data)
    return data, tree


class TestMembership:
    def test_matches_per_entry_contains(self, rng):
        index = RegionIndex(3)
        regions = [random_region(rng, 3) for _ in range(10)]
        for key, region in enumerate(regions):
            index.add(key, region)
        assert len(index) == 10
        assert index.rows == sum(r.m for r in regions)
        for _ in range(100):
            x = rng.uniform(-0.1, 1.1, 3)
            mask = index.membership(x)
            expected = np.array([r.contains(x) for r in regions])
            assert (mask == expected).all()

    def test_membership_batch_matches_rows(self, rng):
        index = RegionIndex(3)
        regions = [random_region(rng, 3) for _ in range(7)]
        for key, region in enumerate(regions):
            index.add(key, region)
        X = rng.uniform(-0.1, 1.1, size=(60, 3))
        batch = index.membership_batch(X)
        assert batch.shape == (60, 7)
        for i in range(60):
            assert (batch[i] == index.membership(X[i])).all()

    def test_remove_splices_segments(self, rng):
        index = RegionIndex(3)
        regions = {key: random_region(rng, 3) for key in range(6)}
        for key, region in regions.items():
            index.add(key, region)
        assert index.remove(3)
        assert not index.remove(3)  # already gone
        del regions[3]
        assert index.keys() == [0, 1, 2, 4, 5]
        assert index.rows == sum(r.m for r in regions.values())
        for _ in range(60):
            x = rng.uniform(-0.1, 1.1, 3)
            expected = np.array([regions[k].contains(x) for k in index.keys()])
            assert (index.membership(x) == expected).all()

    def test_clear(self, rng):
        index = RegionIndex(2)
        index.add(0, random_region(rng, 2))
        index.clear()
        assert len(index) == 0 and index.rows == 0
        assert index.membership(np.array([0.5, 0.5])).shape == (0,)
        assert index.membership_batch(np.zeros((4, 2))).shape == (4, 0)

    def test_rejects_mismatched_dimension_and_duplicates(self, rng):
        index = RegionIndex(3)
        with pytest.raises(ValueError):
            index.add(0, random_region(rng, 2))
        index.add(0, random_region(rng, 3))
        with pytest.raises(KeyError):
            index.add(0, random_region(rng, 3))
        with pytest.raises(ValueError):
            index.membership_batch(np.zeros((4, 2)))


class TestPrescreen:
    def test_safe_entries_agree_with_lp(self, indexed_setup, rng):
        """Every SAFE verdict must be confirmed by the exact LP test —
        the screen may be loose, never wrong."""
        data, tree = indexed_setup
        index = RegionIndex(3)
        girs = {}
        for key in range(12):
            gir = compute_gir(tree, data, random_query(rng, 3), 8)
            girs[key] = gir
            index.add(key, gir.polytope, kth_g=data.points[gir.topk.kth_id])
        checked_safe = 0
        for _ in range(60):
            p = rng.random(3)
            codes = index.prescreen_insert(p)
            for key, code in zip(index.keys(), codes):
                gir = girs[key]
                kth_g = data.points[gir.topk.kth_id]
                if code == SCREEN_SAFE:
                    checked_safe += 1
                    assert not invalidated_by_insert(gir, p, kth_g)
                elif code == SCREEN_TIE:
                    assert (p == kth_g).all()
        assert checked_safe > 0  # the screen actually fires

    def test_tie_detected_exactly(self, indexed_setup, rng):
        data, tree = indexed_setup
        gir = compute_gir(tree, data, random_query(rng, 3), 8)
        index = RegionIndex(3)
        index.add(0, gir.polytope, kth_g=data.points[gir.topk.kth_id])
        codes = index.prescreen_insert(data.points[gir.topk.kth_id])
        assert codes[0] == SCREEN_TIE

    def test_dominating_insert_not_screened(self, indexed_setup, rng):
        """A record strictly dominating the k-th result must survive the
        screen (and the LP must then invalidate the entry)."""
        data, tree = indexed_setup
        gir = compute_gir(tree, data, random_query(rng, 3), 8)
        kth_g = data.points[gir.topk.kth_id]
        index = RegionIndex(3)
        index.add(0, gir.polytope, kth_g=kth_g)
        above = np.clip(kth_g + 0.05, 0, 1)
        codes = index.prescreen_insert(above)
        assert codes[0] == SCREEN_LP
        assert invalidated_by_insert(gir, above, kth_g)

    def test_entries_without_kth_g_always_lp(self, rng):
        index = RegionIndex(3)
        index.add(0, random_region(rng, 3))
        codes = index.prescreen_insert(rng.random(3))
        assert codes[0] == SCREEN_LP

    def test_degenerate_region_falls_back_without_false_safe(self, rng):
        """An entry whose region has no usable vertex set (empty interior)
        must classify via the ball fallback / LP, never silently SAFE
        against a dominating insert."""
        # x1 <= 0 and x1 >= 0 inside the box: a 2-d face, no interior.
        flat = Polytope.from_unit_box(3).with_constraints(
            np.array([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
        )
        index = RegionIndex(3)
        index.add(0, flat, kth_g=np.array([0.2, 0.2, 0.2]))
        codes = index.prescreen_insert(np.array([0.9, 0.9, 0.9]))
        assert codes[0] == SCREEN_LP

    def test_screen_survives_add_remove_cycles(self, indexed_setup, rng):
        data, tree = indexed_setup
        index = RegionIndex(3)
        girs = {}
        for key in range(6):
            gir = compute_gir(tree, data, random_query(rng, 3), 6)
            girs[key] = gir
            index.add(key, gir.polytope, kth_g=data.points[gir.topk.kth_id])
        index.prescreen_insert(rng.random(3))  # materialize
        index.remove(2)
        del girs[2]
        gir = compute_gir(tree, data, random_query(rng, 3), 6)
        girs[99] = gir
        index.add(99, gir.polytope, kth_g=data.points[gir.topk.kth_id])
        p = rng.random(3)
        codes = index.prescreen_insert(p)
        assert len(codes) == len(index.keys())
        for key, code in zip(index.keys(), codes):
            if code == SCREEN_SAFE:
                g = girs[key]
                assert not invalidated_by_insert(
                    g, p, data.points[g.topk.kth_id]
                )


class TestCachePrescreenIntegration:
    def test_cache_prescreen_partition_is_total(self, indexed_setup, rng):
        data, tree = indexed_setup
        cache = GIRCache()
        for _ in range(8):
            gir = compute_gir(tree, data, random_query(rng, 3), 8)
            cache.insert(gir, kth_g=data.points[gir.topk.kth_id])
        pre = cache.prescreen_insert(rng.random(3))
        combined = sorted(pre.safe + pre.ties + pre.candidates)
        assert combined == sorted(cache.entry_keys())
        assert pre.screened == len(pre.safe) + len(pre.ties)

    def test_entries_inserted_without_kth_g_are_candidates(
        self, indexed_setup, rng
    ):
        data, tree = indexed_setup
        cache = GIRCache()
        gir = compute_gir(tree, data, random_query(rng, 3), 8)
        cache.insert(gir)  # no kth_g: prescreen cannot clear it
        pre = cache.prescreen_insert(rng.random(3))
        assert pre.safe == () and pre.ties == ()
        assert len(pre.candidates) == 1


class TestGridSignature:
    """Admission-prescreen grid: zero false negatives, by construction."""

    def test_default_cells_budget(self):
        from repro.core.region_index import _GRID_TARGET_CELLS, default_grid_cells

        for d in range(1, 10):
            g = default_grid_cells(d)
            assert g >= 2
            assert g == 2 or g**d <= _GRID_TARGET_CELLS

    def test_grid_negatives_match_brute_force(self, rng):
        """Every grid 'certain miss' is a true all-False membership, and
        answers with the grid on equal answers with the grid off."""
        total_negatives = 0
        for d in (2, 3, 4):
            with_grid = RegionIndex(d)
            without = RegionIndex(d, grid_cells=0)
            regions = [random_region(rng, d) for _ in range(12)]
            for key, region in enumerate(regions):
                with_grid.add(key, region)
                without.add(key, region)
            X = rng.uniform(-0.05, 1.05, size=(500, d))
            got = with_grid.membership_batch(X)
            ref = without.membership_batch(X)
            np.testing.assert_array_equal(got, ref)
            for i in range(0, 500, 7):
                np.testing.assert_array_equal(
                    with_grid.membership(X[i]), ref[i]
                )
            stats = with_grid.grid_stats()
            assert stats["probes"] > 0
            total_negatives += stats["negatives"]
        # Certain misses must actually occur on uniform probes somewhere
        # (at low d a dozen cones can touch every cell), or the grid is
        # dead weight.
        assert total_negatives > 0

    def test_grid_maintenance_over_remove_and_clear(self, rng):
        index = RegionIndex(3)
        regions = {key: random_region(rng, 3) for key in range(8)}
        for key, region in regions.items():
            index.add(key, region)
        index.remove_many([1, 3, 5])
        X = rng.uniform(0.0, 1.0, size=(200, 3))
        ref = np.stack(
            [
                [regions[k].contains(x) for k in index.keys()]
                for x in X
            ]
        )
        np.testing.assert_array_equal(index.membership_batch(X), ref)
        index.clear()
        assert index.grid_stats()["registered_cells"] == 0

    def test_large_tol_bypasses_grid(self, rng):
        """Tolerances above GRID_SAFE_TOL must never be answered by the
        grid (the registration slack does not cover them)."""
        from repro.core.region_index import GRID_SAFE_TOL

        index = RegionIndex(3)
        index.add(0, random_region(rng, 3))
        x = rng.random(3)
        assert not index.grid.is_certain_miss(x, GRID_SAFE_TOL * 11)
        assert not index.grid.certain_miss_mask(x[None, :], GRID_SAFE_TOL * 11).any()

    def test_near_facet_membership_property(self, rng):
        """Grid prescreen + exact membership never disagrees with the
        per-entry scan for weights within ±10·tol of cached facet
        boundaries — the tolerance worst case (satellite requirement)."""
        tol = 1e-9
        for d in (2, 4, 6):
            data = independent(400, d, seed=60 + d)
            tree = bulk_load_str(data)
            grid_cache = GIRCache(capacity=32, grid=True)
            scan_cache = GIRCache(capacity=32, grid=False)
            girs = []
            queries = []
            attempts = 0
            while len(girs) < 6 and attempts < 120:
                attempts += 1
                q = rng.random(d) * 0.8 + 0.1
                gir = compute_gir(tree, data, q, 5)
                before = len(grid_cache)
                grid_cache.insert(gir)
                scan_cache.insert(gir)
                if len(grid_cache) > before:
                    girs.append(gir)
                    queries.append(q)
            probes = []
            for gir, q in zip(girs, queries):
                A_n, b_n = gir.polytope.normalized_halfspaces()
                for row in range(min(len(b_n), 12)):
                    a = A_n[row]
                    # Project the cached query vector onto the facet's
                    # hyperplane, then nudge it to ±10·tol of the boundary.
                    base = q + (b_n[row] - a @ q) * a
                    for off in (-10 * tol, -tol, 0.0, tol, 10 * tol):
                        probes.append(base + off * a)
            for p in probes:
                hit_g = grid_cache.lookup(p, 5)
                hit_s = scan_cache.lookup_scan(p, 5)
                assert (hit_g is None) == (hit_s is None)
                if hit_g is not None:
                    assert hit_g.ids == hit_s.ids
                    assert hit_g.entry_key == hit_s.entry_key
