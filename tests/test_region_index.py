"""Tests for the vectorized region-membership index."""

import numpy as np
import pytest

from repro.core.caching import GIRCache, invalidated_by_insert
from repro.core.gir import compute_gir
from repro.core.region_index import (
    RegionIndex,
    SCREEN_LP,
    SCREEN_SAFE,
    SCREEN_TIE,
)
from repro.data.synthetic import independent
from repro.geometry.polytope import Polytope
from repro.index.bulkload import bulk_load_str
from tests.conftest import random_query


def random_region(rng, d: int, cuts: int = 3) -> Polytope:
    """A random cone-through-origin ∩ unit box (the GIR shape)."""
    normals = rng.normal(size=(cuts, d))
    return Polytope.from_unit_box(d).with_constraints(normals)


@pytest.fixture(scope="module")
def indexed_setup():
    data = independent(700, 3, seed=23)
    tree = bulk_load_str(data)
    return data, tree


class TestMembership:
    def test_matches_per_entry_contains(self, rng):
        index = RegionIndex(3)
        regions = [random_region(rng, 3) for _ in range(10)]
        for key, region in enumerate(regions):
            index.add(key, region)
        assert len(index) == 10
        assert index.rows == sum(r.m for r in regions)
        for _ in range(100):
            x = rng.uniform(-0.1, 1.1, 3)
            mask = index.membership(x)
            expected = np.array([r.contains(x) for r in regions])
            assert (mask == expected).all()

    def test_membership_batch_matches_rows(self, rng):
        index = RegionIndex(3)
        regions = [random_region(rng, 3) for _ in range(7)]
        for key, region in enumerate(regions):
            index.add(key, region)
        X = rng.uniform(-0.1, 1.1, size=(60, 3))
        batch = index.membership_batch(X)
        assert batch.shape == (60, 7)
        for i in range(60):
            assert (batch[i] == index.membership(X[i])).all()

    def test_remove_splices_segments(self, rng):
        index = RegionIndex(3)
        regions = {key: random_region(rng, 3) for key in range(6)}
        for key, region in regions.items():
            index.add(key, region)
        assert index.remove(3)
        assert not index.remove(3)  # already gone
        del regions[3]
        assert index.keys() == [0, 1, 2, 4, 5]
        assert index.rows == sum(r.m for r in regions.values())
        for _ in range(60):
            x = rng.uniform(-0.1, 1.1, 3)
            expected = np.array([regions[k].contains(x) for k in index.keys()])
            assert (index.membership(x) == expected).all()

    def test_clear(self, rng):
        index = RegionIndex(2)
        index.add(0, random_region(rng, 2))
        index.clear()
        assert len(index) == 0 and index.rows == 0
        assert index.membership(np.array([0.5, 0.5])).shape == (0,)
        assert index.membership_batch(np.zeros((4, 2))).shape == (4, 0)

    def test_rejects_mismatched_dimension_and_duplicates(self, rng):
        index = RegionIndex(3)
        with pytest.raises(ValueError):
            index.add(0, random_region(rng, 2))
        index.add(0, random_region(rng, 3))
        with pytest.raises(KeyError):
            index.add(0, random_region(rng, 3))
        with pytest.raises(ValueError):
            index.membership_batch(np.zeros((4, 2)))


class TestPrescreen:
    def test_safe_entries_agree_with_lp(self, indexed_setup, rng):
        """Every SAFE verdict must be confirmed by the exact LP test —
        the screen may be loose, never wrong."""
        data, tree = indexed_setup
        index = RegionIndex(3)
        girs = {}
        for key in range(12):
            gir = compute_gir(tree, data, random_query(rng, 3), 8)
            girs[key] = gir
            index.add(key, gir.polytope, kth_g=data.points[gir.topk.kth_id])
        checked_safe = 0
        for _ in range(60):
            p = rng.random(3)
            codes = index.prescreen_insert(p)
            for key, code in zip(index.keys(), codes):
                gir = girs[key]
                kth_g = data.points[gir.topk.kth_id]
                if code == SCREEN_SAFE:
                    checked_safe += 1
                    assert not invalidated_by_insert(gir, p, kth_g)
                elif code == SCREEN_TIE:
                    assert (p == kth_g).all()
        assert checked_safe > 0  # the screen actually fires

    def test_tie_detected_exactly(self, indexed_setup, rng):
        data, tree = indexed_setup
        gir = compute_gir(tree, data, random_query(rng, 3), 8)
        index = RegionIndex(3)
        index.add(0, gir.polytope, kth_g=data.points[gir.topk.kth_id])
        codes = index.prescreen_insert(data.points[gir.topk.kth_id])
        assert codes[0] == SCREEN_TIE

    def test_dominating_insert_not_screened(self, indexed_setup, rng):
        """A record strictly dominating the k-th result must survive the
        screen (and the LP must then invalidate the entry)."""
        data, tree = indexed_setup
        gir = compute_gir(tree, data, random_query(rng, 3), 8)
        kth_g = data.points[gir.topk.kth_id]
        index = RegionIndex(3)
        index.add(0, gir.polytope, kth_g=kth_g)
        above = np.clip(kth_g + 0.05, 0, 1)
        codes = index.prescreen_insert(above)
        assert codes[0] == SCREEN_LP
        assert invalidated_by_insert(gir, above, kth_g)

    def test_entries_without_kth_g_always_lp(self, rng):
        index = RegionIndex(3)
        index.add(0, random_region(rng, 3))
        codes = index.prescreen_insert(rng.random(3))
        assert codes[0] == SCREEN_LP

    def test_degenerate_region_falls_back_without_false_safe(self, rng):
        """An entry whose region has no usable vertex set (empty interior)
        must classify via the ball fallback / LP, never silently SAFE
        against a dominating insert."""
        # x1 <= 0 and x1 >= 0 inside the box: a 2-d face, no interior.
        flat = Polytope.from_unit_box(3).with_constraints(
            np.array([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
        )
        index = RegionIndex(3)
        index.add(0, flat, kth_g=np.array([0.2, 0.2, 0.2]))
        codes = index.prescreen_insert(np.array([0.9, 0.9, 0.9]))
        assert codes[0] == SCREEN_LP

    def test_screen_survives_add_remove_cycles(self, indexed_setup, rng):
        data, tree = indexed_setup
        index = RegionIndex(3)
        girs = {}
        for key in range(6):
            gir = compute_gir(tree, data, random_query(rng, 3), 6)
            girs[key] = gir
            index.add(key, gir.polytope, kth_g=data.points[gir.topk.kth_id])
        index.prescreen_insert(rng.random(3))  # materialize
        index.remove(2)
        del girs[2]
        gir = compute_gir(tree, data, random_query(rng, 3), 6)
        girs[99] = gir
        index.add(99, gir.polytope, kth_g=data.points[gir.topk.kth_id])
        p = rng.random(3)
        codes = index.prescreen_insert(p)
        assert len(codes) == len(index.keys())
        for key, code in zip(index.keys(), codes):
            if code == SCREEN_SAFE:
                g = girs[key]
                assert not invalidated_by_insert(
                    g, p, data.points[g.topk.kth_id]
                )


class TestCachePrescreenIntegration:
    def test_cache_prescreen_partition_is_total(self, indexed_setup, rng):
        data, tree = indexed_setup
        cache = GIRCache()
        for _ in range(8):
            gir = compute_gir(tree, data, random_query(rng, 3), 8)
            cache.insert(gir, kth_g=data.points[gir.topk.kth_id])
        pre = cache.prescreen_insert(rng.random(3))
        combined = sorted(pre.safe + pre.ties + pre.candidates)
        assert combined == sorted(cache.entry_keys())
        assert pre.screened == len(pre.safe) + len(pre.ties)

    def test_entries_inserted_without_kth_g_are_candidates(
        self, indexed_setup, rng
    ):
        data, tree = indexed_setup
        cache = GIRCache()
        gir = compute_gir(tree, data, random_query(rng, 3), 8)
        cache.insert(gir)  # no kth_g: prescreen cannot clear it
        pre = cache.prescreen_insert(rng.random(3))
        assert pre.safe == () and pre.ties == ()
        assert len(pre.candidates) == 1
